"""Search-space pruning (Section 6.3).

Two families of configurations are discarded before the model ever runs:

* configurations that are structurally invalid for the stencil — the spatial
  block leaves no compute region after subtracting the ``2 * bT * rad`` halo,
  or the thread block exceeds 1024 threads, and
* configurations whose estimated register demand (``bT*(2*rad+1) + bT + 20``
  for float, ``2*bT*(2*rad+1) + bT + 30`` for double) exceeds the 255
  registers-per-thread or 64K registers-per-SM hardware limits.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.config import BlockingConfig
from repro.ir.stencil import StencilPattern
from repro.model.gpu_specs import GpuSpec
from repro.model.registers import register_pressure_ok


def prune_configurations(
    pattern: StencilPattern,
    configurations: Iterable[BlockingConfig],
    gpu: GpuSpec,
) -> List[BlockingConfig]:
    """Return the configurations that survive validity and register pruning."""
    survivors: List[BlockingConfig] = []
    for config in configurations:
        if not config.is_valid(pattern):
            continue
        if not register_pressure_ok(pattern, config, gpu):
            continue
        survivors.append(config)
    return survivors


def pruning_statistics(
    pattern: StencilPattern,
    configurations: Iterable[BlockingConfig],
    gpu: GpuSpec,
) -> dict[str, int]:
    """How many configurations each pruning rule removes (for reporting)."""
    total = 0
    invalid = 0
    register_bound = 0
    kept = 0
    for config in configurations:
        total += 1
        if not config.is_valid(pattern):
            invalid += 1
        elif not register_pressure_ok(pattern, config, gpu):
            register_bound += 1
        else:
            kept += 1
    return {
        "total": total,
        "invalid": invalid,
        "register_pruned": register_bound,
        "kept": kept,
    }
