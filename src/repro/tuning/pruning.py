"""Search-space pruning (Section 6.3).

Two families of configurations are discarded before the model ever runs:

* configurations that are structurally invalid for the stencil — the spatial
  block leaves no compute region after subtracting the ``2 * bT * rad`` halo,
  or the thread block exceeds 1024 threads, and
* configurations whose estimated register demand (``bT*(2*rad+1) + bT + 20``
  for float, ``2*bT*(2*rad+1) + bT + 30`` for double) exceeds the 255
  registers-per-thread or 64K registers-per-SM hardware limits.

Both rules are evaluated as boolean masks over the batched
structure-of-arrays layout (:mod:`repro.model.batch`) — one comparison per
rule for the whole candidate list — with the scalar per-config predicates
(``BlockingConfig.is_valid`` / ``register_pressure_ok``) kept as the oracle
and as the fallback for configurations the batch layout cannot represent
(mixed spatial-block dimensionalities).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import BlockingConfig
from repro.ir.stencil import StencilPattern
from repro.model import batch as batch_model
from repro.model.gpu_specs import GpuSpec
from repro.model.registers import register_pressure_ok


def _batched_masks(
    pattern: StencilPattern, configs: List[BlockingConfig], gpu: GpuSpec
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """(valid, register-ok) masks for ``configs``, or ``None`` if unbatchable.

    Rows of mixed spatial-block dimensionality cannot share the array layout;
    such a list falls back to the scalar predicates.  Optimisation switches
    are ignored — neither pruning rule depends on them.
    """
    try:
        columns = batch_model.ConfigBatch.from_configs(configs, check_switches=False)
    except batch_model.BatchUnsupportedError:
        return None
    return (
        batch_model.validity_mask(pattern, columns),
        batch_model.register_mask(pattern, columns, gpu),
    )


def prune_configurations(
    pattern: StencilPattern,
    configurations: Iterable[BlockingConfig],
    gpu: GpuSpec,
) -> List[BlockingConfig]:
    """Return the configurations that survive validity and register pruning."""
    configs = list(configurations)
    masks = _batched_masks(pattern, configs, gpu)
    if masks is None:
        return [
            config
            for config in configs
            if config.is_valid(pattern) and register_pressure_ok(pattern, config, gpu)
        ]
    valid, register_ok = masks
    keep = valid & register_ok
    return [config for config, kept in zip(configs, keep) if kept]


def pruning_statistics(
    pattern: StencilPattern,
    configurations: Iterable[BlockingConfig],
    gpu: GpuSpec,
) -> dict[str, int]:
    """How many configurations each pruning rule removes (for reporting)."""
    configs = list(configurations)
    masks = _batched_masks(pattern, configs, gpu)
    if masks is None:
        valid_list = [config.is_valid(pattern) for config in configs]
        register_list = [register_pressure_ok(pattern, config, gpu) for config in configs]
        valid = np.asarray(valid_list, dtype=bool)
        register_ok = np.asarray(register_list, dtype=bool)
    else:
        valid, register_ok = masks
    return {
        "total": len(configs),
        "invalid": int(np.count_nonzero(~valid)),
        "register_pruned": int(np.count_nonzero(valid & ~register_ok)),
        "kept": int(np.count_nonzero(valid & register_ok)),
    }
