"""Exhaustive simulated search — the yardstick for the model-guided tuner.

The paper argues that the analytic model prunes the parameter space well
enough that simulating/running only the top five candidates finds a
configuration close to the best one.  This module provides the comparison:
an exhaustive sweep that simulates *every* valid configuration, and a helper
that quantifies how much performance the model-guided two-stage procedure
leaves on the table (the "tuning efficiency").
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.sim.timing import TimingSimulator
from repro.tuning.autotuner import AutoTuner, TuningResult
from repro.tuning.pruning import prune_configurations
from repro.tuning.search_space import REGISTER_LIMITS, SearchSpace, default_search_space


@dataclass(frozen=True)
class ExhaustiveResult:
    """Best configuration found by simulating the entire (pruned) space."""

    best_config: BlockingConfig
    best_gflops: float
    evaluated: int

    def as_row(self) -> dict[str, object]:
        return {
            "bT": self.best_config.bT,
            "bS": "x".join(str(v) for v in self.best_config.bS),
            "hS": self.best_config.hS,
            "regs": self.best_config.register_limit,
            "gflops": round(self.best_gflops, 1),
            "evaluated": self.evaluated,
        }


_ChunkResult = Tuple[Optional[BlockingConfig], float, int]


def _search_chunk(
    args: Tuple[StencilPattern, GridSpec, GpuSpec, Sequence[BlockingConfig], Tuple[Optional[int], ...]],
) -> _ChunkResult:
    """Simulate one contiguous slice of the pruned space (worker function)."""
    pattern, grid, spec, configs, register_limits = args
    simulator = TimingSimulator(spec)
    best_config: Optional[BlockingConfig] = None
    best_gflops = 0.0
    evaluated = 0
    for config in configs:
        for limit in register_limits:
            candidate = config.with_register_limit(limit)
            gflops = simulator.simulate(pattern, grid, candidate).gflops
            evaluated += 1
            if gflops > best_gflops:
                best_gflops = gflops
                best_config = candidate
    return best_config, best_gflops, evaluated


def _search_parallel(
    pattern: StencilPattern,
    grid: GridSpec,
    spec: GpuSpec,
    survivors: List[BlockingConfig],
    register_limits: Tuple[Optional[int], ...],
    workers: int,
) -> List[_ChunkResult]:
    """Fan contiguous chunks of the space out over a process pool.

    Chunks are combined in order with a strict greater-than comparison, so
    the winner is identical to the serial sweep's (first best wins ties).
    """
    workers = min(workers, len(survivors))
    chunk_size = (len(survivors) + workers - 1) // workers
    chunks = [survivors[i : i + chunk_size] for i in range(0, len(survivors), chunk_size)]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(processes=len(chunks)) as pool:
        return pool.map(
            _search_chunk,
            [(pattern, grid, spec, chunk, register_limits) for chunk in chunks],
        )


def exhaustive_search(
    pattern: StencilPattern,
    grid: GridSpec,
    gpu: GpuSpec | str,
    space: SearchSpace | None = None,
    register_limits: Sequence[Optional[int]] = REGISTER_LIMITS,
    workers: int = 1,
) -> ExhaustiveResult:
    """Simulate every valid configuration and return the best one.

    ``workers`` > 1 splits the pruned space into contiguous chunks swept by a
    ``multiprocessing`` pool; results are identical to the serial sweep.  Any
    failure to parallelize (no fork support, unpicklable pattern) falls back
    to the serial path.
    """
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    space = space or default_search_space(pattern)
    survivors = prune_configurations(pattern, space.configurations(), spec)
    limits = tuple(register_limits)

    chunk_results: List[_ChunkResult]
    if workers > 1 and len(survivors) > 1:
        try:
            chunk_results = _search_parallel(pattern, grid, spec, survivors, limits, workers)
        except Exception:
            chunk_results = [_search_chunk((pattern, grid, spec, survivors, limits))]
    else:
        chunk_results = [_search_chunk((pattern, grid, spec, survivors, limits))]

    best_config: Optional[BlockingConfig] = None
    best_gflops = 0.0
    evaluated = 0
    for chunk_config, chunk_gflops, chunk_evaluated in chunk_results:
        evaluated += chunk_evaluated
        if chunk_config is not None and chunk_gflops > best_gflops:
            best_gflops = chunk_gflops
            best_config = chunk_config
    if best_config is None:
        raise ValueError(f"no valid configuration for stencil {pattern.name!r}")
    return ExhaustiveResult(best_config=best_config, best_gflops=best_gflops, evaluated=evaluated)


@dataclass(frozen=True)
class TuningEfficiency:
    """How close the model-guided tuner gets to the exhaustive optimum."""

    guided: TuningResult
    exhaustive: ExhaustiveResult

    @property
    def efficiency(self) -> float:
        """Guided-to-exhaustive performance ratio (1.0 = found the optimum)."""
        if self.exhaustive.best_gflops == 0:
            return 0.0
        return self.guided.best.measured_gflops / self.exhaustive.best_gflops

    @property
    def evaluations_saved(self) -> int:
        """Simulated-run budget saved by model guidance."""
        guided_runs = len(self.guided.top_candidates) * len(REGISTER_LIMITS)
        return self.exhaustive.evaluated - guided_runs


def compare_guided_vs_exhaustive(
    pattern: StencilPattern,
    grid: GridSpec,
    gpu: GpuSpec | str,
    top_k: int = 5,
    space: SearchSpace | None = None,
    workers: int = 1,
) -> TuningEfficiency:
    """Run both procedures on the same space and report the efficiency."""
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    guided = AutoTuner(spec, top_k=top_k).tune(pattern, grid, space)
    exhaustive = exhaustive_search(pattern, grid, spec, space, workers=workers)
    return TuningEfficiency(guided=guided, exhaustive=exhaustive)
