"""Exhaustive simulated search — the yardstick for the model-guided tuner.

The paper argues that the analytic model prunes the parameter space well
enough that simulating/running only the top five candidates finds a
configuration close to the best one.  This module provides the comparison:
an exhaustive sweep that simulates *every* valid configuration, and a helper
that quantifies how much performance the model-guided two-stage procedure
leaves on the table (the "tuning efficiency").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.sim.timing import TimingSimulator
from repro.tuning.autotuner import AutoTuner, TuningResult
from repro.tuning.pruning import prune_configurations
from repro.tuning.search_space import REGISTER_LIMITS, SearchSpace, default_search_space


@dataclass(frozen=True)
class ExhaustiveResult:
    """Best configuration found by simulating the entire (pruned) space."""

    best_config: BlockingConfig
    best_gflops: float
    evaluated: int

    def as_row(self) -> dict[str, object]:
        return {
            "bT": self.best_config.bT,
            "bS": "x".join(str(v) for v in self.best_config.bS),
            "hS": self.best_config.hS,
            "regs": self.best_config.register_limit,
            "gflops": round(self.best_gflops, 1),
            "evaluated": self.evaluated,
        }


def exhaustive_search(
    pattern: StencilPattern,
    grid: GridSpec,
    gpu: GpuSpec | str,
    space: SearchSpace | None = None,
    register_limits: Sequence[Optional[int]] = REGISTER_LIMITS,
) -> ExhaustiveResult:
    """Simulate every valid configuration and return the best one."""
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    space = space or default_search_space(pattern)
    simulator = TimingSimulator(spec)
    survivors = prune_configurations(pattern, space.configurations(), spec)

    best_config: Optional[BlockingConfig] = None
    best_gflops = 0.0
    evaluated = 0
    for config in survivors:
        for limit in register_limits:
            candidate = config.with_register_limit(limit)
            gflops = simulator.simulate(pattern, grid, candidate).gflops
            evaluated += 1
            if gflops > best_gflops:
                best_gflops = gflops
                best_config = candidate
    if best_config is None:
        raise ValueError(f"no valid configuration for stencil {pattern.name!r}")
    return ExhaustiveResult(best_config=best_config, best_gflops=best_gflops, evaluated=evaluated)


@dataclass(frozen=True)
class TuningEfficiency:
    """How close the model-guided tuner gets to the exhaustive optimum."""

    guided: TuningResult
    exhaustive: ExhaustiveResult

    @property
    def efficiency(self) -> float:
        """Guided-to-exhaustive performance ratio (1.0 = found the optimum)."""
        if self.exhaustive.best_gflops == 0:
            return 0.0
        return self.guided.best.measured_gflops / self.exhaustive.best_gflops

    @property
    def evaluations_saved(self) -> int:
        """Simulated-run budget saved by model guidance."""
        guided_runs = len(self.guided.top_candidates) * len(REGISTER_LIMITS)
        return self.exhaustive.evaluated - guided_runs


def compare_guided_vs_exhaustive(
    pattern: StencilPattern,
    grid: GridSpec,
    gpu: GpuSpec | str,
    top_k: int = 5,
    space: SearchSpace | None = None,
) -> TuningEfficiency:
    """Run both procedures on the same space and report the efficiency."""
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    guided = AutoTuner(spec, top_k=top_k).tune(pattern, grid, space)
    exhaustive = exhaustive_search(pattern, grid, spec, space)
    return TuningEfficiency(guided=guided, exhaustive=exhaustive)
