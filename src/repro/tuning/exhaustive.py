"""Exhaustive simulated search — the yardstick for the model-guided tuner.

The paper argues that the analytic model prunes the parameter space well
enough that simulating/running only the top five candidates finds a
configuration close to the best one.  This module provides the comparison:
an exhaustive sweep that simulates *every* valid configuration, and a helper
that quantifies how much performance the model-guided two-stage procedure
leaves on the table (the "tuning efficiency").

Two engines drive the sweep:

* ``batch`` (the default for 2-D/3-D stencils) evaluates the whole pruned
  space x register-limit cross product in one vectorized pass over the
  structure-of-arrays layout of :mod:`repro.model.batch` — no worker
  processes, no per-config Python objects, identical results to the scalar
  sweep down to the last bit;
* ``scalar`` walks one configuration at a time through the scalar timing
  simulator.  Only this engine uses the ``workers`` process pool: fanning
  out is worthwhile for genuinely simulator-backed per-config work, whereas
  the old behaviour of forking model-only evaluations re-imported the
  library and re-warmed every per-process model cache just to do array-op
  amounts of arithmetic.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.batch import BatchModelEngine, ConfigBatch, prune_mask, resolve_engine
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.sim.timing import TimingSimulator
from repro.tuning.autotuner import AutoTuner, TuningResult
from repro.tuning.pruning import prune_configurations
from repro.tuning.search_space import REGISTER_LIMITS, SearchSpace, default_search_space


@dataclass(frozen=True)
class ExhaustiveResult:
    """Best configuration found by simulating the entire (pruned) space."""

    best_config: BlockingConfig
    best_gflops: float
    evaluated: int

    def as_row(self) -> dict[str, object]:
        return {
            "bT": self.best_config.bT,
            "bS": "x".join(str(v) for v in self.best_config.bS),
            "hS": self.best_config.hS,
            "regs": self.best_config.register_limit,
            "gflops": round(self.best_gflops, 1),
            "evaluated": self.evaluated,
        }


def _search_batched(
    pattern: StencilPattern,
    grid: GridSpec,
    spec: GpuSpec,
    space: SearchSpace,
    register_limits: Tuple[Optional[int], ...],
) -> ExhaustiveResult:
    """One vectorized pass over the whole pruned space x register limits.

    Candidates are laid out configuration-major, limit-minor — the scalar
    sweep's visit order — and the first maximum wins, so ties resolve to the
    same configuration the serial scan would keep.
    """
    candidates = ConfigBatch.from_space(space)
    survivors = candidates.select(prune_mask(pattern, candidates, spec))
    if survivors.size == 0:
        raise ValueError(f"no valid configuration for stencil {pattern.name!r}")
    engine = BatchModelEngine(pattern, grid, spec)
    sweep = survivors.with_register_limits(register_limits)
    # Traffic is independent of the register limit: one pass over the
    # survivors feeds the whole limit-expanded sweep.
    traffic = engine.traffic(survivors).repeat(len(register_limits))
    measured = engine.simulate(sweep, traffic)
    best = int(np.argmax(measured.gflops)) if sweep.size else 0
    if not sweep.size or not measured.gflops[best] > 0.0:
        raise ValueError(f"no valid configuration for stencil {pattern.name!r}")
    return ExhaustiveResult(
        best_config=sweep.config(best),
        best_gflops=float(measured.gflops[best]),
        evaluated=sweep.size,
    )


_ChunkResult = Tuple[Optional[BlockingConfig], float, int]


def _search_chunk(
    args: Tuple[StencilPattern, GridSpec, GpuSpec, Sequence[BlockingConfig], Tuple[Optional[int], ...]],
) -> _ChunkResult:
    """Simulate one contiguous slice of the pruned space (worker function)."""
    pattern, grid, spec, configs, register_limits = args
    simulator = TimingSimulator(spec)
    best_config: Optional[BlockingConfig] = None
    best_gflops = 0.0
    evaluated = 0
    for config in configs:
        for limit in register_limits:
            candidate = config.with_register_limit(limit)
            gflops = simulator.simulate(pattern, grid, candidate).gflops
            evaluated += 1
            if gflops > best_gflops:
                best_gflops = gflops
                best_config = candidate
    return best_config, best_gflops, evaluated


def _search_parallel(
    pattern: StencilPattern,
    grid: GridSpec,
    spec: GpuSpec,
    survivors: List[BlockingConfig],
    register_limits: Tuple[Optional[int], ...],
    workers: int,
) -> List[_ChunkResult]:
    """Fan contiguous chunks of the space out over a process pool.

    Chunks are combined in order with a strict greater-than comparison, so
    the winner is identical to the serial sweep's (first best wins ties).
    """
    workers = min(workers, len(survivors))
    chunk_size = (len(survivors) + workers - 1) // workers
    chunks = [survivors[i : i + chunk_size] for i in range(0, len(survivors), chunk_size)]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(processes=len(chunks)) as pool:
        return pool.map(
            _search_chunk,
            [(pattern, grid, spec, chunk, register_limits) for chunk in chunks],
        )


def _search_scalar(
    pattern: StencilPattern,
    grid: GridSpec,
    spec: GpuSpec,
    space: SearchSpace,
    register_limits: Tuple[Optional[int], ...],
    workers: int,
) -> ExhaustiveResult:
    """The per-config scalar sweep, optionally fanned out over a pool."""
    survivors = prune_configurations(pattern, space.configurations(), spec)

    chunk_results: List[_ChunkResult]
    if workers > 1 and len(survivors) > 1:
        try:
            chunk_results = _search_parallel(
                pattern, grid, spec, survivors, register_limits, workers
            )
        except Exception:
            chunk_results = [_search_chunk((pattern, grid, spec, survivors, register_limits))]
    else:
        chunk_results = [_search_chunk((pattern, grid, spec, survivors, register_limits))]

    best_config: Optional[BlockingConfig] = None
    best_gflops = 0.0
    evaluated = 0
    for chunk_config, chunk_gflops, chunk_evaluated in chunk_results:
        evaluated += chunk_evaluated
        if chunk_config is not None and chunk_gflops > best_gflops:
            best_gflops = chunk_gflops
            best_config = chunk_config
    if best_config is None:
        raise ValueError(f"no valid configuration for stencil {pattern.name!r}")
    return ExhaustiveResult(best_config=best_config, best_gflops=best_gflops, evaluated=evaluated)


def exhaustive_search(
    pattern: StencilPattern,
    grid: GridSpec,
    gpu: GpuSpec | str,
    space: SearchSpace | None = None,
    register_limits: Sequence[Optional[int]] = REGISTER_LIMITS,
    workers: int = 1,
    engine: str = "auto",
) -> ExhaustiveResult:
    """Simulate every valid configuration and return the best one.

    ``engine`` selects how the space is evaluated: ``"batch"`` (one
    vectorized pass, the ``"auto"`` choice for 2-D/3-D stencils),
    ``"scalar"`` (per-config sweep), or ``"auto"``.  ``workers`` > 1 splits
    the *scalar* sweep into contiguous chunks over a ``multiprocessing``
    pool; the batch engine is in-process array arithmetic and ignores it.
    Every engine returns the identical best configuration and GFLOPS.
    """
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    space = space or default_search_space(pattern)
    limits = tuple(register_limits)
    if resolve_engine(engine, pattern) == "batch":
        return _search_batched(pattern, grid, spec, space, limits)
    return _search_scalar(pattern, grid, spec, space, limits, workers)


@dataclass(frozen=True)
class TuningEfficiency:
    """How close the model-guided tuner gets to the exhaustive optimum."""

    guided: TuningResult
    exhaustive: ExhaustiveResult

    @property
    def efficiency(self) -> float:
        """Guided-to-exhaustive performance ratio (1.0 = found the optimum)."""
        if self.exhaustive.best_gflops == 0:
            return 0.0
        return self.guided.best.measured_gflops / self.exhaustive.best_gflops

    @property
    def evaluations_saved(self) -> int:
        """Simulated-run budget saved by model guidance."""
        guided_runs = len(self.guided.top_candidates) * len(REGISTER_LIMITS)
        return self.exhaustive.evaluated - guided_runs


def compare_guided_vs_exhaustive(
    pattern: StencilPattern,
    grid: GridSpec,
    gpu: GpuSpec | str,
    top_k: int = 5,
    space: SearchSpace | None = None,
    workers: int = 1,
    engine: str = "auto",
) -> TuningEfficiency:
    """Run both procedures on the same space and report the efficiency."""
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    guided = AutoTuner(spec, top_k=top_k, engine=engine).tune(pattern, grid, space)
    exhaustive = exhaustive_search(pattern, grid, spec, space, workers=workers, engine=engine)
    return TuningEfficiency(guided=guided, exhaustive=exhaustive)
