"""The tuning search space (Section 6.3).

For 2D stencils the paper explores ``bT in [1, 16]``, ``bS in {128, 256,
512}`` and ``hS in {256, 512, 1024}`` (144 configurations); for 3D stencils
``bT in [1, 8]``, ``bS in {16x16, 32x16, 32x32, 64x16}`` and ``hS in
{128, 256}`` (64 configurations).  Register limits of ``{none, 32, 64}`` (and
additionally 96 for the Tuned configuration) are applied per candidate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.config import BlockingConfig
from repro.ir.stencil import StencilPattern

REGISTER_LIMITS: Tuple[Optional[int], ...] = (None, 32, 64, 96)


@dataclass(frozen=True)
class SearchSpace:
    """The set of candidate blocking parameters for one stencil family."""

    time_blocks: Tuple[int, ...]
    spatial_blocks: Tuple[Tuple[int, ...], ...]
    stream_blocks: Tuple[Optional[int], ...]
    register_limits: Tuple[Optional[int], ...] = REGISTER_LIMITS

    def size(self) -> int:
        return len(self.time_blocks) * len(self.spatial_blocks) * len(self.stream_blocks)

    def configurations(self, include_register_limits: bool = False) -> Iterator[BlockingConfig]:
        """Enumerate candidate configurations (optionally x register limits)."""
        limits: Sequence[Optional[int]] = self.register_limits if include_register_limits else (None,)
        for bT, bS, hS, limit in itertools.product(
            self.time_blocks, self.spatial_blocks, self.stream_blocks, limits
        ):
            yield BlockingConfig(bT=bT, bS=bS, hS=hS, register_limit=limit)


def default_search_space(pattern: StencilPattern) -> SearchSpace:
    """The paper's search space for the stencil's dimensionality."""
    if pattern.ndim == 2:
        return SearchSpace(
            time_blocks=tuple(range(1, 17)),
            spatial_blocks=((128,), (256,), (512,)),
            stream_blocks=(256, 512, 1024),
        )
    return SearchSpace(
        time_blocks=tuple(range(1, 9)),
        spatial_blocks=((16, 16), (16, 32), (32, 32), (16, 64)),
        stream_blocks=(128, 256),
    )


def sconf_space(pattern: StencilPattern) -> SearchSpace:
    """The single-configuration 'space' matching STENCILGEN's parameters."""
    if pattern.ndim == 2:
        return SearchSpace(time_blocks=(4,), spatial_blocks=((128,),), stream_blocks=(128,))
    return SearchSpace(time_blocks=(4,), spatial_blocks=((32, 32),), stream_blocks=(None,))
