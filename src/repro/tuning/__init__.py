"""Model-guided parameter tuning (Section 6.3).

The tuner enumerates the paper's search space (``bT``, ``bS``, ``hS`` and the
register limit), prunes configurations whose estimated register demand
exceeds the hardware limits, ranks the survivors with the analytic
performance model, and finally "runs" the top candidates on the timing
simulator to pick the best — exactly the two-stage procedure the paper
describes (model-guided pruning followed by measuring the top five).
"""

from repro.tuning.search_space import SearchSpace, default_search_space
from repro.tuning.pruning import prune_configurations
from repro.tuning.autotuner import AutoTuner, TuningCandidate, TuningResult, tune

__all__ = [
    "AutoTuner",
    "SearchSpace",
    "TuningCandidate",
    "TuningResult",
    "default_search_space",
    "prune_configurations",
    "tune",
]
