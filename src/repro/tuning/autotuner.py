"""The two-stage autotuner (Section 6.3).

Stage 1 ranks every surviving configuration with the analytic model (this is
the part the paper describes as "searched in a few seconds").  Stage 2 takes
the top ``k`` (5 in the paper) candidates, tries each with the candidate
register limits, "runs" them on the timing simulator — the stand-in for the
actual GPU measurements — and returns the configuration with the best
simulated performance.

Stage 1 defaults to the batched model engine (:mod:`repro.model.batch`):
pruning and the roofline prediction for the whole space happen as a handful
of array operations, and the stable descending sort reproduces the scalar
ranking exactly (identical predictions, identical tie order).  Stage 2 is
genuinely per-candidate simulator work and stays scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.batch import BatchModelEngine, ConfigBatch, prune_mask, resolve_engine
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.model.roofline import PerformancePrediction, predict_performance
from repro.sim.timing import SimulatedMeasurement, TimingSimulator
from repro.tuning.pruning import prune_configurations
from repro.tuning.search_space import REGISTER_LIMITS, SearchSpace, default_search_space


@dataclass(frozen=True)
class TuningCandidate:
    """One configuration with its model prediction and simulated measurement."""

    config: BlockingConfig
    predicted: PerformancePrediction
    measured: Optional[SimulatedMeasurement] = None

    @property
    def predicted_gflops(self) -> float:
        return self.predicted.gflops

    @property
    def measured_gflops(self) -> float:
        return self.measured.gflops if self.measured is not None else 0.0


@dataclass(frozen=True)
class TuningResult:
    """Outcome of tuning one stencil for one GPU and data type."""

    pattern_name: str
    gpu_name: str
    dtype: str
    best: TuningCandidate
    top_candidates: List[TuningCandidate]
    explored: int
    pruned_to: int

    @property
    def best_config(self) -> BlockingConfig:
        return self.best.config

    @property
    def model_accuracy(self) -> float:
        """Measured-to-predicted ratio (the paper's model accuracy metric)."""
        if self.best.predicted_gflops == 0:
            return 0.0
        return self.best.measured_gflops / self.best.predicted_gflops

    def as_row(self) -> dict[str, object]:
        config = self.best_config
        return {
            "pattern": self.pattern_name,
            "gpu": self.gpu_name,
            "dtype": self.dtype,
            "bT": config.bT,
            "bS": "x".join(str(v) for v in config.bS),
            "hS": config.hS if config.hS is not None else "-",
            "regs": config.register_limit if config.register_limit is not None else "-",
            "tuned_gflops": round(self.best.measured_gflops, 1),
            "model_gflops": round(self.best.predicted_gflops, 1),
        }


class AutoTuner:
    """Model-guided tuner for one device.

    ``engine`` selects the stage-1 ranking implementation: ``"batch"`` (the
    vectorized model engine, the ``"auto"`` choice for 2-D/3-D stencils) or
    ``"scalar"``; both produce the identical candidate ranking.
    """

    def __init__(self, gpu: GpuSpec | str, top_k: int = 5, engine: str = "auto") -> None:
        self.gpu = get_gpu(gpu) if isinstance(gpu, str) else gpu
        self.top_k = top_k
        self.engine = engine
        self.simulator = TimingSimulator(self.gpu)

    # -- stage 1: model ranking -------------------------------------------------
    def rank(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        space: SearchSpace | None = None,
    ) -> List[TuningCandidate]:
        """Rank all pruned configurations by predicted performance."""
        space = space or default_search_space(pattern)
        if resolve_engine(self.engine, pattern) == "batch":
            return self._rank_batched(pattern, grid, space)
        configurations = prune_configurations(pattern, space.configurations(), self.gpu)
        candidates = [
            TuningCandidate(config, predict_performance(pattern, grid, config, self.gpu))
            for config in configurations
        ]
        candidates.sort(key=lambda c: c.predicted_gflops, reverse=True)
        return candidates

    def _rank_batched(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        space: SearchSpace,
    ) -> List[TuningCandidate]:
        """Prune + predict the whole space in arrays, then sort stably.

        A stable sort on the negated predictions reproduces ``list.sort``'s
        ordering: descending by predicted GFLOPS, enumeration order on ties.
        """
        candidates = ConfigBatch.from_space(space)
        survivors = candidates.select(prune_mask(pattern, candidates, self.gpu))
        if survivors.size == 0:
            return []
        model = BatchModelEngine(pattern, grid, self.gpu)
        predicted = model.predict(survivors)
        order = np.argsort(-predicted.gflops, kind="stable")
        return [
            TuningCandidate(survivors.config(i), model.prediction(predicted, i))
            for i in order
        ]

    # -- stage 2: simulated measurement -----------------------------------------
    def _measure_with_register_limits(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        candidate: TuningCandidate,
        register_limits: Sequence[Optional[int]],
    ) -> TuningCandidate:
        best: Optional[TuningCandidate] = None
        for limit in register_limits:
            config = candidate.config.with_register_limit(limit)
            measured = self.simulator.simulate(pattern, grid, config)
            scored = TuningCandidate(config, candidate.predicted, measured)
            if best is None or scored.measured_gflops > best.measured_gflops:
                best = scored
        assert best is not None
        return best

    def tune_ranked(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        ranked: Sequence[TuningCandidate],
        explored: int,
        register_limits: Sequence[Optional[int]] = REGISTER_LIMITS,
    ) -> TuningResult:
        """Stage 2 only: simulate the top candidates of a precomputed ranking.

        Callers that cache the stage-1 ranking (the service's hot model-batch
        cache) re-enter tuning here; the result is exactly what :meth:`tune`
        returns for the ranking it would have computed itself.
        """
        if not ranked:
            raise ValueError(
                f"no valid configuration for stencil {pattern.name!r} on {self.gpu.name}"
            )
        finalists = [
            self._measure_with_register_limits(pattern, grid, candidate, register_limits)
            for candidate in ranked[: self.top_k]
        ]
        best = max(finalists, key=lambda c: c.measured_gflops)
        return TuningResult(
            pattern_name=pattern.name,
            gpu_name=self.gpu.name,
            dtype=pattern.dtype,
            best=best,
            top_candidates=finalists,
            explored=explored,
            pruned_to=len(ranked),
        )

    def tune(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        space: SearchSpace | None = None,
        register_limits: Sequence[Optional[int]] = REGISTER_LIMITS,
    ) -> TuningResult:
        """Full tuning: prune, rank, simulate the top candidates, pick the best."""
        space = space or default_search_space(pattern)
        ranked = self.rank(pattern, grid, space)
        return self.tune_ranked(
            pattern, grid, ranked, explored=space.size(), register_limits=register_limits
        )


def tune(
    pattern: StencilPattern,
    grid: GridSpec,
    gpu: GpuSpec | str,
    top_k: int = 5,
    engine: str = "auto",
) -> TuningResult:
    """Convenience wrapper: tune ``pattern`` for ``gpu`` over ``grid``."""
    return AutoTuner(gpu, top_k, engine=engine).tune(pattern, grid)
