"""Baseline frameworks the paper compares against (Section 6, Fig. 6/7).

Each baseline is modelled at the level the comparison needs: its resource
usage (registers, shared memory, redundancy, block-size limits) and the
simulated performance that follows from those resources on the same device
model AN5D is simulated on.

* :mod:`repro.baselines.stencilgen` — STENCILGEN: N.5D blocking with shifting
  registers and one shared-memory buffer per combined time step, bT capped
  at 4.
* :mod:`repro.baselines.hybrid_tiling` — hybrid hexagonal/classical tiling:
  non-redundant temporal blocking that blocks every spatial dimension (no
  streaming), strong for 2D, weak for 3D.
* :mod:`repro.baselines.loop_tiling` — PPCG's default loop tiling: spatial
  blocking only, one global-memory round trip per time step.
"""

from repro.baselines.common import BaselineResult
from repro.baselines.stencilgen import StencilGenBaseline
from repro.baselines.hybrid_tiling import HybridTilingBaseline
from repro.baselines.loop_tiling import LoopTilingBaseline

__all__ = [
    "BaselineResult",
    "HybridTilingBaseline",
    "LoopTilingBaseline",
    "StencilGenBaseline",
]
