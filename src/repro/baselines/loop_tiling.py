"""Plain loop tiling baseline (PPCG's default schedule, Section 6.1).

Loop tiling blocks the spatial loops for cache locality but performs no
temporal blocking: every time step reads the grid from global memory and
writes it back.  On a memory-bound stencil its performance is therefore
bounded by ``bandwidth / (2 * word_bytes)`` cell updates per second,
discounted by the efficiency of a generic (not stencil-specialised) kernel:
no shared-memory staging, imperfect coalescing at tile edges, and the halo
reads each tile repeats from its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineResult
from repro.ir.flops import alu_efficiency, count_flops
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.sim.device import SimulatedGPU

_GIGA = 1.0e9

#: PPCG's default (square/cubic) tile edge.
DEFAULT_TILE_EDGE = 32

#: Fraction of the measured streaming bandwidth a generic PPCG kernel
#: sustains on these devices (uncoalesced edges, no texture/smem staging).
_GLOBAL_EFFICIENCY = 0.55


@dataclass(frozen=True)
class LoopTilingBaseline:
    """Simulated PPCG loop tiling on one device."""

    gpu: GpuSpec
    tile_edge: int = DEFAULT_TILE_EDGE

    @staticmethod
    def from_name(name: str) -> "LoopTilingBaseline":
        return LoopTilingBaseline(get_gpu(name))

    def simulate(self, pattern: StencilPattern, grid: GridSpec) -> BaselineResult:
        device = SimulatedGPU(self.gpu)
        flop_mix = count_flops(pattern.expr)
        flops_per_cell = flop_mix.total
        cells = grid.cells
        updates = cells * grid.time_steps
        useful_flops = updates * flops_per_cell
        word = pattern.word_bytes

        # Per time step: read every cell (plus the per-tile halo re-reads that
        # miss in cache) and write every cell.
        halo_rereads = (
            (self.tile_edge + 2 * pattern.radius) ** pattern.ndim / self.tile_edge**pattern.ndim
            - 1.0
        )
        global_bytes = updates * word * (2.0 + halo_rereads)

        bandwidth = self.gpu.measured_membw(pattern.dtype) * _GLOBAL_EFFICIENCY
        time_global = global_bytes / (bandwidth * _GIGA)

        compute_gflops = device.sustained_compute_gflops(pattern.dtype, alu_efficiency(flop_mix))
        division_penalty = device.division_penalty(pattern.dtype, pattern.has_division)
        time_compute = useful_flops / (compute_gflops * _GIGA) * division_penalty

        total = max(time_global, time_compute) + 0.1 * min(time_global, time_compute)
        registers = 24 if pattern.dtype == "float" else 32
        return BaselineResult(
            framework="Loop Tiling",
            gflops=useful_flops / total / _GIGA,
            gcells=updates / total / _GIGA,
            time_s=total,
            registers_per_thread=registers,
            occupancy=1.0,
            notes="no temporal blocking; one global round trip per time step",
        )
