"""Shared result type for baseline framework models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BaselineResult:
    """Simulated outcome of running one stencil with one baseline framework."""

    framework: str
    gflops: float
    gcells: float
    time_s: float
    registers_per_thread: int
    occupancy: float
    notes: str = ""

    def as_row(self) -> dict[str, float | str]:
        return {
            "framework": self.framework,
            "gflops": self.gflops,
            "gcells": self.gcells,
            "time_s": self.time_s,
            "registers": self.registers_per_thread,
            "occupancy": self.occupancy,
        }
