"""Hybrid hexagonal/classical tiling baseline (Grosser et al., Section 3).

Hybrid tiling performs non-redundant temporal blocking: hexagonal tiles along
one spatial dimension resolve the temporal dependency without overlapping,
and the remaining dimensions are blocked in a wavefront manner.  Its
characteristics relative to N.5D blocking:

* no redundant computation, but
* **all** spatial dimensions are blocked (no streaming), so for a given
  amount of on-chip memory the blocks are much smaller, which raises the
  ratio of halo (inter-tile) traffic to useful work — especially in 3D, and
* the wavefront schedule serialises part of the block-level parallelism.

The model chooses the largest hexagon/wavefront tile that fits in shared
memory, computes the resulting global traffic (one read + one write per tile
per ``bT`` steps plus the tile-boundary traffic), and applies a parallelism
efficiency that accounts for the phased hexagonal schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.common import BaselineResult
from repro.ir.flops import alu_efficiency, count_flops
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.sim.device import SimulatedGPU

_GIGA = 1.0e9

#: Temporal block height used by the tuned hybrid-tiling configurations
#: (the paper's search explores bT in [2, 20] for 2D and [2, 12] for 3D).
DEFAULT_TIME_HEIGHT_2D = 8
DEFAULT_TIME_HEIGHT_3D = 4

#: Only part of the tiles of a hexagonal schedule are executable in each
#: phase (Fig. 2: odd and even tiles alternate).
_HEX_PHASE_EFFICIENCY = 0.65

#: Wavefront dependencies across the non-hexagonal dimensions further limit
#: concurrency for 3D stencils.
_WAVEFRONT_EFFICIENCY_3D = 0.55


@dataclass(frozen=True)
class HybridTilingBaseline:
    """Simulated hybrid (hexagonal + wavefront) tiling on one device."""

    gpu: GpuSpec

    @staticmethod
    def from_name(name: str) -> "HybridTilingBaseline":
        return HybridTilingBaseline(get_gpu(name))

    # -- tile selection ---------------------------------------------------------
    def tile_cells(self, pattern: StencilPattern) -> int:
        """Cells per tile: the largest tile that fits the shared memory budget.

        Without streaming the whole tile (all dimensions) must be resident,
        double buffered across time steps.
        """
        budget = self.gpu.shared_memory_per_sm_bytes // 2  # leave room for 2 blocks/SM
        cells = budget // (2 * pattern.word_bytes)
        return max(int(cells), 1)

    def time_height(self, pattern: StencilPattern) -> int:
        return DEFAULT_TIME_HEIGHT_2D if pattern.ndim == 2 else DEFAULT_TIME_HEIGHT_3D

    def _halo_fraction(self, pattern: StencilPattern, tile_cells: int, bT: int) -> float:
        """Extra on-chip/global traffic caused by tile-boundary exchange.

        For a d-dimensional tile of ``n`` cells with side ``n**(1/d)``, the
        wavefront/hexagonal boundary region grows with ``bT * rad`` on each
        face of the non-streamed dimensions.
        """
        side = tile_cells ** (1.0 / pattern.ndim)
        reach = bT * pattern.radius
        ratio = (side + 2 * reach) ** pattern.ndim / tile_cells
        return ratio - 1.0

    # -- simulation ----------------------------------------------------------------
    def simulate(self, pattern: StencilPattern, grid: GridSpec) -> BaselineResult:
        device = SimulatedGPU(self.gpu)
        bT = self.time_height(pattern)
        tile_cells = self.tile_cells(pattern)
        halo_fraction = self._halo_fraction(pattern, tile_cells, bT)

        flop_mix = count_flops(pattern.expr)
        flops_per_cell = flop_mix.total
        cells = grid.cells
        updates = cells * grid.time_steps
        useful_flops = updates * flops_per_cell

        # Global traffic: one read + one write of the grid per bT time steps,
        # plus the inter-tile boundary traffic (non-redundant but still moved).
        word = pattern.word_bytes
        passes = grid.time_steps / bT
        global_bytes = passes * cells * word * (2.0 + halo_fraction)

        # Shared traffic: every update reads its non-register neighbours from
        # on-chip storage; like N.5D kernels the thread's own column can stay
        # in registers along the wavefront direction.
        from repro.model.traffic import shared_memory_access_per_thread

        access = shared_memory_access_per_thread(pattern)
        shared_bytes = updates * (access.reads_practical + access.writes) * word

        # Parallelism: phased hexagonal schedule plus (for 3D) wavefront
        # serialisation; block sizes are small so occupancy itself is fine.
        efficiency = _HEX_PHASE_EFFICIENCY
        if pattern.ndim == 3:
            efficiency *= _WAVEFRONT_EFFICIENCY_3D

        compute_gflops = device.sustained_compute_gflops(pattern.dtype, alu_efficiency(flop_mix))
        division_penalty = device.division_penalty(pattern.dtype, pattern.has_division)
        time_compute = useful_flops / (compute_gflops * _GIGA) * division_penalty
        time_global = global_bytes / (device.sustained_global_gbs(pattern.dtype, 0.8) * _GIGA)
        time_shared = shared_bytes / (device.sustained_shared_gbs(pattern.dtype, 0.8) * _GIGA)

        times = {"compute": time_compute, "global": time_global, "shared": time_shared}
        bottleneck = max(times, key=times.get)
        total = (times[bottleneck] + 0.25 * sum(v for k, v in times.items() if k != bottleneck))
        total /= efficiency

        registers = 28 if pattern.dtype == "float" else 40
        return BaselineResult(
            framework="Hybrid Tiling",
            gflops=useful_flops / total / _GIGA,
            gcells=updates / total / _GIGA,
            time_s=total,
            registers_per_thread=registers,
            occupancy=efficiency,
            notes=f"bT={bT}, tile={tile_cells} cells, bottleneck={bottleneck}",
        )
