"""STENCILGEN baseline model (Rawat et al., Section 3 and Table 1).

STENCILGEN implements the same N.5D blocking idea as AN5D but with the
resource strategy AN5D improves on:

* **shifting** register allocation — ``1 + 2*rad`` register moves per
  sub-plane update and a few extra live registers for the shift chains,
* **multi-buffered** shared memory — one buffer per combined time step, so
  the footprint (and the occupancy hit) grows linearly with ``bT``,
* temporal blocking degree limited to 4 in the published kernels.

The model reuses AN5D's execution geometry and traffic accounting and swaps
in STENCILGEN's register and shared-memory plans, then runs the same timing
simulation.  Extra register-move instructions are charged to the compute
pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.common import BaselineResult
from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel
from repro.core.register_alloc import ShiftingRegisterAllocation
from repro.core.shared_memory import stencilgen_shared_memory_plan
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.model.registers import stencilgen_registers
from repro.model.traffic import compute_traffic
from repro.sim.device import SimulatedGPU
from repro.sim.memory import kernel_launch_overhead_seconds, synchronization_cost_seconds

_GIGA = 1.0e9

#: The published STENCILGEN kernels use bT = 4, 128-wide 2D blocks and
#: 32x32 3D blocks (Section 6.3, the "Sconf" parameters).
MAX_SUPPORTED_BT = 4


@dataclass(frozen=True)
class StencilGenBaseline:
    """Simulated STENCILGEN execution on one device."""

    gpu: GpuSpec

    @staticmethod
    def from_name(name: str) -> "StencilGenBaseline":
        return StencilGenBaseline(get_gpu(name))

    def default_config(self, pattern: StencilPattern) -> BlockingConfig:
        if pattern.ndim == 2:
            return BlockingConfig(bT=4, bS=(128,), hS=128, associative_opt=False)
        return BlockingConfig(bT=4, bS=(32, 32), hS=None)

    def registers(self, pattern: StencilPattern, config: BlockingConfig) -> int:
        return stencilgen_registers(pattern, config)

    def occupancy(self, pattern: StencilPattern, config: BlockingConfig) -> tuple[int, float, str]:
        """Blocks per SM, occupancy fraction and the limiting factor."""
        smem = stencilgen_shared_memory_plan(pattern, config)
        regs = self.registers(pattern, config)
        nthr = config.nthr
        limits = {
            "threads": self.gpu.max_threads_per_sm // nthr,
            "shared_memory": (
                self.gpu.shared_memory_per_sm_bytes // smem.bytes_per_block
                if smem.bytes_per_block
                else self.gpu.max_blocks_per_sm
            ),
            "registers": self.gpu.registers_per_sm // max(regs * nthr, 1),
            "blocks": self.gpu.max_blocks_per_sm,
        }
        factor = min(limits, key=limits.get)
        blocks = max(min(limits.values()), 0)
        occupancy = min(blocks * nthr / self.gpu.max_threads_per_sm, 1.0)
        return blocks, occupancy, factor

    def simulate(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        config: BlockingConfig | None = None,
    ) -> BaselineResult:
        if config is None:
            config = self.default_config(pattern)
        if config.bT > MAX_SUPPORTED_BT:
            config = config.with_bT(MAX_SUPPORTED_BT)

        device = SimulatedGPU(self.gpu)
        model = ExecutionModel(pattern, grid, config)
        traffic = compute_traffic(pattern, grid, config)
        blocks_per_sm, occupancy, factor = self.occupancy(pattern, config)
        if blocks_per_sm == 0:
            return BaselineResult("STENCILGEN", 0.0, 0.0, math.inf,
                                  self.registers(pattern, config), 0.0,
                                  notes=f"unlaunchable ({factor})")

        # Compute time, charging the shifting register moves as extra issue slots.
        shifting = ShiftingRegisterAllocation(config.bT, pattern.radius)
        flops_per_cell = traffic.total_flops / max(traffic.thread_work.compute, 1)
        move_overhead = 1.0 + shifting.moves_per_update() / max(flops_per_cell, 1.0)
        compute_gflops = device.sustained_compute_gflops(pattern.dtype, traffic.alu_efficiency)
        division_penalty = device.division_penalty(pattern.dtype, pattern.has_division)
        time_compute = traffic.total_flops / (compute_gflops * _GIGA) * division_penalty * move_overhead

        # Register pressure: spills under tight -maxrregcount values are
        # reflected as an additional penalty (Fig. 7 reports spilling for
        # second-order stencils at the 32-register cap).
        regs = self.registers(pattern, config)
        spill = 1.0
        if config.register_limit is not None and regs > config.register_limit:
            spill = 1.0 + min(0.1 * (regs - config.register_limit), 1.0)

        waves = model.total_thread_blocks / max(blocks_per_sm * self.gpu.sm_count, 1)
        wave_eff = waves / math.ceil(waves) if waves > 0 else 1.0
        effective_occupancy = occupancy * min(wave_eff, 1.0)
        global_gbs = device.sustained_global_gbs(pattern.dtype, effective_occupancy)
        shared_gbs = device.sustained_shared_gbs(pattern.dtype, effective_occupancy)
        time_global = traffic.global_bytes / (global_gbs * _GIGA) * spill
        time_shared = traffic.shared_bytes / (shared_gbs * _GIGA)

        launches = traffic.thread_work.launches
        planes = model.subplanes_per_stream_block()
        # Multi-buffering still needs both barriers per time step.
        syncs = planes * config.bT * 2
        overhead = kernel_launch_overhead_seconds(launches) + synchronization_cost_seconds(
            self.gpu, syncs, model.total_thread_blocks * launches, blocks_per_sm
        )

        times = {"compute": time_compute * spill, "global": time_global, "shared": time_shared}
        bottleneck = max(times, key=times.get)
        total = times[bottleneck] + 0.25 * sum(
            v for k, v in times.items() if k != bottleneck
        ) + overhead
        useful = traffic.useful_flops
        cells = grid.cells * grid.time_steps
        return BaselineResult(
            framework="STENCILGEN",
            gflops=useful / total / _GIGA,
            gcells=cells / total / _GIGA,
            time_s=total,
            registers_per_thread=regs,
            occupancy=occupancy,
            notes=f"bottleneck={bottleneck}, limited by {factor}",
        )
