"""Wire-native store and registry: cluster members with no filesystem store.

A worker built on :class:`RemoteStore` commits results to the coordinator
over HTTP (``POST /results/commit``) instead of opening the shared SQLite
file — which is what lets workers run on boxes that cannot see the store at
all.  The class duck-types exactly the slice of
:class:`~repro.campaign.store.ResultStore` the scheduler and worker loop
touch (``put`` / ``statuses`` / ``has_ok``), so the entire campaign
execution path is unchanged; only the commit transport differs.

Durability & degradation
------------------------
Every result is appended to a local JSONL **journal** before anything goes
on the wire, and a background flush loop drains the journal to the
coordinator in batches:

* a flush that fails with a *retryable* error (coordinator down, 5xx) backs
  off — capped exponential + jitter — and tries again, rotating through
  every known store-native peer (:func:`~repro.cluster.client.post_any`),
  which is how a worker re-resolves the coordinator after a failover;
* results keep accumulating in the journal meanwhile, so a worker that
  outlives a coordinator outage loses nothing, and a worker that *crashes*
  mid-outage replays its journal on restart;
* replay is safe because commits are idempotent by construction — job keys
  are content addresses and the receiving store only upgrades non-``ok``
  rows (:meth:`~repro.campaign.store.ResultStore.commit_records`).

:class:`RemoteRegistry` is the matching membership client: register /
heartbeat / deregister over the wire, with **no timestamps in any
envelope** — the receiver stamps arrivals with its own clock, so a wire
member's liveness is immune to its wall-clock skew.  Heartbeat responses
carry the live store-native peer URLs, which feed the store's candidate
rotation.
"""

from __future__ import annotations

import json
import random
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.jobs import JobSpec
from repro.campaign.store import RECORD_FIELDS, make_record
from repro.cluster.client import (
    BACKOFF_CAP_S,
    ClusterClient,
    ClusterError,
    ClusterHTTPError,
    backoff_delay,
    is_retryable,
    post_any,
)
from repro.obs import MetricsRegistry, get_registry, record_suppressed
from repro.obs.trace import context_to_wire, current_trace

#: Seconds between journal flush attempts when the previous one succeeded.
DEFAULT_FLUSH_INTERVAL = 0.2

#: Records per commit request (bounds request size, not correctness).
FLUSH_BATCH = 200


class RemoteStore:
    """The scheduler-facing store subset, served over the cluster wire."""

    def __init__(
        self,
        url: str,
        journal: Optional[Union[str, Path]] = None,
        client: Optional[ClusterClient] = None,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        backoff_cap_s: float = BACKOFF_CAP_S,
        rng: Optional[random.Random] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._primary = url.rstrip("/")
        self._peers: List[str] = []
        self.journal = Path(journal) if journal is not None else None
        self.client = client or ClusterClient()
        self.flush_interval = float(flush_interval)
        self.backoff_cap_s = float(backoff_cap_s)
        self.metrics = metrics if metrics is not None else get_registry()
        self._rng = rng or random.Random()
        self._lock = threading.Lock()
        self._pending: List[Dict[str, object]] = []
        self._kick = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._flush_failures = 0  # consecutive, drives the backoff ceiling
        if self.journal is not None:
            self._load_journal()
        self._start_flusher()

    def set_metrics(self, metrics: MetricsRegistry) -> None:
        """Adopt an instance's registry (a wire store serves one member)."""
        self.metrics = metrics
        self._set_journal_gauge(self.pending_count())

    def _set_journal_gauge(self, depth: int) -> None:
        self.metrics.gauge(
            "journal_pending", "Results journaled locally, not yet acknowledged"
        ).set(float(depth))

    # -- identity ---------------------------------------------------------------
    @property
    def path(self) -> str:
        """What this "store" points at (shown by /healthz and the CLI)."""
        return f"wire:{self._primary}"

    @property
    def urls(self) -> List[str]:
        """Commit candidates: the last URL that worked first, then peers."""
        with self._lock:
            return [self._primary] + [u for u in self._peers if u != self._primary]

    def update_peers(self, urls: Sequence[str]) -> None:
        """Refresh the candidate rotation from a heartbeat response."""
        with self._lock:
            self._peers = [str(u).rstrip("/") for u in urls]

    def pending_count(self) -> int:
        """Results journaled locally but not yet acknowledged by a peer."""
        with self._lock:
            return len(self._pending)

    # -- journal ----------------------------------------------------------------
    def _load_journal(self) -> None:
        """Replay unacknowledged records from a previous process (crash-safe)."""
        if not self.journal.exists():
            self.journal.parent.mkdir(parents=True, exist_ok=True)
            return
        records: List[Dict[str, object]] = []
        for line in self.journal.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a crash mid-append
            if isinstance(record, dict) and all(f in record for f in RECORD_FIELDS):
                records.append(record)
        self._pending = records
        self._set_journal_gauge(len(records))

    def _append_journal(self, record: Dict[str, object]) -> None:
        if self.journal is None:
            return
        with self.journal.open("a") as handle:
            handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )

    def _rewrite_journal(self) -> None:
        """Journal = exactly the unacknowledged records (called under lock)."""
        if self.journal is None:
            return
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self._pending
        ]
        tmp = self.journal.with_suffix(self.journal.suffix + ".tmp")
        tmp.write_text("\n".join(lines) + ("\n" if lines else ""))
        tmp.replace(self.journal)

    # -- store subset the scheduler uses ----------------------------------------
    def put(
        self,
        spec: JobSpec,
        payload: Dict[str, object],
        status: str = "ok",
        elapsed_s: float = 0.0,
        code_version: Optional[str] = None,
        now: Optional[float] = None,  # created_at is receiver-stamped; ignored
    ) -> str:
        """Journal one result and wake the flush loop; returns the job key.

        The journal append happens *before* any network attempt, so a crash
        at any point after ``put`` returns cannot lose the result.
        """
        record = make_record(spec, payload, status, elapsed_s, code_version)
        trace = current_trace()
        if trace is not None:
            # The run span's context rides the journal and the commit wire
            # (the receiver strips it before the row — exports never change).
            record["trace"] = context_to_wire(trace)
        with self._lock:
            self._append_journal(record)
            self._pending.append(record)
            depth = len(self._pending)
        self._set_journal_gauge(depth)
        self._kick.set()
        return str(record["key"])

    def statuses(self, keys: Sequence[str]) -> Dict[str, str]:
        """Status by key: the peer's view overlaid with our unflushed results.

        The overlay matters twice: a worker mid-outage still dedupes against
        its own journaled results, and progress counts never regress while a
        commit is in flight.  When no peer is reachable the journal alone
        answers (degraded but correct: absent keys read as pending).
        """
        keys = list(keys)
        try:
            _, out = post_any(
                self.client,
                self.urls,
                lambda url: self.client.result_statuses(url, keys),
            )
        except ClusterError as error:
            # Degraded but correct (the journal answers); never silent.
            record_suppressed("remote.statuses", error, metrics=self.metrics)
            out = {}
        with self._lock:
            pending = {str(r["key"]): str(r["status"]) for r in self._pending}
        for key in keys:
            if key in pending:
                out[key] = pending[key]
        return out

    def has_ok(self, spec: JobSpec, code_version: Optional[str] = None) -> bool:
        key = spec.key(code_version)
        return self.statuses([key]).get(key) == "ok"

    # -- flush loop --------------------------------------------------------------
    def flush(self) -> int:
        """Drain the journal now; returns how many records were acknowledged.

        Raises the transport error when no candidate peer accepts the batch
        (callers that must not fail — the background loop — catch and back
        off; callers that want the error — tests, close() — see it).
        """
        acknowledged = 0
        while True:
            with self._lock:
                batch = self._pending[:FLUSH_BATCH]
            if not batch:
                return acknowledged
            url, _ = post_any(
                self.client,
                self.urls,
                lambda url: self.client.commit_results(url, batch),
            )
            with self._lock:
                # A peer acknowledged: rotate it to the front and drop the
                # batch (by identity — put() only ever appends).
                self._primary = url
                self._pending = self._pending[len(batch):]
                self._rewrite_journal()
                depth = len(self._pending)
            self._set_journal_gauge(depth)
            acknowledged += len(batch)

    def _flush_loop(self) -> None:
        while not self._stop.is_set():
            self._kick.wait(timeout=self.flush_interval)
            self._kick.clear()
            if self._stop.is_set():
                return
            try:
                self.flush()
                self._flush_failures = 0
            except ClusterError as error:
                # Coordinator gone (or every peer 5xx-ing): back off with
                # jitter so N workers do not stampede the next coordinator,
                # but never stop — the journal holds everything meanwhile.
                delay = backoff_delay(
                    self._flush_failures, cap_s=self.backoff_cap_s, rng=self._rng
                )
                self._flush_failures += 1
                self.metrics.counter(
                    "flush_failures_total", "Journal flush attempts no peer accepted"
                ).inc()
                self.metrics.histogram(
                    "flush_backoff_seconds", "Backoff delays between flush retries"
                ).observe(delay)
                record_suppressed("remote.flush_loop", error, metrics=self.metrics)
                self._stop.wait(timeout=delay)

    def _start_flusher(self) -> None:
        self._thread = threading.Thread(
            target=self._flush_loop, name="remote-store-flush", daemon=True
        )
        self._thread.start()

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Stop the flush loop, attempting one final drain first."""
        try:
            self.flush()
        except ClusterError as error:
            # The journal keeps the leftovers for the next process.
            record_suppressed("remote.close", error, metrics=self.metrics)
        self._stop.set()
        self._kick.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class RemoteRegistry:
    """Register / heartbeat / deregister against a store-native peer.

    Mirrors the :class:`~repro.cluster.registry.InstanceRegistry` surface the
    service app uses, but over HTTP — and deliberately sends **no
    timestamps**: the receiver stamps heartbeat arrivals with its own clock
    (see the registry module's clock policy), which is what makes a wire
    member's liveness independent of its local wall clock.
    """

    def __init__(
        self,
        store: RemoteStore,
        client: Optional[ClusterClient] = None,
    ) -> None:
        self.remote = store
        self.client = client or store.client
        self._registration: Optional[Dict[str, object]] = None

    def _send(self, send) -> Dict[str, object]:
        _, answer = post_any(self.client, self.remote.urls, send)
        self._absorb_peers(answer)
        return answer

    def _absorb_peers(self, answer: Dict[str, object]) -> None:
        peers = answer.get("peers")
        if isinstance(peers, list):
            self.remote.update_peers([str(p) for p in peers])

    def register(
        self,
        instance_id: str,
        host: str,
        port: int,
        role: str = "worker",
        capabilities: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        registration = {
            "instance_id": instance_id,
            "host": host,
            "port": int(port),
            "role": role,
            "capabilities": capabilities or {},
        }
        answer = self._send(
            lambda url: self.client.register(url, **registration)  # type: ignore[arg-type]
        )
        self._registration = registration
        return answer

    def heartbeat(self, instance_id: str) -> bool:
        """One wire heartbeat; re-registers when the peer lost our row.

        A failover (or an operator wiping the instances table) leaves the
        new coordinator without this member — the heartbeat answers
        ``ok: false`` and the cached registration is replayed.
        """
        try:
            answer = self._send(
                lambda url: self.client.heartbeat(url, instance_id)
            )
        except (ClusterError, ClusterHTTPError) as error:
            if not is_retryable(error):
                raise
            # Unreachable: try again next interval — counted, not silent.
            record_suppressed("remote.heartbeat", error, metrics=self.remote.metrics)
            return False
        if not answer.get("ok", False) and self._registration is not None:
            answer = self._send(
                lambda url: self.client.register(url, **self._registration)  # type: ignore[arg-type]
            )
            return bool(answer.get("ok", True))
        return bool(answer.get("ok", False))

    record_heartbeat = heartbeat

    def deregister(self, instance_id: str) -> bool:
        try:
            answer = self._send(
                lambda url: self.client.deregister(url, instance_id)
            )
        except ClusterError as error:
            # Shutting down while the peer is gone — fine, but accounted.
            record_suppressed("remote.deregister", error, metrics=self.remote.metrics)
            return False
        return bool(answer.get("ok", False))


__all__ = ["RemoteRegistry", "RemoteStore", "DEFAULT_FLUSH_INTERVAL", "FLUSH_BATCH"]
