"""Stdlib HTTP client for instance-to-instance cluster traffic.

Everything the coordinator sends a worker — and everything the CLI sends a
coordinator — goes through :class:`ClusterClient`: urllib with a small
bounded retry loop (transient connection errors back off and retry; HTTP
error responses do *not* retry, they carry the peer's structured wire error
back to the caller as :class:`ClusterHTTPError`).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro.campaign.jobs import CampaignSpec
from repro.campaign.scheduler import ShardPlan


class ClusterError(Exception):
    """A peer could not be reached (after retries)."""


class ClusterHTTPError(ClusterError):
    """A peer answered with an HTTP error; carries its wire payload."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class ClusterClient:
    """Small JSON-over-HTTP client with bounded retry on connection errors."""

    def __init__(self, timeout: float = 10.0, retries: int = 2, backoff_s: float = 0.05) -> None:
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)

    # -- plumbing --------------------------------------------------------------
    def request(
        self,
        url: str,
        method: str = "GET",
        payload: Optional[object] = None,
    ) -> Tuple[int, bytes]:
        """One request with retry-on-unreachable; returns (status, body)."""
        data = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else None
        )
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, method=method, data=data)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as error:
                # The peer answered: its wire error is the answer, not a
                # transient fault — surface it without retrying.
                try:
                    body = json.loads(error.read().decode("utf-8"))
                except Exception:  # noqa: BLE001 — non-JSON error body
                    body = {"error": str(error)}
                raise ClusterHTTPError(error.code, body) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
                last_error = error
                if attempt < self.retries:
                    time.sleep(self.backoff_s * (attempt + 1))
        raise ClusterError(f"unreachable peer {url}: {last_error}") from None

    def get_json(self, url: str) -> Dict[str, object]:
        _, body = self.request(url)
        return json.loads(body)

    def post_json(self, url: str, payload: object) -> Dict[str, object]:
        _, body = self.request(url, method="POST", payload=payload)
        return json.loads(body)

    # -- cluster verbs ---------------------------------------------------------
    def healthz(self, base_url: str) -> Dict[str, object]:
        return self.get_json(base_url + "/healthz")

    def assign(
        self, base_url: str, spec: CampaignSpec, plan: ShardPlan
    ) -> Dict[str, object]:
        """Forward one shard assignment to a worker instance."""
        envelope = {"spec": spec.to_json(), **plan.to_json()}
        return self.post_json(base_url + "/campaigns/assigned", envelope)

    def submit(self, base_url: str, spec: CampaignSpec) -> Dict[str, object]:
        """Submit a whole campaign to a coordinator."""
        return self.post_json(base_url + "/cluster/campaigns", spec.to_json())

    def cluster_status(self, base_url: str) -> Dict[str, object]:
        return self.get_json(base_url + "/cluster/status")

    def cluster_instances(self, base_url: str) -> Dict[str, object]:
        return self.get_json(base_url + "/cluster/instances")

    def submission_status(self, base_url: str, sid: str) -> Dict[str, object]:
        return self.get_json(f"{base_url}/cluster/campaigns/{sid}")

    def export(self, base_url: str, sid: str) -> bytes:
        _, body = self.request(f"{base_url}/cluster/campaigns/{sid}/export")
        return body
