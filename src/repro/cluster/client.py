"""Stdlib HTTP client for instance-to-instance cluster traffic.

Everything the coordinator sends a worker — and everything a wire-native
worker or the CLI sends a coordinator — goes through :class:`ClusterClient`:
urllib with a bounded retry loop driven by one shared **error taxonomy**:

*retryable*
    The request may succeed if repeated: the peer was unreachable
    (connection refused/reset, DNS, timeout) or answered with a transient
    HTTP status (5xx, 408 request timeout, 425 too early, 429 too many
    requests).  These back off (capped exponential + jitter) and retry.
*terminal*
    Repeating the identical request cannot help: the peer answered with a
    definitive rejection (400 bad spec, 404 no such route, 409 wrong role).
    These surface immediately as :class:`ClusterHTTPError`.

The same taxonomy (via :func:`is_retryable`) drives the wire-native worker's
journal flush loop and the coordinator's fan-out, so every layer agrees on
what is worth retrying.  Retrying is safe everywhere it is used because
every mutating cluster verb is idempotent by construction — result commits
and shard assignments are keyed by content address.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.jobs import CampaignSpec
from repro.campaign.scheduler import ShardPlan
from repro.obs.trace import TraceContext, context_to_wire

#: HTTP statuses worth retrying: the server-side fault classes (5xx) plus
#: the three 4xx statuses that describe transient conditions, not requests.
RETRYABLE_STATUSES = frozenset({408, 425, 429, 500, 502, 503, 504})

#: Default backoff shape for retry loops (seconds).
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


class ClusterError(Exception):
    """A peer could not be reached (after retries). Always retryable."""


class ClusterHTTPError(ClusterError):
    """A peer answered with an HTTP error; carries its wire payload.

    ``retry_after`` is the server's ``Retry-After`` hint in seconds (when it
    sent one — admission-control 429s do), which the retry loop prefers
    over its own computed backoff: the server knows its queue depth, the
    client is guessing.
    """

    def __init__(
        self,
        status: int,
        payload: Dict[str, object],
        retry_after: Optional[float] = None,
    ) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        """Whether repeating the identical request could succeed."""
        return self.status in RETRYABLE_STATUSES


def is_retryable(error: BaseException) -> bool:
    """The shared retry decision: transient fault vs. definitive rejection."""
    if isinstance(error, ClusterHTTPError):
        return error.retryable
    if isinstance(error, ClusterError):
        return True  # unreachable peer: connection-level, always transient
    return False


def backoff_delay(
    attempt: int,
    base_s: float = BACKOFF_BASE_S,
    cap_s: float = BACKOFF_CAP_S,
    rng: Optional[random.Random] = None,
) -> float:
    """Capped exponential backoff with full jitter for retry ``attempt``.

    Attempt 0 waits up to ``base_s``, each further attempt doubles the
    ceiling up to ``cap_s``; the actual delay is uniform in (0, ceiling]
    so N workers retrying a recovered coordinator do not stampede in
    lockstep.  Pass a seeded ``rng`` for deterministic tests.
    """
    ceiling = min(float(cap_s), float(base_s) * (2 ** max(0, int(attempt))))
    fraction = (rng or random).random()
    return ceiling * max(fraction, 0.1)


def _parse_retry_after(headers) -> Optional[float]:
    """The numeric ``Retry-After`` of an error response, if one was sent.

    Only the delta-seconds form is honoured (what this repo's services
    send); the HTTP-date form and garbage values are ignored rather than
    guessed at — the computed backoff takes over.
    """
    if headers is None:
        return None
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        seconds = float(str(value).strip())
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


class ClusterClient:
    """Small JSON-over-HTTP client retrying the retryable error class."""

    def __init__(
        self,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_s: float = BACKOFF_BASE_S,
        backoff_cap_s: float = BACKOFF_CAP_S,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._rng = rng or random.Random()

    # -- plumbing --------------------------------------------------------------
    #: Ceiling on a server-sent Retry-After (seconds) — a confused peer must
    #: not park a worker for an hour.
    MAX_RETRY_AFTER_S = 30.0

    def _sleep(self, attempt: int, retry_after: Optional[float] = None) -> None:
        if retry_after is not None and retry_after > 0:
            time.sleep(min(float(retry_after), self.MAX_RETRY_AFTER_S))
            return
        time.sleep(
            backoff_delay(attempt, self.backoff_s, self.backoff_cap_s, self._rng)
        )

    def request(
        self,
        url: str,
        method: str = "GET",
        payload: Optional[object] = None,
        data: Optional[bytes] = None,
        content_type: Optional[str] = None,
    ) -> Tuple[int, bytes]:
        """One request, retrying the retryable error class; (status, body).

        ``payload`` is JSON-encoded; ``data`` sends a raw body (the JSONL
        result-commit path).  Retrying mutating requests is safe because
        every cluster verb is idempotent (content-addressed keys).
        """
        if data is None and payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = {"Content-Type": content_type} if content_type else {}
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, method=method, data=data, headers=headers
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as error:
                try:
                    body = json.loads(error.read().decode("utf-8"))
                except Exception:  # noqa: BLE001 — non-JSON error body
                    body = {"error": str(error)}
                http_error = ClusterHTTPError(
                    error.code, body, retry_after=_parse_retry_after(error.headers)
                )
                if not http_error.retryable:
                    # A terminal rejection is the peer's *answer*, not a
                    # fault — surface it without retrying.
                    raise http_error from None
                last_error = http_error
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
                last_error = error
            if attempt < self.retries:
                retry_after = (
                    last_error.retry_after
                    if isinstance(last_error, ClusterHTTPError)
                    else None
                )
                self._sleep(attempt, retry_after=retry_after)
        if isinstance(last_error, ClusterHTTPError):
            raise last_error from None
        raise ClusterError(f"unreachable peer {url}: {last_error}") from None

    def get_json(self, url: str) -> Dict[str, object]:
        _, body = self.request(url)
        return json.loads(body)

    def post_json(self, url: str, payload: object) -> Dict[str, object]:
        _, body = self.request(url, method="POST", payload=payload)
        return json.loads(body)

    # -- cluster verbs ---------------------------------------------------------
    def healthz(self, base_url: str) -> Dict[str, object]:
        return self.get_json(base_url + "/healthz")

    def assign(
        self,
        base_url: str,
        spec: CampaignSpec,
        plan: ShardPlan,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, object]:
        """Forward one shard assignment to a worker instance.

        ``trace`` rides the envelope (ids only, never timestamps) so the
        worker's spans join the coordinator's fan-out trace.
        """
        envelope = {"spec": spec.to_json(), **plan.to_json()}
        if trace is not None:
            envelope["trace"] = context_to_wire(trace)
        return self.post_json(base_url + "/campaigns/assigned", envelope)

    def submit(
        self,
        base_url: str,
        spec: CampaignSpec,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, object]:
        """Submit a whole campaign to a coordinator."""
        envelope = dict(spec.to_json())
        if trace is not None:
            envelope["trace"] = context_to_wire(trace)
        return self.post_json(base_url + "/cluster/campaigns", envelope)

    def cluster_status(self, base_url: str) -> Dict[str, object]:
        return self.get_json(base_url + "/cluster/status")

    def cluster_instances(self, base_url: str) -> Dict[str, object]:
        return self.get_json(base_url + "/cluster/instances")

    def submission_status(self, base_url: str, sid: str) -> Dict[str, object]:
        return self.get_json(f"{base_url}/cluster/campaigns/{sid}")

    def export(self, base_url: str, sid: str) -> bytes:
        _, body = self.request(f"{base_url}/cluster/campaigns/{sid}/export")
        return body

    # -- wire-native result path ----------------------------------------------
    def commit_results(
        self, base_url: str, records: Sequence[Dict[str, object]]
    ) -> Dict[str, object]:
        """Commit a batch of result records (JSONL body); idempotent."""
        body = "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in records
        ).encode("utf-8")
        _, answer = self.request(
            base_url + "/results/commit",
            method="POST",
            data=body,
            content_type="application/jsonl",
        )
        return json.loads(answer)

    def result_statuses(
        self, base_url: str, keys: Sequence[str]
    ) -> Dict[str, str]:
        """Status by key for the subset of ``keys`` the peer's store holds."""
        answer = self.post_json(base_url + "/results/statuses", {"keys": list(keys)})
        return dict(answer.get("statuses", {}))  # type: ignore[arg-type]

    # -- wire-native membership ------------------------------------------------
    def register(
        self,
        base_url: str,
        instance_id: str,
        host: str,
        port: int,
        role: str = "worker",
        capabilities: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Register a (wire) member with a store-native peer.

        The envelope carries **no timestamps**: the receiver stamps the
        heartbeat with its own clock, so a worker with a wrong wall clock
        is indistinguishable from one with a right one.
        """
        return self.post_json(
            base_url + "/cluster/register",
            {
                "instance_id": instance_id,
                "host": host,
                "port": int(port),
                "role": role,
                "capabilities": capabilities or {},
            },
        )

    def heartbeat(self, base_url: str, instance_id: str) -> Dict[str, object]:
        return self.post_json(
            base_url + "/cluster/heartbeat", {"instance_id": instance_id}
        )

    def deregister(self, base_url: str, instance_id: str) -> Dict[str, object]:
        return self.post_json(
            base_url + "/cluster/deregister", {"instance_id": instance_id}
        )


def post_any(
    client: ClusterClient,
    urls: Sequence[str],
    send,  # Callable[[str], Dict[str, object]]
) -> Tuple[str, Dict[str, object]]:
    """Try ``send(url)`` against each candidate URL until one answers.

    This is how a wire-native worker re-resolves the coordinator: commit to
    the last known URL first, and on a retryable failure rotate through the
    other live store-native peers learned from heartbeat responses.  Returns
    ``(url, response)`` for the first success; raises the last error when
    every candidate fails (terminal errors propagate immediately — a 400
    would be a 400 everywhere).
    """
    last_error: Optional[Exception] = None
    for url in urls:
        try:
            return url, send(url)
        except ClusterError as error:
            if not is_retryable(error):
                raise
            last_error = error
    if last_error is None:
        raise ClusterError("no candidate peers to send to")
    raise last_error


__all__ = [
    "BACKOFF_BASE_S",
    "BACKOFF_CAP_S",
    "ClusterClient",
    "ClusterError",
    "ClusterHTTPError",
    "RETRYABLE_STATUSES",
    "backoff_delay",
    "is_retryable",
    "post_any",
]
