"""Deterministic fault injection for the cluster wire.

The chaos suite's one lever: :class:`FaultyClusterClient` wraps the stock
:class:`~repro.cluster.client.ClusterClient` and, per request, may

* **drop** it (raise :class:`~repro.cluster.client.ClusterError` without
  sending — the caller sees an unreachable peer),
* **delay** it (sleep before sending — exercises timeout/backoff paths),
* **duplicate** it (send the identical request twice and return the second
  answer — exercises commit idempotency end-to-end),
* **error** it (send, then *discard* the real answer and surface an
  injected HTTP 503 — the caller retries a request that in fact landed,
  the harshest duplicate of all).

Decisions come from a seeded RNG, so a chaos run is reproducible from its
:class:`FaultPlan`; injected counts are tallied for assertions ("the run
really did drop commits") and for ``BENCH_cluster.json``.

Process-death helpers (:func:`kill_instance`) complete the harness: a
killed :class:`~repro.service.app.CampaignServer` leaves exactly the
footprint of a SIGKILL — a stale registry row, an expired lease, an
abandoned queue — which is what coordinator failover must recover from.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.client import ClusterClient, ClusterError, ClusterHTTPError


@dataclass(frozen=True)
class FaultPlan:
    """Per-request fault probabilities (each in [0, 1]) and the RNG seed."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.05
    error: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"fault probability {name}={value} must lie in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    @property
    def active(self) -> bool:
        return any((self.drop, self.duplicate, self.delay, self.error))


class FaultyClusterClient(ClusterClient):
    """A :class:`ClusterClient` that injects faults per the plan.

    Faults apply at the transport seam — :meth:`request` — so every verb
    (assignments, commits, heartbeats, status polls) is exposed to them,
    exactly like a flaky network would.  An injected fault surfaces to the
    *caller* (a drop is not quietly re-sent by the inner retry loop), which
    forces the journal/backoff/peer-rotation machinery above the client to
    actually recover from it.
    """

    def __init__(self, plan: FaultPlan, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.plan = plan
        self._fault_rng = random.Random(plan.seed)
        self._fault_lock = threading.Lock()
        self.injected: Counter = Counter()

    def _decide(self) -> Dict[str, bool]:
        """One seeded draw per request (locked: request threads interleave)."""
        with self._fault_lock:
            return {
                "drop": self._fault_rng.random() < self.plan.drop,
                "duplicate": self._fault_rng.random() < self.plan.duplicate,
                "delay": self._fault_rng.random() < self.plan.delay,
                "error": self._fault_rng.random() < self.plan.error,
            }

    def request(
        self,
        url: str,
        method: str = "GET",
        payload: Optional[object] = None,
        data: Optional[bytes] = None,
        content_type: Optional[str] = None,
    ) -> Tuple[int, bytes]:
        send = lambda: super(FaultyClusterClient, self).request(  # noqa: E731
            url, method=method, payload=payload, data=data, content_type=content_type
        )
        faults = self._decide()
        if faults["delay"]:
            with self._fault_lock:
                self.injected["delay"] += 1
            time.sleep(self.plan.delay_s)
        if faults["drop"]:
            with self._fault_lock:
                self.injected["drop"] += 1
            raise ClusterError(f"injected drop: {method} {url}")
        if faults["duplicate"]:
            with self._fault_lock:
                self.injected["duplicate"] += 1
            send()  # first copy lands; its answer is discarded
            return send()
        if faults["error"]:
            # The request *lands* — then the answer is replaced with a 503,
            # so the caller retries something the peer already applied.
            with self._fault_lock:
                self.injected["error"] += 1
            try:
                send()
            except ClusterError:
                pass  # the peer really was down; the 503 below still stands
            raise ClusterHTTPError(503, {"error": "injected 503"})
        return send()

    def injected_counts(self) -> Dict[str, int]:
        with self._fault_lock:
            return dict(self.injected)


def kill_instance(server: object) -> None:
    """Crash-stop one :class:`~repro.service.app.CampaignServer`.

    Delegates to its ``kill()`` (socket closed, work abandoned, registry row
    and lease left to rot) — the in-process equivalent of ``kill -9``.
    """
    kill = getattr(server, "kill", None)
    if kill is None:
        raise TypeError(f"{type(server).__name__} has no kill(); cannot crash-stop it")
    kill()


@dataclass
class ChaosTally:
    """Recovery timings and fault counts one chaos run records."""

    injected: Dict[str, int] = field(default_factory=dict)
    kill_at: Optional[float] = None
    lease_seized_at: Optional[float] = None
    completed_at: Optional[float] = None

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"injected": dict(self.injected)}
        if self.kill_at is not None and self.lease_seized_at is not None:
            row["lease_seizure_s"] = round(self.lease_seized_at - self.kill_at, 3)
        if self.kill_at is not None and self.completed_at is not None:
            row["recovery_to_done_s"] = round(self.completed_at - self.kill_at, 3)
        return row


__all__ = ["ChaosTally", "FaultPlan", "FaultyClusterClient", "kill_instance"]
