"""Cluster layer: many ``an5d serve`` instances cooperating on one store.

The paper's tuning matrix is embarrassingly shardable — every job already
has a stable content-addressed shard — so horizontal scale is a coordination
problem, not a compute one.  This package turns N independent service
processes into one campaign service:

``registry``
    Store-backed instance registry (``instances`` table): endpoint,
    capabilities, heartbeat timestamp; liveness is *derived* from heartbeat
    age, never stored.
``coordinator``
    Accepts submissions into the store-backed queue (``submissions`` /
    ``assignments`` tables), partitions campaigns over live workers, forwards
    each instance its :class:`~repro.campaign.scheduler.ShardPlan` over HTTP
    with retry, re-assigns the shards of lapsed instances, and aggregates
    per-instance progress.
``client``
    The stdlib HTTP client used for all instance-to-instance traffic.
``local``
    :class:`LocalCluster`: N workers + a coordinator booted in one process
    (the ``an5d cluster up`` topology).

Quick use::

    from repro.cluster import LocalCluster
    from repro.cluster.client import ClusterClient

    with LocalCluster(store="campaign.sqlite", instances=3) as cluster:
        client = ClusterClient()
        submitted = client.submit(cluster.url, spec)
        ...  # poll client.submission_status(cluster.url, submitted["id"])
"""

from repro.cluster.client import ClusterClient, ClusterError, ClusterHTTPError
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.local import LocalCluster
from repro.cluster.registry import (
    ClusterConfig,
    Instance,
    InstanceRegistry,
    generate_instance_id,
)

__all__ = [
    "ClusterClient",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterHTTPError",
    "Instance",
    "InstanceRegistry",
    "LocalCluster",
    "generate_instance_id",
]
