"""Cluster layer: many ``an5d serve`` instances cooperating on one store.

The paper's tuning matrix is embarrassingly shardable — every job already
has a stable content-addressed shard — so horizontal scale is a coordination
problem, not a compute one.  This package turns N independent service
processes into one campaign service:

``registry``
    Store-backed instance registry (``instances`` table): endpoint,
    capabilities, heartbeat timestamp; liveness is *derived* from heartbeat
    age, never stored.
``coordinator``
    Accepts submissions into the store-backed queue (``submissions`` /
    ``assignments`` tables), partitions campaigns over live workers, forwards
    each instance its :class:`~repro.campaign.scheduler.ShardPlan` over HTTP
    with retry, re-assigns the shards of lapsed instances, and aggregates
    per-instance progress.
``client``
    The stdlib HTTP client used for all instance-to-instance traffic, plus
    the shared retryable-vs-terminal error taxonomy every retry loop obeys.
``remote``
    Wire-native membership: :class:`RemoteStore` (results committed over
    ``POST /results/commit``, journaled locally while the coordinator is
    unreachable) and :class:`RemoteRegistry` (register/heartbeat over HTTP,
    receiver-stamped clocks) — workers with no filesystem store access.
``faults``
    Deterministic fault injection (drop/delay/duplicate/5xx, seeded) and
    crash-stop helpers powering the chaos test suite.
``local``
    :class:`LocalCluster`: N workers + a coordinator (+ optional lease
    standbys, wire workers and fault injection) booted in one process
    (the ``an5d cluster up`` topology).

Quick use::

    from repro.cluster import LocalCluster
    from repro.cluster.client import ClusterClient

    with LocalCluster(store="campaign.sqlite", instances=3) as cluster:
        client = ClusterClient()
        submitted = client.submit(cluster.url, spec)
        ...  # poll client.submission_status(cluster.url, submitted["id"])
"""

from repro.cluster.client import (
    ClusterClient,
    ClusterError,
    ClusterHTTPError,
    RETRYABLE_STATUSES,
    backoff_delay,
    is_retryable,
)
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.faults import FaultPlan, FaultyClusterClient, kill_instance
from repro.cluster.local import LocalCluster
from repro.cluster.registry import (
    ClusterConfig,
    Instance,
    InstanceRegistry,
    generate_instance_id,
)
from repro.cluster.remote import RemoteRegistry, RemoteStore

__all__ = [
    "ClusterClient",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterHTTPError",
    "FaultPlan",
    "FaultyClusterClient",
    "Instance",
    "InstanceRegistry",
    "LocalCluster",
    "RETRYABLE_STATUSES",
    "RemoteRegistry",
    "RemoteStore",
    "backoff_delay",
    "generate_instance_id",
    "is_retryable",
    "kill_instance",
]
