"""The cluster coordinator: one workload, many instances, one store.

A coordinator accepts campaign submissions, records them in the store-backed
submission queue (``submissions`` table), partitions each campaign into as
many shards as there are live worker instances, persists the shard → instance
assignment (``assignments`` table) and forwards every instance its slice over
HTTP (``POST /campaigns/assigned``) with bounded retry.  Because every
instance commits results straight into the shared store, the coordinator
never relays data — it only plans, forwards and watches.

Failover
--------
The coordinator itself is no longer a single point of failure: fan-out is
gated on a **lease** (one row in the store's ``leases`` table) renewed on
every monitor tick.  Any number of coordinator-capable instances may run —
they all accept submissions into the queue, but only the lease holder
dispatches.  When the holder dies its lease stops renewing and expires
after ``lease_ttl``; the first standby whose tick runs after that seizes
the lease with one atomic compare-and-swap and resumes fan-out from the
``submissions``/``assignments`` tables, which hold the entire dispatch
state.  Nothing is handed over — the store *is* the handover.

Failure semantics
-----------------
Liveness is heartbeat age (:class:`~repro.cluster.registry.InstanceRegistry`).
On every :meth:`ClusterCoordinator.tick` — run by the coordinator's monitor
thread — each unfinished submission is re-checked:

* shards owned by an instance whose heartbeat lapsed (or that refused the
  forward) are re-assigned round-robin over the remaining live workers and
  re-forwarded — the receiving worker simply re-enqueues the campaign under
  its widened :class:`~repro.campaign.scheduler.ShardPlan`, and the store
  dedupe makes any overlap with work the dead instance already committed
  free;
* a submission whose full job-key set is answered by the store is marked
  ``done`` (or ``failed`` when some jobs failed permanently);
* a submission with no live workers stays ``queued`` and is retried on a
  later tick when an instance (re)appears.

Exports and reports for a submission cover the *whole* campaign (the full
shard plan), so they are byte-identical to a single-instance
``an5d campaign run`` over the same spec — the acceptance bar for the whole
layer.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.campaign.jobs import CampaignSpec, shard_of_key
from repro.campaign.scheduler import CampaignScheduler, ShardPlan
from repro.campaign.store import ResultStore
from repro.cluster.client import ClusterClient, ClusterError, ClusterHTTPError
from repro.cluster.registry import InstanceRegistry, generate_instance_id
from repro.obs import MetricsRegistry, emit_event, get_registry, span
from repro.obs.trace import TraceContext, current_trace

#: Submission lifecycle states recorded in the queue.
SUBMISSION_STATES = ("queued", "dispatched", "done", "failed")

#: Most recent settled submissions included in the aggregated status view
#: (unfinished submissions are always included); bounds the payload of
#: ``GET /cluster/status`` on long-lived stores.
STATUS_SETTLED_LIMIT = 50

#: Cached settled-status payloads kept in memory (insertion-ordered evict).
SETTLED_CACHE_LIMIT = 128

#: Ticks without progress after which a dispatched submission is re-forwarded.
#: Heartbeat liveness cannot see run-level failures on an instance that stays
#: up (a crashed scheduler run, a worker restarted under the same id whose
#: in-memory queue is gone); re-forwarding is idempotent on the worker, so a
#: stalled submission is simply handed out again.
STALL_TICKS = 3


class ClusterCoordinator:
    """Plans, forwards and watches campaigns across registered instances."""

    #: Forwarding budget per peer: fan-out runs inline under the submission
    #: lock, so a wedged-but-registered worker must cost bounded time
    #: (timeout x (retries + 1) well below a submitting client's patience).
    FORWARD_TIMEOUT_S = 5.0
    FORWARD_RETRIES = 1

    #: The one lease name coordinators contend on.
    LEASE_NAME = "coordinator"

    def __init__(
        self,
        store: ResultStore,
        registry: InstanceRegistry,
        client: Optional[ClusterClient] = None,
        instance_id: Optional[str] = None,
        lease_ttl: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self.registry = registry
        self.metrics = metrics if metrics is not None else get_registry()
        self.client = client or ClusterClient(
            timeout=self.FORWARD_TIMEOUT_S, retries=self.FORWARD_RETRIES
        )
        self.instance_id = instance_id or generate_instance_id("coord")
        # The lease must outlive the gap between two monitor ticks (one tick
        # per heartbeat interval renews it), and expire fast enough that a
        # standby takes over within the same budget a dead *worker* gets —
        # the liveness timeout is exactly that budget.
        self.lease_ttl = (
            float(lease_ttl) if lease_ttl is not None else registry.liveness_timeout
        )
        # tick() may be driven by a monitor thread *and* ad-hoc callers
        # (tests, CLI); planning for one submission must not interleave.
        # Locks are per submission: a hung peer stalls only the submission
        # being forwarded to it, never the whole submission path.
        self._locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        # sid -> (settled jobs at last tick, ticks without progress).
        self._stall: Dict[str, Tuple[int, int]] = {}
        # Settled submissions cannot change *at one updated_at stamp*; their
        # status payloads are cached keyed on that stamp so /cluster/status
        # does not re-expand every historical campaign, while a re-opened
        # submission (bumped updated_at, possibly via another member)
        # invalidates naturally on every cluster member.
        self._settled_cache: Dict[str, Tuple[float, Dict[str, object]]] = {}
        # sid -> trace context of the original submission, so a tick()-driven
        # re-dispatch joins the submit's trace instead of starting a new one.
        self._traces: Dict[str, Optional[TraceContext]] = {}
        # Last holds_lease() verdict, to detect acquire/lose transitions.
        self._lease_held: Optional[bool] = None

    def _submission_lock(self, sid: str) -> threading.Lock:
        with self._locks_guard:
            return self._locks.setdefault(sid, threading.Lock())

    # -- lease -----------------------------------------------------------------
    def holds_lease(self) -> bool:
        """Acquire/renew/seize the coordinator lease; True when we hold it.

        One atomic statement in the store (see
        :meth:`~repro.campaign.store.ResultStore.acquire_lease`): the current
        holder renews, anyone else succeeds only once the lease expired.
        """
        start = time.perf_counter()
        held = self.store.acquire_lease(
            self.LEASE_NAME, self.instance_id, self.lease_ttl,
            now=self.registry.clock(),
        )
        self.metrics.histogram(
            "lease_renewal_seconds", "Coordinator lease acquire/renew CAS latency"
        ).observe(time.perf_counter() - start)
        if held != self._lease_held:
            previous, self._lease_held = self._lease_held, held
            if held:
                # Every acquisition after the first is a failover event: the
                # previous holder's lease lapsed (or was handed back) and
                # this standby's CAS won.
                self.metrics.counter(
                    "lease_acquisitions_total", "Times this instance won the lease"
                ).inc()
                emit_event(
                    "lease_acquired", instance=self.instance_id,
                    failover=previous is not None,
                )
                if previous is not None:
                    with span("cluster.failover", instance=self.instance_id):
                        pass  # marks the takeover instant in the span store
            elif previous:
                emit_event("lease_lost", instance=self.instance_id)
        return held

    def lease(self) -> Optional[Dict[str, object]]:
        return self.store.get_lease(self.LEASE_NAME)

    def release_lease(self) -> bool:
        """Hand the lease back (graceful shutdown: no TTL wait for standbys)."""
        return self.store.release_lease(self.LEASE_NAME, self.instance_id)

    # -- submissions -----------------------------------------------------------
    def submit(self, spec: CampaignSpec) -> Dict[str, object]:
        """Queue one campaign and — when holding the lease — fan it out.

        Idempotent: an in-flight submission of the same spec is returned
        as-is; a finished one is re-opened (and served from the warm store
        by every worker).  A standby (an instance that does not hold the
        coordinator lease) still *accepts* the submission — it lands in the
        store queue in state ``queued`` and the lease holder's next tick
        dispatches it — so clients may submit to any coordinator-capable
        instance.
        """
        sid = spec.short_id()
        with self._submission_lock(sid):
            # Remember the submitting request's trace so later re-dispatches
            # (tick-driven re-assignment after a worker death) join it.
            trace = current_trace()
            if trace is not None or sid not in self._traces:
                self._traces[sid] = trace
            existing = self.store.get_submission(sid)
            if existing is None or existing["state"] in ("done", "failed"):
                live = self.registry.live_workers()
                shards = max(1, len(live))
                self.store.enqueue_submission(sid, spec.canonical(), shards)
                self.store.clear_assignments(sid)
                self._settled_cache.pop(sid, None)
                self._stall.pop(sid, None)
                if self.holds_lease():
                    self._fan_out(sid)
        return self.submission_status(sid)

    def _load(self, sid: str) -> Tuple[Dict[str, object], CampaignSpec]:
        row = self.store.get_submission(sid)
        if row is None:
            raise KeyError(f"unknown submission {sid!r}")
        return row, CampaignSpec.from_json(json.loads(row["spec"]))

    def _fan_out(self, sid: str) -> None:
        """(Re-)assign every shard to a live worker and forward the slices.

        Instances that refuse a forward are treated as dead for the rest of
        this pass, so their shards re-home immediately; if no live worker
        remains the submission stays ``queued`` for a later tick.
        """
        with span(
            "cluster.fan_out", parent=self._traces.get(sid), submission=sid
        ) as ctx:
            self._fan_out_traced(sid, ctx)

    def _fan_out_traced(self, sid: str, trace: TraceContext) -> None:
        row, spec = self._load(sid)
        shards = int(row["shards"])
        assigned: Dict[int, str] = {
            int(r["shard_index"]): str(r["instance_id"])
            for r in self.store.assignment_rows(sid)
        }
        # Shards that end up on a different owner than this snapshot are
        # re-assignments (worker death, refused forward) — the counter
        # ``an5d top``'s REASG column shows.
        prior_owner = dict(assigned)
        assign_errors = self.metrics.counter(
            "cluster_assign_errors_total",
            "Shard forwards a peer refused or never answered",
            labels=("error_class",),
        )
        bad: set = set()
        # Each round either succeeds or marks at least one instance bad, so
        # the loop is bounded by the registry size.
        while True:
            live = [i for i in self.registry.live_workers() if i.instance_id not in bad]
            if not live:
                self.store.update_submission(sid, "queued")
                return
            live_ids = {instance.instance_id for instance in live}
            load = {iid: 0 for iid in live_ids}
            for owner in assigned.values():
                if owner in load:
                    load[owner] += 1
            for index in range(shards):
                owner = assigned.get(index)
                if owner in live_ids:
                    continue
                # Least-loaded live worker (ties: registration order).
                new_owner = min(live, key=lambda i: load[i.instance_id])
                assigned[index] = new_owner.instance_id
                load[new_owner.instance_id] += 1
            groups: Dict[str, List[int]] = {}
            for index, owner in sorted(assigned.items()):
                groups.setdefault(owner, []).append(index)
            failures = set()
            for instance in live:
                indices = groups.get(instance.instance_id)
                if not indices:
                    continue
                plan = ShardPlan(shards, tuple(indices))
                try:
                    self.client.assign(instance.url, spec, plan, trace=trace)
                except ClusterHTTPError as error:
                    if error.status == 400:
                        # A spec/plan rejection is deterministic: the same
                        # envelope would be refused by every peer, so
                        # retrying elsewhere forever would just hide it.
                        # Fail the submission loudly.
                        assign_errors.inc(error_class="ClusterHTTPError")
                        emit_event(
                            "assignment_rejected", submission=sid,
                            instance=instance.instance_id, status=error.status,
                        )
                        self.store.update_submission(sid, "failed")
                        return
                    # Other rejections (404 route missing on an old binary,
                    # 409 wrong role) are instance-specific — route around
                    # that instance like an unreachable one.
                    assign_errors.inc(error_class="ClusterHTTPError")
                    failures.add(instance.instance_id)
                except ClusterError as error:
                    assign_errors.inc(error_class=type(error).__name__)
                    failures.add(instance.instance_id)
            if not failures:
                reassigned = sum(
                    1
                    for index, owner in assigned.items()
                    if index in prior_owner and prior_owner[index] != owner
                )
                self.metrics.counter(
                    "cluster_fanout_total", "Shards dispatched to workers"
                ).inc(len(assigned))
                if reassigned:
                    self.metrics.counter(
                        "cluster_reassign_total",
                        "Shards moved off their previous (dead/refusing) owner",
                    ).inc(reassigned)
                    emit_event(
                        "shards_reassigned", submission=sid, count=reassigned
                    )
                for index, owner in assigned.items():
                    self.store.set_assignment(sid, index, owner)
                self.store.update_submission(sid, "dispatched")
                emit_event(
                    "campaign_fanned_out",
                    campaign=sid,
                    shards=shards,
                    instances=sorted(set(assigned.values())),
                    reassigned=reassigned,
                )
                return
            bad |= failures
            for index, owner in list(assigned.items()):
                if owner in failures:
                    del assigned[index]

    # -- progress --------------------------------------------------------------
    def _full_scheduler(self, spec: CampaignSpec) -> CampaignScheduler:
        return CampaignScheduler(spec, self.store, plan=ShardPlan())

    def progress(self, sid: str) -> Dict[str, int]:
        """Whole-campaign progress (every shard), straight from the store."""
        _, spec = self._load(sid)
        return self._full_scheduler(spec).progress_counts()

    def job_keys(self, sid: str) -> List[str]:
        """The full campaign's job content addresses (exports/reports)."""
        _, spec = self._load(sid)
        return self._full_scheduler(spec).job_keys()

    def submission_status(self, sid: str) -> Dict[str, object]:
        """One submission: state, spec, shard assignments, merged progress.

        One campaign expansion and one store lookup serve the totals *and*
        every per-instance slice — this endpoint is polled, so it must not
        scale with the number of assigned instances.
        """
        row, spec = self._load(sid)
        shards = int(row["shards"])
        keys = [job.key() for job in spec.expand()]
        statuses = self.store.statuses(keys)

        def counts(subset: List[str]) -> Dict[str, int]:
            done = sum(1 for key in subset if statuses.get(key) == "ok")
            known = sum(1 for key in subset if key in statuses)
            return {
                "total": len(subset),
                "done": done,
                "failed": known - done,
                "pending": len(subset) - known,
            }

        by_shard: Dict[int, List[str]] = {}
        for key in keys:
            by_shard.setdefault(shard_of_key(key, shards), []).append(key)
        groups: Dict[str, List[int]] = {}
        for assignment in self.store.assignment_rows(sid):
            groups.setdefault(str(assignment["instance_id"]), []).append(
                int(assignment["shard_index"])
            )
        per_instance = {
            iid: {
                "shard_indices": indices,
                "progress": counts(
                    [key for index in indices for key in by_shard.get(index, [])]
                ),
            }
            for iid, indices in sorted(groups.items())
        }
        return {
            "id": sid,
            "state": row["state"],
            "shards": shards,
            "describe": spec.describe(),
            "spec": spec.to_json(),
            "jobs": counts(keys),
            "instances": per_instance,
        }

    # -- supervision -----------------------------------------------------------
    def tick(self) -> Dict[str, object]:
        """One supervision pass: settle finished work, re-home lapsed shards.

        The pass is lease-gated: a standby's tick only *attempts* the lease
        (which is how it eventually seizes an expired one) and otherwise
        does nothing — two coordinators must never fan out concurrently.
        """
        if not self.holds_lease():
            return {"settled": [], "redispatched": [], "standby": True}
        settled: List[str] = []
        redispatched: List[str] = []
        for row in self.store.submission_rows():
            if row["state"] in ("done", "failed"):
                continue
            sid = str(row["id"])
            with self._submission_lock(sid):
                row = self.store.get_submission(sid)
                if row is None or row["state"] in ("done", "failed"):
                    continue
                progress = self.progress(sid)
                if progress["pending"] == 0:
                    state = "failed" if progress["failed"] else "done"
                    self.store.update_submission(sid, state)
                    self._stall.pop(sid, None)
                    settled.append(sid)
                    continue
                assigned = {
                    int(r["shard_index"]): str(r["instance_id"])
                    for r in self.store.assignment_rows(sid)
                }
                live = self.registry.live_workers()
                live_ids = {i.instance_id for i in live}
                if not assigned and live and int(row["shards"]) != len(live):
                    # Nothing was ever dispatched (e.g. submitted while no
                    # worker was live): re-partition for the current
                    # membership instead of staying frozen at the old count.
                    self.store.enqueue_submission(sid, str(row["spec"]), len(live))
                    row = self.store.get_submission(sid)
                uncovered = set(range(int(row["shards"]))) - set(assigned)
                lapsed = {owner for owner in assigned.values() if owner not in live_ids}
                # Stall detection: owners can be live yet have lost the run
                # (crashed scheduler pass, worker restarted under the same
                # id).  No progress for STALL_TICKS ticks -> re-forward.
                done_now = progress["done"] + progress["failed"]
                last_done, stalled = self._stall.get(sid, (-1, 0))
                stalled = 0 if done_now != last_done else stalled + 1
                self._stall[sid] = (done_now, stalled)
                if row["state"] == "queued" or uncovered or lapsed or stalled >= STALL_TICKS:
                    self._stall[sid] = (done_now, 0)
                    self._fan_out(sid)
                    redispatched.append(sid)
        return {"settled": settled, "redispatched": redispatched}

    def _cached_submission_status(self, row: Dict[str, object]) -> Dict[str, object]:
        """Status of one submission, served from cache once it settled.

        A settled (done/failed) submission cannot change without its
        ``updated_at`` stamp moving (a re-submission — possibly accepted by a
        *different* cluster member — re-opens it and bumps the stamp), so the
        stamp is the cache key: full payloads are computed once per settle on
        every member, never served stale.
        """
        sid = str(row["id"])
        if row["state"] in ("done", "failed"):
            stamp = float(row["updated_at"])  # type: ignore[arg-type]
            cached = self._settled_cache.get(sid)
            if cached is None or cached[0] != stamp:
                cached = (stamp, self.submission_status(sid))
                self._settled_cache[sid] = cached
                while len(self._settled_cache) > SETTLED_CACHE_LIMIT:
                    self._settled_cache.pop(next(iter(self._settled_cache)))
            return cached[1]
        return self.submission_status(sid)

    def status(self, settled_limit: int = STATUS_SETTLED_LIMIT) -> Dict[str, object]:
        """The aggregated cluster view served by ``GET /cluster/status``.

        Every unfinished submission is included; settled history is capped at
        the ``settled_limit`` most recent, so the payload (and the work to
        produce it) stays bounded on stores that have seen many campaigns.
        """
        rows = self.store.submission_rows()
        unsettled = [row for row in rows if row["state"] not in ("done", "failed")]
        settled = [row for row in rows if row["state"] in ("done", "failed")]
        keep = unsettled + settled[-max(0, settled_limit):]
        keep.sort(key=lambda row: (row["created_at"], row["id"]))
        payload: Dict[str, object] = {
            "instances": self.registry.summaries(),
            "submissions": [self._cached_submission_status(row) for row in keep],
        }
        lease = self.lease()
        if lease is not None:
            payload["lease"] = {
                **lease,
                "held_by_me": lease["holder"] == self.instance_id,
            }
        # Coordinator-side aggregation: this member's registry snapshot
        # (counters/gauges by series, histogram quantiles) so one
        # /cluster/status answers the whole-cluster dashboards' first
        # question — dispatch/re-assignment totals — without a scrape pass.
        payload["observability"] = {
            "instance": self.instance_id,
            "metrics": self.metrics.snapshot(),
        }
        return payload
