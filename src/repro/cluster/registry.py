"""Instance registry: who is part of the cluster, and who is still alive.

The registry is a thin policy layer over the store's ``instances`` table
(:meth:`repro.campaign.store.ResultStore.register_instance` and friends).
Instances register themselves with their HTTP endpoint and capabilities,
then refresh a heartbeat timestamp on a fixed interval; *liveness is derived
from heartbeat age*, never stored — an instance whose latest heartbeat is
older than the liveness timeout is lapsed, and the coordinator re-assigns
its shards.  Because the table lives in the shared store, every cluster
member (and any offline CLI invocation pointed at the store) sees the same
membership without talking to anyone.

Clock policy: **sender timestamps are never trusted.**  A heartbeat is an
event, not a claim — :meth:`InstanceRegistry.record_heartbeat` stamps the
arrival with the *receiver's* clock (the registry's injected ``clock=``),
and the wire decoders reject any envelope that tries to carry its own
timestamp.  A wire-native worker whose wall clock is minutes wrong is
therefore indistinguishable from one whose clock is right; liveness skew
reduces to the receiver's own clock monotonicity.  Members that write the
store *directly* (store-native instances heartbeating through their own
registry object) still stamp with their local clock, so multi-box
deployments of store-native members need NTP within the liveness timeout —
wire members do not.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import repro
from repro.campaign.store import ResultStore

#: Roles an instance may register under.
ROLES = ("worker", "coordinator", "both")

#: Default seconds between heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Default heartbeat age beyond which an instance counts as dead.
DEFAULT_LIVENESS_TIMEOUT = 10.0


def generate_instance_id(prefix: str = "i") -> str:
    """A short, unique instance id (host + pid keep it human-debuggable)."""
    suffix = uuid.uuid4().hex[:6]
    return f"{prefix}-{socket.gethostname()}-{os.getpid()}-{suffix}"


@dataclass(frozen=True)
class ClusterConfig:
    """How one service instance participates in a cluster."""

    instance_id: str
    role: str = "worker"
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    liveness_timeout: float = DEFAULT_LIVENESS_TIMEOUT

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown cluster role {self.role!r}; expected one of {ROLES}")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.liveness_timeout <= self.heartbeat_interval:
            raise ValueError("liveness_timeout must exceed the heartbeat interval")

    @property
    def coordinates(self) -> bool:
        """Whether this instance accepts cluster submissions and fans out."""
        return self.role in ("coordinator", "both")

    @property
    def executes(self) -> bool:
        """Whether this instance accepts shard assignments."""
        return self.role in ("worker", "both")


@dataclass(frozen=True)
class Instance:
    """One registered service instance (a row of the ``instances`` table)."""

    instance_id: str
    host: str
    port: int
    role: str
    capabilities: Dict[str, object]
    started_at: float
    heartbeat_at: float

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def executes(self) -> bool:
        return self.role in ("worker", "both")

    @property
    def coordinates(self) -> bool:
        return self.role in ("coordinator", "both")

    def heartbeat_age(self, now: Optional[float] = None) -> float:
        """Age of the last heartbeat against the *reader's* clock.

        ``heartbeat_at`` was stamped by whichever registry received the
        beat, never by the sender — see the module docstring's clock policy.
        """
        return (time.time() if now is None else now) - self.heartbeat_at

    def live(self, timeout: float, now: Optional[float] = None) -> bool:
        """Liveness is purely heartbeat age — no stored alive/dead flag."""
        return self.heartbeat_age(now) <= timeout

    def summary(self, timeout: float, now: Optional[float] = None) -> Dict[str, object]:
        return {
            "instance_id": self.instance_id,
            "url": self.url,
            "role": self.role,
            "capabilities": self.capabilities,
            "heartbeat_age_s": round(self.heartbeat_age(now), 3),
            "live": self.live(timeout, now),
        }


class InstanceRegistry:
    """Store-backed membership view with heartbeat-derived liveness."""

    def __init__(
        self,
        store: ResultStore,
        liveness_timeout: float = DEFAULT_LIVENESS_TIMEOUT,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.store = store
        self.liveness_timeout = float(liveness_timeout)
        self._clock = clock

    # -- membership ------------------------------------------------------------
    def register(
        self,
        instance_id: str,
        host: str,
        port: int,
        role: str = "worker",
        capabilities: Optional[Dict[str, object]] = None,
    ) -> Instance:
        if role not in ROLES:
            raise ValueError(f"unknown cluster role {role!r}; expected one of {ROLES}")
        merged = {"version": repro.__version__}
        merged.update(capabilities or {})
        now = self._clock()
        self.store.register_instance(instance_id, host, port, role, merged, now=now)
        return Instance(instance_id, host, int(port), role, merged, now, now)

    def clock(self) -> float:
        """The receiver-side clock every registry write is stamped with."""
        return self._clock()

    def record_heartbeat(self, instance_id: str) -> bool:
        """Record a heartbeat *arrival*, stamped with this registry's clock.

        This is the receiving end of ``POST /cluster/heartbeat`` — whatever
        clock the sender believes in, the stored timestamp is ours, which is
        what makes wire-member liveness immune to sender clock skew.
        Returns False for an unknown instance (the sender must re-register).
        """
        return self.store.heartbeat_instance(instance_id, now=self._clock())

    # ``heartbeat`` is the self-stamping spelling store-native members use on
    # their own registry object; it is the same receiver-clock write, because
    # for a store-native member the sender *is* the receiver.
    heartbeat = record_heartbeat

    def deregister(self, instance_id: str) -> bool:
        return self.store.remove_instance(instance_id)

    # -- views -----------------------------------------------------------------
    def instances(self) -> List[Instance]:
        return [
            Instance(
                instance_id=row["instance_id"],
                host=row["host"],
                port=row["port"],
                role=row["role"],
                capabilities=row["capabilities"],
                started_at=row["started_at"],
                heartbeat_at=row["heartbeat_at"],
            )
            for row in self.store.instance_rows()
        ]

    def get(self, instance_id: str) -> Optional[Instance]:
        for instance in self.instances():
            if instance.instance_id == instance_id:
                return instance
        return None

    def live(self) -> List[Instance]:
        now = self._clock()
        return [i for i in self.instances() if i.live(self.liveness_timeout, now)]

    def live_workers(self) -> List[Instance]:
        """Live instances that accept shard assignments, registration order."""
        return [i for i in self.live() if i.executes]

    def live_coordinators(self) -> List[Instance]:
        """Live instances that can coordinate (coordinator/both roles).

        Wire-native workers resolve their commit targets from this list:
        any of these is store-native and can receive ``/results/commit``,
        whether or not it currently holds the coordinator lease.
        """
        return [i for i in self.live() if i.coordinates]

    def lapsed(self) -> List[Instance]:
        now = self._clock()
        return [i for i in self.instances() if not i.live(self.liveness_timeout, now)]

    def summaries(self) -> List[Dict[str, object]]:
        now = self._clock()
        return [i.summary(self.liveness_timeout, now) for i in self.instances()]
