"""Boot a whole cluster — N worker instances plus a coordinator — in-process.

This is the one-command local topology behind ``an5d cluster up``: every
instance is a full :class:`~repro.service.app.CampaignServer` on its own
ephemeral port, all sharing one :class:`~repro.campaign.store.ResultStore`
object, with the coordinator running the supervision loop.  Tests and
``benchmarks/bench_cluster.py`` drive the same class.

In-process instances share the GIL, so CPU-bound scaling is better observed
with separate ``an5d serve --cluster`` processes (the CI cluster-smoke job's
topology); LocalCluster trades that for a single-command bring-up with real
HTTP between the members.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.campaign.store import ResultStore
from repro.cluster.registry import ClusterConfig

#: Test/local-friendly heartbeat cadence (instances share a process anyway).
LOCAL_HEARTBEAT_INTERVAL = 0.2
LOCAL_LIVENESS_TIMEOUT = 2.0


class LocalCluster:
    """N cooperating ``an5d serve`` instances on one store, one process."""

    def __init__(
        self,
        store: Union[str, Path, ResultStore] = "campaign.sqlite",
        instances: int = 2,
        host: str = "127.0.0.1",
        settings: Optional[object] = None,  # service.WorkerSettings
        heartbeat_interval: float = LOCAL_HEARTBEAT_INTERVAL,
        liveness_timeout: float = LOCAL_LIVENESS_TIMEOUT,
        prefix: str = "w",
    ) -> None:
        if instances < 1:
            raise ValueError("a cluster needs at least one worker instance")
        self._owns_store = not isinstance(store, ResultStore)
        self.store = ResultStore(store) if self._owns_store else store
        self.instances = int(instances)
        self.host = host
        self.settings = settings
        self.heartbeat_interval = float(heartbeat_interval)
        self.liveness_timeout = float(liveness_timeout)
        self.prefix = prefix
        self.coordinator = None  # type: Optional[object]  # CampaignServer
        self.workers: List[object] = []  # CampaignServer

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "LocalCluster":
        # Imported lazily: repro.service.app imports repro.cluster, so a
        # top-level import here would be circular.
        from repro.service.app import CampaignServer

        def server(instance_id: str, role: str) -> CampaignServer:
            return CampaignServer(
                host=self.host,
                port=0,
                store=self.store,
                settings=self.settings,
                cluster=ClusterConfig(
                    instance_id=instance_id,
                    role=role,
                    heartbeat_interval=self.heartbeat_interval,
                    liveness_timeout=self.liveness_timeout,
                ),
            )

        try:
            self.coordinator = server(f"{self.prefix}-coordinator", "coordinator")
            self.workers = [
                server(f"{self.prefix}{index}", "worker")
                for index in range(1, self.instances + 1)
            ]
            # Workers first: by the time the coordinator's monitor thread
            # runs its first tick, every worker has registered.
            for worker in self.workers:
                worker.start()
            self.coordinator.start()
        except Exception:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        for server_ in [*self.workers, self.coordinator]:
            if server_ is not None:
                server_.stop()
        self.workers = []
        self.coordinator = None
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- addresses -------------------------------------------------------------
    @property
    def url(self) -> str:
        """The coordinator's base URL (submissions and aggregated views)."""
        if self.coordinator is None:
            raise RuntimeError("cluster is not running")
        return self.coordinator.url

    @property
    def worker_urls(self) -> List[str]:
        return [worker.url for worker in self.workers]
