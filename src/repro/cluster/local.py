"""Boot a whole cluster — N worker instances plus a coordinator — in-process.

This is the one-command local topology behind ``an5d cluster up``: every
instance is a full :class:`~repro.service.app.CampaignServer` on its own
ephemeral port, all sharing one :class:`~repro.campaign.store.ResultStore`
object, with the coordinator running the supervision loop.  Tests and
``benchmarks/bench_cluster.py`` drive the same class.

In-process instances share the GIL, so CPU-bound scaling is better observed
with separate ``an5d serve --cluster`` processes (the CI cluster-smoke job's
topology); LocalCluster trades that for a single-command bring-up with real
HTTP between the members.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.campaign.store import ResultStore
from repro.cluster.registry import ClusterConfig

#: Test/local-friendly heartbeat cadence (instances share a process anyway).
LOCAL_HEARTBEAT_INTERVAL = 0.2
LOCAL_LIVENESS_TIMEOUT = 2.0


class LocalCluster:
    """N cooperating ``an5d serve`` instances on one store, one process.

    Two topologies:

    * **store-native** (default): every instance opens the shared
      :class:`~repro.campaign.store.ResultStore` directly — the PR-5 shape.
    * **wire workers** (``wire_workers=True``): only the coordinator (and
      its standbys) touch the store; workers run on
      :class:`~repro.cluster.remote.RemoteStore` and commit results over
      ``POST /results/commit`` with a local journal underneath — the
      topology the chaos suite and the CI chaos-smoke job exercise.

    ``standbys`` adds lease-contending coordinator instances: they accept
    submissions and serve status/exports, and the first one whose monitor
    tick finds the primary's lease expired seizes it and resumes fan-out.
    ``faults`` (a :class:`~repro.cluster.faults.FaultPlan`) injects drops /
    delays / duplicates / 5xx into every wire worker's client.
    """

    def __init__(
        self,
        store: Union[str, Path, ResultStore] = "campaign.sqlite",
        instances: int = 2,
        host: str = "127.0.0.1",
        settings: Optional[object] = None,  # service.WorkerSettings
        heartbeat_interval: float = LOCAL_HEARTBEAT_INTERVAL,
        liveness_timeout: float = LOCAL_LIVENESS_TIMEOUT,
        prefix: str = "w",
        standbys: int = 0,
        wire_workers: bool = False,
        faults: Optional[object] = None,  # cluster.faults.FaultPlan
        workdir: Optional[Union[str, Path]] = None,
    ) -> None:
        if instances < 1:
            raise ValueError("a cluster needs at least one worker instance")
        if standbys < 0:
            raise ValueError("standbys must be non-negative")
        if wire_workers and workdir is None:
            raise ValueError("wire workers need a workdir for their journals")
        self._owns_store = not isinstance(store, ResultStore)
        self.store = ResultStore(store) if self._owns_store else store
        self.instances = int(instances)
        self.host = host
        self.settings = settings
        self.heartbeat_interval = float(heartbeat_interval)
        self.liveness_timeout = float(liveness_timeout)
        self.prefix = prefix
        self.standby_count = int(standbys)
        self.wire_workers = bool(wire_workers)
        self.faults = faults
        self.workdir = Path(workdir) if workdir is not None else None
        self.coordinator = None  # type: Optional[object]  # CampaignServer
        self.standbys: List[object] = []  # CampaignServer
        self.workers: List[object] = []  # CampaignServer

    # -- lifecycle -------------------------------------------------------------
    def _worker_client(self):
        """The HTTP client wire workers use — fault-injecting when planned."""
        if self.faults is None:
            return None
        from repro.cluster.faults import FaultyClusterClient

        return FaultyClusterClient(self.faults)

    def start(self) -> "LocalCluster":
        # Imported lazily: repro.service.app imports repro.cluster, so a
        # top-level import here would be circular.
        from repro.cluster.remote import RemoteStore
        from repro.service.app import CampaignServer

        def server(instance_id: str, role: str, store: object = None) -> CampaignServer:
            return CampaignServer(
                host=self.host,
                port=0,
                store=self.store if store is None else store,
                settings=self.settings,
                cluster=ClusterConfig(
                    instance_id=instance_id,
                    role=role,
                    heartbeat_interval=self.heartbeat_interval,
                    liveness_timeout=self.liveness_timeout,
                ),
            )

        try:
            self.coordinator = server(f"{self.prefix}-coordinator", "coordinator")
            self.standbys = [
                server(f"{self.prefix}-standby{index}", "coordinator")
                for index in range(1, self.standby_count + 1)
            ]
            if self.wire_workers:
                # The coordinator comes up first: wire workers dial it to
                # register.  A submission accepted before workers appear
                # stays queued until a tick finds live workers.
                self.coordinator.start()
                for standby in self.standbys:
                    standby.start()
                for index in range(1, self.instances + 1):
                    remote = RemoteStore(
                        self.coordinator.url,
                        journal=self.workdir / f"{self.prefix}{index}.journal.jsonl",
                        client=self._worker_client(),
                    )
                    worker = server(f"{self.prefix}{index}", "worker", store=remote)
                    self.workers.append(worker)
                    worker.start()
            else:
                self.workers = [
                    server(f"{self.prefix}{index}", "worker")
                    for index in range(1, self.instances + 1)
                ]
                # Workers first: by the time the coordinator's monitor thread
                # runs its first tick, every worker has registered.
                for worker in self.workers:
                    worker.start()
                for standby in self.standbys:
                    standby.start()
                self.coordinator.start()
        except Exception:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        for server_ in [*self.workers, *self.standbys, self.coordinator]:
            if server_ is not None:
                server_.stop()
        self.workers = []
        self.standbys = []
        self.coordinator = None
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- addresses -------------------------------------------------------------
    @property
    def url(self) -> str:
        """The coordinator's base URL (submissions and aggregated views)."""
        if self.coordinator is None:
            raise RuntimeError("cluster is not running")
        return self.coordinator.url

    @property
    def worker_urls(self) -> List[str]:
        return [worker.url for worker in self.workers]
