"""C frontend for AN5D.

The frontend accepts the restricted C subset described in Section 4.3.3 of
the paper: a time loop wrapping one loop per spatial dimension, with a single
double-buffered assignment statement inside.  It lowers this into a
:class:`repro.ir.StencilPattern` that the AN5D core transforms consume.
"""

from repro.frontend.clexer import Lexer, LexerError, Token, tokenize
from repro.frontend.c_ast import (
    ArrayAccess,
    Assignment,
    BinaryExpr,
    CallExpr,
    ForLoop,
    Identifier,
    NumberLiteral,
    Program,
    UnaryExpr,
)
from repro.frontend.cparser import ParseError, Parser, parse_program
from repro.frontend.stencil_detect import StencilDetectionError, detect_stencil, parse_stencil

__all__ = [
    "ArrayAccess",
    "Assignment",
    "BinaryExpr",
    "CallExpr",
    "ForLoop",
    "Identifier",
    "Lexer",
    "LexerError",
    "NumberLiteral",
    "ParseError",
    "Parser",
    "Program",
    "StencilDetectionError",
    "Token",
    "UnaryExpr",
    "detect_stencil",
    "parse_program",
    "parse_stencil",
    "tokenize",
]
