"""Recursive-descent parser for the C stencil subset.

The grammar (roughly):

.. code-block:: text

    program     := statement*
    statement   := for_loop | assignment ';' | declaration ';' | '{' statement* '}'
    for_loop    := 'for' '(' init ';' cond ';' step ')' (statement | '{' statement* '}')
    assignment  := array_access '=' expr
    expr        := additive (with the usual precedence: unary, * / %, + -)

Only canonical unit-stride ascending loops are accepted
(``for (i = L; i < U; i++)`` or ``<=``), because those are the only loops the
AN5D execution model can stream.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.frontend import c_ast
from repro.frontend.clexer import Token, tokenize


class ParseError(ValueError):
    """Raised when the input is not in the supported C subset."""

    def __init__(self, message: str, token: Token | None = None) -> None:
        if token is not None:
            message = f"{message} at line {token.line}, column {token.column} (near {token.value!r})"
        super().__init__(message)
        self.token = token


class Parser:
    """Parses a token stream into a :class:`repro.frontend.c_ast.Program`."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self.tokens = list(tokens)
        self.index = 0

    # -- token helpers -----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        if not self._check(kind, value):
            expectation = value if value is not None else kind
            raise ParseError(f"expected {expectation!r}", self.current)
        return self._advance()

    # -- grammar -----------------------------------------------------------
    def parse_program(self) -> c_ast.Program:
        statements: List[c_ast.Statement] = []
        while not self._check("eof"):
            statements.append(self.parse_statement())
        return c_ast.Program(tuple(statements))

    def parse_statement(self) -> c_ast.Statement:
        if self._check("keyword", "for"):
            return self.parse_for()
        if self._check("keyword", "float") or self._check("keyword", "double") or self._check(
            "keyword", "int"
        ):
            return self.parse_declaration()
        if self._check("punct", "{"):
            # A bare block is flattened into its single statement when
            # possible; otherwise it is not representable at top level.
            raise ParseError("unexpected bare block", self.current)
        return self.parse_assignment_statement()

    def parse_declaration(self) -> c_ast.Declaration:
        dtype = self._advance().value
        name = self._expect("ident").value
        value = None
        if self._accept("op", "="):
            value = self.parse_expression()
        self._expect("punct", ";")
        return c_ast.Declaration(dtype, name, value)

    def parse_for(self) -> c_ast.ForLoop:
        self._expect("keyword", "for")
        self._expect("punct", "(")
        # init: optionally typed, "var = expr"
        self._accept("keyword", "int")
        var_token = self._expect("ident")
        self._expect("op", "=")
        lower = self.parse_expression()
        self._expect("punct", ";")
        # condition: "var < expr" or "var <= expr"
        cond_var = self._expect("ident")
        if cond_var.value != var_token.value:
            raise ParseError("loop condition must test the loop variable", cond_var)
        if self._accept("op", "<="):
            inclusive = True
        elif self._accept("op", "<"):
            inclusive = False
        else:
            raise ParseError("loop condition must use < or <=", self.current)
        upper = self.parse_expression()
        self._expect("punct", ";")
        # step: "var++" or "var += 1" or "++var"
        self._parse_unit_step(var_token.value)
        self._expect("punct", ")")
        body = self.parse_loop_body()
        return c_ast.ForLoop(var_token.value, lower, upper, inclusive, tuple(body))

    def _parse_unit_step(self, var: str) -> None:
        if self._accept("op", "++"):
            name = self._expect("ident")
            if name.value != var:
                raise ParseError("loop step must increment the loop variable", name)
            return
        name = self._expect("ident")
        if name.value != var:
            raise ParseError("loop step must increment the loop variable", name)
        if self._accept("op", "++"):
            return
        if self._accept("op", "+="):
            step = self.parse_expression()
            if not (isinstance(step, c_ast.NumberLiteral) and step.value == 1):
                raise ParseError("only unit-stride loops are supported", self.current)
            return
        raise ParseError("unsupported loop step", self.current)

    def parse_loop_body(self) -> List[c_ast.Statement]:
        if self._accept("punct", "{"):
            body: List[c_ast.Statement] = []
            while not self._check("punct", "}"):
                if self._check("eof"):
                    raise ParseError("unterminated block", self.current)
                body.append(self.parse_statement())
            self._expect("punct", "}")
            return body
        return [self.parse_statement()]

    def parse_assignment_statement(self) -> c_ast.Assignment:
        target = self.parse_postfix()
        if not isinstance(target, c_ast.ArrayAccess):
            raise ParseError("assignment target must be an array access", self.current)
        op_token = self.current
        if self._accept("op", "="):
            op = "="
        elif self._accept("op", "+="):
            op = "+="
        else:
            raise ParseError("expected assignment operator", op_token)
        value = self.parse_expression()
        self._expect("punct", ";")
        return c_ast.Assignment(target, value, op)

    # -- expressions ---------------------------------------------------------
    def parse_expression(self) -> c_ast.CExpr:
        return self.parse_additive()

    def parse_additive(self) -> c_ast.CExpr:
        expr = self.parse_multiplicative()
        while self._check("op", "+") or self._check("op", "-"):
            op = self._advance().value
            rhs = self.parse_multiplicative()
            expr = c_ast.BinaryExpr(op, expr, rhs)
        return expr

    def parse_multiplicative(self) -> c_ast.CExpr:
        expr = self.parse_unary()
        while self._check("op", "*") or self._check("op", "/") or self._check("op", "%"):
            op = self._advance().value
            rhs = self.parse_unary()
            expr = c_ast.BinaryExpr(op, expr, rhs)
        return expr

    def parse_unary(self) -> c_ast.CExpr:
        if self._check("op", "-") or self._check("op", "+") or self._check("op", "!"):
            op = self._advance().value
            operand = self.parse_unary()
            if op == "+":
                return operand
            return c_ast.UnaryExpr(op, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> c_ast.CExpr:
        expr = self.parse_primary()
        while self._check("punct", "["):
            if not isinstance(expr, c_ast.Identifier):
                raise ParseError("only simple arrays can be subscripted", self.current)
            indices: List[c_ast.CExpr] = []
            while self._accept("punct", "["):
                indices.append(self.parse_expression())
                self._expect("punct", "]")
            return c_ast.ArrayAccess(expr.name, tuple(indices))
        return expr

    def parse_primary(self) -> c_ast.CExpr:
        if self._accept("punct", "("):
            expr = self.parse_expression()
            self._expect("punct", ")")
            return expr
        if self._check("int") or self._check("float"):
            token = self._advance()
            return c_ast.NumberLiteral.from_text(token.value, token.kind == "float")
        if self._check("ident"):
            name = self._advance().value
            if self._accept("punct", "("):
                args: List[c_ast.CExpr] = []
                if not self._check("punct", ")"):
                    args.append(self.parse_expression())
                    while self._accept("punct", ","):
                        args.append(self.parse_expression())
                self._expect("punct", ")")
                return c_ast.CallExpr(name, tuple(args))
            return c_ast.Identifier(name)
        raise ParseError("unexpected token", self.current)


def parse_program(source: str) -> c_ast.Program:
    """Tokenize and parse ``source`` into a program AST."""
    return Parser(tokenize(source)).parse_program()
