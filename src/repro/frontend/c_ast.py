"""Abstract syntax tree for the C stencil subset.

The tree mirrors the handful of constructs AN5D's restricted input language
allows: nested ``for`` loops, a single assignment statement, and expressions
built from array accesses, literals, identifiers, arithmetic and calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple


class Node:
    """Base class for all AST nodes."""


class CExpr(Node):
    """Base class for expression nodes."""


@dataclass(frozen=True)
class NumberLiteral(CExpr):
    """An integer or floating-point literal."""

    value: float
    is_float: bool
    text: str

    @staticmethod
    def from_text(text: str, is_float: bool) -> "NumberLiteral":
        cleaned = text.rstrip("fFlLuU")
        return NumberLiteral(float(cleaned), is_float, text)


@dataclass(frozen=True)
class Identifier(CExpr):
    """A scalar variable reference (loop index or symbolic size)."""

    name: str


@dataclass(frozen=True)
class BinaryExpr(CExpr):
    """A binary operation, including ``%`` and comparisons."""

    op: str
    lhs: CExpr
    rhs: CExpr


@dataclass(frozen=True)
class UnaryExpr(CExpr):
    """Unary minus / plus / logical not."""

    op: str
    operand: CExpr


@dataclass(frozen=True)
class CallExpr(CExpr):
    """A function call such as ``sqrtf(x)``."""

    name: str
    args: Tuple[CExpr, ...]


@dataclass(frozen=True)
class ArrayAccess(CExpr):
    """A multi-dimensional array subscript ``A[i0][i1]...``."""

    array: str
    indices: Tuple[CExpr, ...]


class Statement(Node):
    """Base class for statement nodes."""


@dataclass(frozen=True)
class Assignment(Statement):
    """``target = value;`` — the single store AN5D allows per stencil."""

    target: ArrayAccess
    value: CExpr
    op: str = "="


@dataclass(frozen=True)
class ForLoop(Statement):
    """A canonical ``for (var = lower; var (<|<=) upper; var++)`` loop."""

    var: str
    lower: CExpr
    upper: CExpr
    inclusive: bool
    body: Tuple[Statement, ...]

    @property
    def single_statement_body(self) -> Statement | None:
        return self.body[0] if len(self.body) == 1 else None


@dataclass(frozen=True)
class Declaration(Statement):
    """A scalar declaration such as ``float tmp = ...;`` (tolerated, ignored)."""

    dtype: str
    name: str
    value: CExpr | None = None


@dataclass(frozen=True)
class Program(Node):
    """A sequence of top-level statements (normally one loop nest)."""

    statements: Tuple[Statement, ...] = field(default_factory=tuple)

    @property
    def loops(self) -> list[ForLoop]:
        return [s for s in self.statements if isinstance(s, ForLoop)]


def loop_nest_depth(loop: ForLoop) -> int:
    """Depth of the perfectly nested loop chain starting at ``loop``."""
    depth = 1
    node: Statement = loop
    while isinstance(node, ForLoop):
        inner = node.single_statement_body
        if isinstance(inner, ForLoop):
            depth += 1
            node = inner
        else:
            break
    return depth


def innermost_body(loop: ForLoop) -> Tuple[Statement, ...]:
    """Statements in the innermost loop of a perfect nest."""
    node = loop
    while True:
        inner = node.single_statement_body
        if isinstance(inner, ForLoop):
            node = inner
        else:
            return node.body


def nest_loops(loop: ForLoop) -> list[ForLoop]:
    """The chain of perfectly nested loops, outermost first."""
    chain = [loop]
    node = loop
    while True:
        inner = node.single_statement_body
        if isinstance(inner, ForLoop):
            chain.append(inner)
            node = inner
        else:
            return chain
