"""Stencil pattern detection — the analogue of AN5D's dedicated PPCG backend.

Section 4.3.3 of the paper lists the restrictions under which AN5D detects a
stencil in the normalised polyhedral representation:

* the statement describing array accesses is a singleton with one store, and
  the read addresses are static,

We additionally accept bodies of the form "scalar declarations followed by
the single assignment" (the multi-statement input form of e.g. FDTD-style
acoustic-wave updates): each declared temporary is lowered once and inlined
at its uses, so the detected IR is the same single-statement pattern AN5D
would see after forward substitution.  The remaining restrictions:
* each dimension (time and space) is iterated by exactly one loop, with
  multi-dimensional array addressing,
* spatial iterations are data independent, the time loop is outermost, and
  the loop right after the time loop is the streaming dimension.

This module enforces the same restrictions on the parsed AST and extracts a
:class:`repro.ir.StencilPattern` together with the symbolic loop bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.frontend import c_ast
from repro.frontend.cparser import parse_program
from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, UnaryOp
from repro.ir.stencil import StencilPattern


class StencilDetectionError(ValueError):
    """Raised when the input program is not a supported stencil."""


@dataclass(frozen=True)
class LoopInfo:
    """One loop of the detected nest: its index variable and symbolic bounds."""

    var: str
    lower: str
    upper: str
    inclusive: bool


@dataclass(frozen=True)
class DetectedStencil:
    """The result of stencil detection.

    ``pattern`` is the IR-level stencil; ``time_loop`` and ``spatial_loops``
    record the symbolic iteration bounds so host code generation can keep the
    grid size a runtime parameter.
    """

    pattern: StencilPattern
    time_loop: LoopInfo
    spatial_loops: Tuple[LoopInfo, ...]

    @property
    def ndim(self) -> int:
        return len(self.spatial_loops)


def _bound_to_str(expr: c_ast.CExpr) -> str:
    if isinstance(expr, c_ast.Identifier):
        return expr.name
    if isinstance(expr, c_ast.NumberLiteral):
        return str(int(expr.value)) if not expr.is_float else str(expr.value)
    if isinstance(expr, c_ast.BinaryExpr):
        return f"({_bound_to_str(expr.lhs)} {expr.op} {_bound_to_str(expr.rhs)})"
    if isinstance(expr, c_ast.UnaryExpr):
        return f"({expr.op}{_bound_to_str(expr.operand)})"
    raise StencilDetectionError(f"unsupported loop bound expression {expr!r}")


def _loop_info(loop: c_ast.ForLoop) -> LoopInfo:
    return LoopInfo(
        var=loop.var,
        lower=_bound_to_str(loop.lower),
        upper=_bound_to_str(loop.upper),
        inclusive=loop.inclusive,
    )


def _is_modulo_two(expr: c_ast.CExpr) -> bool:
    return (
        isinstance(expr, c_ast.BinaryExpr)
        and expr.op == "%"
        and isinstance(expr.rhs, c_ast.NumberLiteral)
        and expr.rhs.value == 2
    )


def _time_index_offset(expr: c_ast.CExpr, time_var: str) -> int:
    """Interpret a ``(t + k) % 2`` buffer index; return ``k`` (0 or 1)."""
    if not _is_modulo_two(expr):
        raise StencilDetectionError(
            "array time index must be double buffered through '% 2'"
        )
    base = expr.lhs
    if isinstance(base, c_ast.Identifier) and base.name == time_var:
        return 0
    if (
        isinstance(base, c_ast.BinaryExpr)
        and base.op == "+"
        and isinstance(base.lhs, c_ast.Identifier)
        and base.lhs.name == time_var
        and isinstance(base.rhs, c_ast.NumberLiteral)
    ):
        return int(base.rhs.value)
    raise StencilDetectionError("time index must be 't % 2' or '(t + 1) % 2'")


def _spatial_offset(expr: c_ast.CExpr, var: str) -> int:
    """Interpret a spatial subscript ``var``, ``var + c`` or ``var - c``."""
    if isinstance(expr, c_ast.Identifier):
        if expr.name != var:
            raise StencilDetectionError(
                f"subscript variable {expr.name!r} does not match loop variable {var!r}"
            )
        return 0
    if isinstance(expr, c_ast.BinaryExpr) and expr.op in ("+", "-"):
        lhs, rhs = expr.lhs, expr.rhs
        if isinstance(lhs, c_ast.Identifier) and isinstance(rhs, c_ast.NumberLiteral):
            if lhs.name != var:
                raise StencilDetectionError(
                    f"subscript variable {lhs.name!r} does not match loop variable {var!r}"
                )
            magnitude = int(rhs.value)
            return magnitude if expr.op == "+" else -magnitude
    raise StencilDetectionError(f"subscript must be affine in the loop variable: {expr!r}")


def _collect_float_suffix(expr: c_ast.CExpr) -> bool:
    """True when any literal in the expression carries an ``f`` suffix."""
    if isinstance(expr, c_ast.NumberLiteral):
        return expr.text.rstrip().lower().endswith("f")
    if isinstance(expr, c_ast.BinaryExpr):
        return _collect_float_suffix(expr.lhs) or _collect_float_suffix(expr.rhs)
    if isinstance(expr, c_ast.UnaryExpr):
        return _collect_float_suffix(expr.operand)
    if isinstance(expr, c_ast.CallExpr):
        return any(_collect_float_suffix(a) for a in expr.args)
    return False


class _ExpressionLowerer:
    """Lowers a C expression to the stencil IR, resolving array accesses."""

    _CALL_NAMES = {"sqrt", "sqrtf", "fabs", "fabsf", "exp", "expf", "min", "max", "fmin", "fmax"}

    def __init__(self, array: str, time_var: str, spatial_vars: List[str]) -> None:
        self.array = array
        self.time_var = time_var
        self.spatial_vars = spatial_vars
        self.env: Dict[str, Expr] = {}

    def define(self, name: str, value: c_ast.CExpr) -> None:
        """Bind a declared scalar temporary to its lowered expression.

        Later temporaries may reference earlier ones; uses are inlined, so
        the resulting pattern is the forward-substituted single statement.
        """
        if name == self.time_var or name in self.spatial_vars:
            raise StencilDetectionError(
                f"temporary {name!r} shadows a loop variable"
            )
        if name in self.env:
            raise StencilDetectionError(f"temporary {name!r} is declared twice")
        self.env[name] = self.lower(value)

    def lower(self, expr: c_ast.CExpr) -> Expr:
        if isinstance(expr, c_ast.NumberLiteral):
            return Const(expr.value)
        if isinstance(expr, c_ast.ArrayAccess):
            return self._lower_access(expr)
        if isinstance(expr, c_ast.BinaryExpr):
            if expr.op not in ("+", "-", "*", "/"):
                raise StencilDetectionError(
                    f"operator {expr.op!r} is not allowed in a stencil expression"
                )
            return BinOp(expr.op, self.lower(expr.lhs), self.lower(expr.rhs))
        if isinstance(expr, c_ast.UnaryExpr):
            if expr.op != "-":
                raise StencilDetectionError(f"unsupported unary operator {expr.op!r}")
            return UnaryOp("-", self.lower(expr.operand))
        if isinstance(expr, c_ast.CallExpr):
            if expr.name not in self._CALL_NAMES:
                raise StencilDetectionError(f"unsupported call {expr.name!r}")
            return Call(expr.name, tuple(self.lower(a) for a in expr.args))
        if isinstance(expr, c_ast.Identifier):
            bound = self.env.get(expr.name)
            if bound is not None:
                return bound
            raise StencilDetectionError(
                f"free scalar variable {expr.name!r}: coefficients must be literal constants"
            )
        raise StencilDetectionError(f"unsupported expression {expr!r}")

    def _lower_access(self, access: c_ast.ArrayAccess) -> GridRead:
        if access.array != self.array:
            raise StencilDetectionError(
                f"stencil must read and write a single array; found {access.array!r}"
            )
        expected = 1 + len(self.spatial_vars)
        if len(access.indices) != expected:
            raise StencilDetectionError(
                f"array access has {len(access.indices)} subscripts, expected {expected}"
            )
        if _time_index_offset(access.indices[0], self.time_var) != 0:
            raise StencilDetectionError("right-hand side must read the previous time step")
        offsets = tuple(
            _spatial_offset(index, var)
            for index, var in zip(access.indices[1:], self.spatial_vars)
        )
        return GridRead(self.array, offsets)


def detect_stencil(
    program: c_ast.Program,
    name: str = "stencil",
    dtype: str | None = None,
    source: str | None = None,
) -> DetectedStencil:
    """Detect the stencil pattern in a parsed program.

    ``dtype`` overrides data-type inference (which otherwise keys off ``f``
    literal suffixes, matching how the benchmarks are written).
    """
    loops = program.loops
    if len(loops) != 1:
        raise StencilDetectionError(
            f"expected exactly one top-level loop nest, found {len(loops)}"
        )
    nest = c_ast.nest_loops(loops[0])
    if len(nest) < 3:
        raise StencilDetectionError(
            "expected a time loop plus at least two spatial loops"
        )
    body = c_ast.innermost_body(nest[-1])
    if not body or not isinstance(body[-1], c_ast.Assignment):
        raise StencilDetectionError(
            "the loop nest body must be scalar declarations followed by a single assignment"
        )
    declarations: List[c_ast.Declaration] = []
    for statement in body[:-1]:
        if not isinstance(statement, c_ast.Declaration):
            raise StencilDetectionError(
                "the loop nest body must be scalar declarations followed by a single assignment"
            )
        if statement.value is None:
            raise StencilDetectionError(
                f"declared temporary {statement.name!r} must be initialised"
            )
        declarations.append(statement)
    assignment = body[-1]
    if assignment.op != "=":
        raise StencilDetectionError("compound assignment is not a Jacobi stencil update")

    time_loop, *spatial = nest
    spatial_vars = [loop.var for loop in spatial]
    if len(set(spatial_vars)) != len(spatial_vars) or time_loop.var in spatial_vars:
        raise StencilDetectionError("loop variables must be distinct")

    target = assignment.target
    if len(target.indices) != 1 + len(spatial_vars):
        raise StencilDetectionError("store must index the time buffer plus every spatial dim")
    if _time_index_offset(target.indices[0], time_loop.var) != 1:
        raise StencilDetectionError("store must write the next time step: '(t + 1) % 2'")
    for index, var in zip(target.indices[1:], spatial_vars):
        if _spatial_offset(index, var) != 0:
            raise StencilDetectionError("store must target the centre cell of each dimension")

    lowerer = _ExpressionLowerer(target.array, time_loop.var, spatial_vars)
    for declaration in declarations:
        lowerer.define(declaration.name, declaration.value)
    expr = lowerer.lower(assignment.value)

    if dtype is None:
        values = [declaration.value for declaration in declarations] + [assignment.value]
        has_float_literal = any(_collect_float_suffix(value) for value in values)
        has_float_temporary = any(d.dtype == "float" for d in declarations)
        dtype = "float" if has_float_literal or has_float_temporary else "double"

    pattern = StencilPattern(
        name=name,
        ndim=len(spatial_vars),
        expr=expr,
        dtype=dtype,
        array=target.array,
        source=source,
    )
    return DetectedStencil(
        pattern=pattern,
        time_loop=_loop_info(time_loop),
        spatial_loops=tuple(_loop_info(loop) for loop in spatial),
    )


def parse_stencil(source: str, name: str = "stencil", dtype: str | None = None) -> DetectedStencil:
    """Parse C source and detect its stencil pattern in one step."""
    program = parse_program(source)
    return detect_stencil(program, name=name, dtype=dtype, source=source)
