"""Tokenizer for the C stencil subset.

Only the constructs that can legally appear in an AN5D input program are
recognised: identifiers, integer and floating-point literals (with the usual
``f`` suffix), arithmetic and comparison operators, the modulo operator used
for double buffering, assignment, increments, and the bracketing punctuation
of loops and array subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {"for", "if", "else", "int", "float", "double", "const", "return", "void"}

# Multi-character operators must be listed before their prefixes.
_OPERATORS = [
    "<=",
    ">=",
    "==",
    "!=",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
]

_PUNCTUATION = {"(", ")", "[", "]", "{", "}", ";", ","}


class LexerError(ValueError):
    """Raised on input that is not part of the supported C subset."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str  # "ident", "keyword", "int", "float", "op", "punct", "eof"
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Streaming tokenizer over a source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif self.source.startswith("//", self.pos):
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif self.source.startswith("/*", self.pos):
                end = self.source.find("*/", self.pos + 2)
                if end < 0:
                    raise self._error("unterminated block comment")
                while self.pos < end + 2:
                    self._advance()
            elif ch == "#":
                # Preprocessor lines (e.g. #define SIZE 512) are skipped; the
                # frontend takes sizes as runtime parameters.
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token("eof", "", self.line, self.column)
                return
            start_line, start_col = self.line, self.column
            ch = self.source[self.pos]
            if ch.isalpha() or ch == "_":
                yield self._lex_identifier(start_line, start_col)
            elif ch.isdigit() or (ch == "." and self._peek_is_digit(1)):
                yield self._lex_number(start_line, start_col)
            elif ch in _PUNCTUATION:
                self._advance()
                yield Token("punct", ch, start_line, start_col)
            else:
                op = self._match_operator()
                if op is None:
                    raise self._error(f"unexpected character {ch!r}")
                yield Token("op", op, start_line, start_col)

    def _peek_is_digit(self, lookahead: int) -> bool:
        idx = self.pos + lookahead
        return idx < len(self.source) and self.source[idx].isdigit()

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
            self.source[self.pos].isalnum() or self.source[self.pos] == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        while self.pos < len(self.source) and self.source[self.pos].isdigit():
            self._advance()
        if self.pos < len(self.source) and self.source[self.pos] == ".":
            is_float = True
            self._advance()
            while self.pos < len(self.source) and self.source[self.pos].isdigit():
                self._advance()
        if self.pos < len(self.source) and self.source[self.pos] in "eE":
            is_float = True
            self._advance()
            if self.pos < len(self.source) and self.source[self.pos] in "+-":
                self._advance()
            if not (self.pos < len(self.source) and self.source[self.pos].isdigit()):
                raise self._error("malformed exponent")
            while self.pos < len(self.source) and self.source[self.pos].isdigit():
                self._advance()
        if self.pos < len(self.source) and self.source[self.pos] in "fF":
            is_float = True
            self._advance()
        elif self.pos < len(self.source) and self.source[self.pos] in "lLuU":
            self._advance()
        text = self.source[start : self.pos]
        return Token("float" if is_float else "int", text, line, column)

    def _match_operator(self) -> str | None:
        for op in _OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return op
        return None


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` completely, including the trailing EOF token."""
    return list(Lexer(source).tokens())
