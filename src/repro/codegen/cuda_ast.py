"""A small structured representation of the generated CUDA C code.

Full C parsing/printing machinery is unnecessary for the restricted code
shapes AN5D emits; this module provides just enough structure (blocks,
declarations, loops, conditionals, raw statements) for the generators to
build code compositionally and for the emitter to indent it consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class CudaNode:
    """Base class for generated-code nodes."""


@dataclass
class Raw(CudaNode):
    """A literal line of code (already valid CUDA C)."""

    text: str


@dataclass
class Declare(CudaNode):
    """A variable declaration, optionally initialised."""

    ctype: str
    name: str
    init: str | None = None
    qualifiers: str = ""

    def render(self) -> str:
        prefix = f"{self.qualifiers} " if self.qualifiers else ""
        if self.init is not None:
            return f"{prefix}{self.ctype} {self.name} = {self.init};"
        return f"{prefix}{self.ctype} {self.name};"


@dataclass
class Assign(CudaNode):
    """A simple assignment statement."""

    target: str
    value: str

    def render(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass
class Sync(CudaNode):
    """A ``__syncthreads()`` barrier."""


@dataclass
class Return(CudaNode):
    """A ``return;`` statement."""


@dataclass
class Block(CudaNode):
    """A sequence of statements within braces."""

    statements: List[CudaNode] = field(default_factory=list)

    def add(self, node: CudaNode) -> "Block":
        self.statements.append(node)
        return self

    def extend(self, nodes: Sequence[CudaNode]) -> "Block":
        self.statements.extend(nodes)
        return self


@dataclass
class If(CudaNode):
    """An ``if`` (optionally ``if``/``else``) statement."""

    condition: str
    then: Block
    otherwise: Block | None = None


@dataclass
class For(CudaNode):
    """A ``for`` loop with free-form header components."""

    init: str
    condition: str
    step: str
    body: Block = field(default_factory=Block)


@dataclass
class FuncDef(CudaNode):
    """A function definition (kernel or host)."""

    return_type: str
    name: str
    params: Tuple[str, ...]
    body: Block
    qualifiers: str = ""

    @property
    def signature(self) -> str:
        prefix = f"{self.qualifiers} " if self.qualifiers else ""
        return f"{prefix}{self.return_type} {self.name}({', '.join(self.params)})"
