"""CUDA host code generation (Section 4.3.1).

The host side allocates the double-buffered device arrays, copies the input,
and calls the kernel once per ``bT`` combined time steps.  Because the input
programs are double buffered through ``% 2``, the result must end up in the
buffer the original loop would have left it in; the generator therefore emits
statically created conditional branches that shorten the final block of time
steps whenever ``I_T mod bT != 0`` or the launch-count parity would differ
from the original loop's parity.
"""

from __future__ import annotations

from typing import List

from repro.codegen.cuda_ast import Block, Declare, For, FuncDef, If, Raw
from repro.codegen.emitter import CudaEmitter
from repro.core.plan import KernelPlan


class HostGenerator:
    """Generates the host-side driver for one kernel plan."""

    def __init__(self, plan: KernelPlan) -> None:
        self.plan = plan
        self.pattern = plan.pattern
        self.config = plan.config
        self.emitter = CudaEmitter()

    @property
    def kernel_name(self) -> str:
        return f"an5d_kernel_{self.pattern.name.replace('-', '_')}"

    @property
    def host_name(self) -> str:
        return f"an5d_host_{self.pattern.name.replace('-', '_')}"

    def _grid_dim(self) -> str:
        compute = self.config.compute_region(self.pattern.radius)
        if self.pattern.ndim == 2:
            return f"dim3((__an5d_is1 + {compute[0]} - 1) / {compute[0]})"
        return (
            f"dim3((__an5d_is2 + {compute[1]} - 1) / {compute[1]}, "
            f"(__an5d_is1 + {compute[0]} - 1) / {compute[0]})"
        )

    def _block_dim(self) -> str:
        if self.pattern.ndim == 2:
            return f"dim3({self.config.bS[0]})"
        size_y, size_x = self.config.bS
        return f"dim3({size_x}, {size_y})"

    def _size_params(self) -> List[str]:
        return [f"int __an5d_is{d}" for d in range(self.pattern.ndim)]

    def _size_args(self) -> str:
        return ", ".join(f"__an5d_is{d}" for d in range(self.pattern.ndim))

    def _stream_bounds(self) -> str:
        if self.config.hS is None:
            return "0, __an5d_is0"
        return "__an5d_hs_begin, __an5d_hs_end"

    def _launch(self, steps_expr: str, src: str, dst: str) -> List:
        statements: List = []
        call = (
            f"{self.kernel_name}<<<__an5d_grid, __an5d_block>>>"
            f"({src}, {dst}, {self._size_args()}, {self._stream_bounds()});"
        )
        if self.config.hS is None:
            statements.append(Raw(f"// advance {steps_expr} combined time step(s)"))
            statements.append(Raw(call))
        else:
            loop = For(
                init="int __an5d_hs_begin = 0",
                condition="__an5d_hs_begin < __an5d_is0",
                step=f"__an5d_hs_begin += {self.config.hS}",
                body=Block(
                    [
                        Declare(
                            "int",
                            "__an5d_hs_end",
                            f"min(__an5d_hs_begin + {self.config.hS}, __an5d_is0)",
                        ),
                        Raw(call),
                    ]
                ),
            )
            statements.append(Raw(f"// advance {steps_expr} combined time step(s), "
                                  f"streaming dimension divided into blocks of {self.config.hS}"))
            statements.append(loop)
        return statements

    def generate(self) -> str:
        bT = self.config.bT
        dtype = self.pattern.dtype
        params = (
            f"{dtype} *__an5d_buf0",
            f"{dtype} *__an5d_buf1",
            *self._size_params(),
            "int __an5d_it",
        )
        body = Block()
        body.add(Declare("const dim3", "__an5d_grid", self._grid_dim()))
        body.add(Declare("const dim3", "__an5d_block", self._block_dim()))
        body.add(Declare("int", "__an5d_t", "0"))
        body.add(
            Raw(
                f"// Full blocks of bT = {bT} combined time steps.\n"
                f"int __an5d_full_blocks = __an5d_it / {bT};\n"
                f"int __an5d_remainder = __an5d_it % {bT};\n"
                "// Keep the final result in the buffer the original '% 2' loop\n"
                "// would have used: shorten the last block when the remainder or the\n"
                "// launch-count parity requires it (Section 4.3.1)."
            )
        )
        main_loop = For(
            init="int __an5d_b = 0",
            condition="__an5d_b < __an5d_full_blocks",
            step="__an5d_b++",
            body=Block(
                self._launch(str(bT), "__an5d_buf0", "__an5d_buf1")
                + [
                    Raw(f"{dtype} *__an5d_tmp = __an5d_buf0; "
                        "__an5d_buf0 = __an5d_buf1; __an5d_buf1 = __an5d_tmp;"),
                    Raw(f"__an5d_t += {bT};"),
                ]
            ),
        )
        body.add(main_loop)

        # Remainder: one branch per possible residual step count, generated
        # statically because I_T is a run-time value.
        for residual in range(1, bT):
            body.add(
                If(
                    condition=f"__an5d_remainder == {residual}",
                    then=Block(
                        self._launch(str(residual), "__an5d_buf0", "__an5d_buf1")
                        + [
                            Raw(f"{dtype} *__an5d_tmp = __an5d_buf0; "
                                "__an5d_buf0 = __an5d_buf1; __an5d_buf1 = __an5d_tmp;"),
                            Raw(f"__an5d_t += {residual};"),
                        ]
                    ),
                )
            )
        body.add(Raw("(void)__an5d_t;"))

        func = FuncDef(
            return_type="void",
            name=self.host_name,
            params=params,
            body=body,
        )
        header = [
            f"// AN5D generated host code for stencil '{self.pattern.name}'",
            f"// configuration: {self.config.describe()}",
            "",
        ]
        return "\n".join(header) + self.emitter.emit(func) + "\n"


def generate_host(plan: KernelPlan) -> str:
    """Generate the CUDA host driver source for a plan."""
    return HostGenerator(plan).generate()
