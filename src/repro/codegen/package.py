"""Bundling of generated CUDA sources."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.host_gen import generate_host
from repro.codegen.kernel_gen import generate_kernel
from repro.core.plan import KernelPlan


@dataclass(frozen=True)
class CudaSourcePackage:
    """The kernel + host sources generated for one stencil configuration."""

    kernel_name: str
    host_name: str
    kernel_source: str
    host_source: str

    @property
    def full_source(self) -> str:
        """A single translation unit containing kernel and host code."""
        return self.kernel_source + "\n" + self.host_source

    def nvcc_command(self, arch: str = "sm_70", register_limit: int | None = None) -> str:
        """The compile command the paper uses (Section 6.2)."""
        compute = arch.replace("sm_", "compute_")
        flags = [
            f"-gencode=arch={compute},code={arch}",
            "--use_fast_math",
            "-Xcompiler",
            "-O3",
            "-fopenmp",
        ]
        if register_limit is not None:
            flags.append(f"-maxrregcount={register_limit}")
        return "nvcc " + " ".join(flags) + " an5d_generated.cu -o an5d_generated"


def generate_cuda(plan: KernelPlan) -> CudaSourcePackage:
    """Generate kernel + host source for one kernel plan."""
    stem = plan.pattern.name.replace("-", "_")
    return CudaSourcePackage(
        kernel_name=f"an5d_kernel_{stem}",
        host_name=f"an5d_host_{stem}",
        kernel_source=generate_kernel(plan),
        host_source=generate_host(plan),
    )
