"""CUDA kernel generation (Section 4.3.2).

The kernel body mirrors Fig. 5: macro definitions, thread/block index setup,
register declarations for every sub-plane of every time step, then the three
streaming phases — a statically unrolled head, the rotation-period inner loop
and the statically unrolled tail with early exits.
"""

from __future__ import annotations

from typing import List

from repro.codegen.cuda_ast import Block, Declare, For, FuncDef, If, Raw, Return, Sync
from repro.codegen.emitter import CudaEmitter
from repro.codegen.macros import generate_macro_definitions, macro_call_text, smem_declaration
from repro.core.plan import KernelPlan, MacroCall, StreamPhase


class KernelGenerator:
    """Generates the ``__global__`` kernel for one plan."""

    LOOP_VAR = "__an5d_h"

    def __init__(self, plan: KernelPlan) -> None:
        self.plan = plan
        self.pattern = plan.pattern
        self.config = plan.config
        self.emitter = CudaEmitter()

    # -- naming -----------------------------------------------------------------
    @property
    def kernel_name(self) -> str:
        return f"an5d_kernel_{self.pattern.name.replace('-', '_')}"

    def _parameters(self) -> tuple:
        dtype = self.pattern.dtype
        sizes = [f"int __an5d_is{d}" for d in range(self.pattern.ndim)]
        return (
            f"const {dtype} *__restrict__ __an5d_in",
            f"{dtype} *__restrict__ __an5d_out",
            *sizes,
            "int __an5d_stream_begin",
            "int __an5d_stream_end",
        )

    # -- pieces ------------------------------------------------------------------
    def _index_setup(self) -> List:
        ndim = self.pattern.ndim
        rad = self.pattern.radius
        bT = self.config.bT
        statements: List = [
            Declare("const int", "__an5d_tx", "threadIdx.x"),
        ]
        if ndim == 3:
            statements.append(Declare("const int", "__an5d_ty", "threadIdx.y"))
        compute = self.config.compute_region(rad)
        if ndim == 2:
            statements.append(
                Declare(
                    "const int",
                    "__an5d_gx",
                    f"blockIdx.x * {compute[0]} + __an5d_tx - {bT * rad}",
                )
            )
        else:
            statements.append(
                Declare(
                    "const int",
                    "__an5d_gx",
                    f"blockIdx.x * {compute[-1]} + __an5d_tx - {bT * rad}",
                )
            )
            statements.append(
                Declare(
                    "const int",
                    "__an5d_gy",
                    f"blockIdx.y * {compute[0]} + __an5d_ty - {bT * rad}",
                )
            )
        statements.append(
            Raw(
                "const bool __an5d_in_compute_region = "
                + self._compute_region_condition()
                + ";"
            )
        )
        return statements

    def _compute_region_condition(self) -> str:
        rad = self.pattern.radius
        bT = self.config.bT
        halo = bT * rad
        conditions = []
        if self.pattern.ndim == 2:
            size = self.config.bS[0]
            conditions.append(f"(__an5d_tx >= {halo} && __an5d_tx < {size - halo})")
            conditions.append("(__an5d_gx >= 0 && __an5d_gx < __an5d_is1)")
        else:
            size_y, size_x = self.config.bS
            conditions.append(f"(__an5d_ty >= {halo} && __an5d_ty < {size_y - halo})")
            conditions.append(f"(__an5d_tx >= {halo} && __an5d_tx < {size_x - halo})")
            conditions.append("(__an5d_gy >= 0 && __an5d_gy < __an5d_is1)")
            conditions.append("(__an5d_gx >= 0 && __an5d_gx < __an5d_is2)")
        return " && ".join(conditions)

    def _register_declarations(self) -> List:
        dtype = self.pattern.dtype
        names = ", ".join(reg.name for reg in self.plan.registers.all_registers()
                          if reg.time_step < self.config.bT)
        return [Raw(f"{dtype} {names};")]

    def _phase_statements(self, phase: StreamPhase, guard_time_steps: bool = True) -> List:
        """Render one phase's macro calls, inserting barriers between time steps."""
        statements: List = []
        previous_step: int | None = None
        for call in phase.calls:
            if previous_step is not None and call.time_step != previous_step:
                statements.append(Sync())
            statements.append(Raw(self._render_call(call)))
            previous_step = call.time_step
        return statements

    def _render_call(self, call: MacroCall) -> str:
        plane = call.render_plane(self.LOOP_VAR)
        if call.plane_is_relative:
            plane = f"__an5d_stream_begin + ({plane})"
        else:
            plane = f"__an5d_stream_begin + {plane}"
        return macro_call_text(self.plan, call.kind, call.time_step, plane, call.args)

    def _inner_loop(self) -> For:
        phase = self.plan.inner
        body = Block(self._phase_statements(phase))
        start = self.plan.head.calls[-1].plane + 1 if self.plan.head.calls else 0
        loop = For(
            init=f"int {self.LOOP_VAR} = {len([c for c in self.plan.head.calls if c.kind == 'LOAD'])}",
            condition=f"{self.LOOP_VAR} <= __an5d_stream_end - __an5d_stream_begin - {phase.loop_step}",
            step=f"{self.LOOP_VAR} += {phase.loop_step}",
            body=body,
        )
        return loop

    def _tail(self) -> List:
        statements: List = []
        phase = self.plan.tail
        statements.append(
            Raw(f"int {self.LOOP_VAR}_tail = __an5d_stream_end - __an5d_stream_begin;")
        )
        statements.extend(
            Raw(self._render_call(call).replace(self.LOOP_VAR, f"{self.LOOP_VAR}_tail"))
            for call in phase.calls
        )
        statements.append(Return())
        return statements

    # -- assembly -------------------------------------------------------------------
    def generate(self) -> str:
        plan = self.plan
        block_dims = [str(v) for v in reversed(self.config.bS)]
        header_lines = [
            f"// AN5D generated kernel for stencil '{self.pattern.name}'",
            f"// {self.config.describe()}  star_opt={plan.use_star_opt} "
            f"associative_opt={plan.use_associative_opt}",
            "",
            generate_macro_definitions(plan),
            "",
        ]

        body = Block()
        for line in smem_declaration(plan, block_dims):
            body.add(Raw(line))
        body.extend(self._index_setup())
        body.extend(self._register_declarations())
        body.add(Raw("// ---- head phase (statically unrolled pipeline fill) ----"))
        body.extend(self._phase_statements(plan.head))
        body.add(Sync())
        body.add(Raw("// ---- inner phase (steady state, one rotation period per iteration) ----"))
        body.add(self._inner_loop())
        body.add(Sync())
        body.add(Raw("// ---- tail phase (pipeline drain) ----"))
        body.extend(self._tail())

        func = FuncDef(
            return_type="void",
            name=self.kernel_name,
            params=self._parameters(),
            body=body,
            qualifiers="__global__",
        )
        launch_bounds = ""
        if self.config.register_limit is not None:
            launch_bounds = (
                f"__launch_bounds__({self.config.nthr}) "
            )
        text = self.emitter.emit(func)
        if launch_bounds:
            text = text.replace("__global__ void", f"__global__ {launch_bounds}void", 1)
        return "\n".join(header_lines) + text + "\n"


def generate_kernel(plan: KernelPlan) -> str:
    """Generate the CUDA kernel source for a plan."""
    return KernelGenerator(plan).generate()
