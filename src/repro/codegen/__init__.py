"""CUDA code generation (Section 4.3).

The generators turn a :class:`~repro.core.plan.KernelPlan` into CUDA C source
text: a kernel built from LOAD/CALC/STORE macros with statically unrolled
head/tail phases and a rotation-period inner loop, plus host code that calls
the kernel once per ``bT`` combined time steps and handles the remainder of
the time loop with statically generated conditional branches.

No CUDA toolchain is required (or used) here — the output is source text,
structurally validated by the test-suite and meant to be compiled with NVCC
on a real system.
"""

from repro.codegen.cuda_ast import (
    Assign,
    Block,
    Declare,
    For,
    FuncDef,
    If,
    Raw,
    Return,
    Sync,
)
from repro.codegen.emitter import CudaEmitter
from repro.codegen.macros import generate_macro_definitions, render_expression
from repro.codegen.kernel_gen import KernelGenerator, generate_kernel
from repro.codegen.host_gen import HostGenerator, generate_host
from repro.codegen.package import CudaSourcePackage, generate_cuda

__all__ = [
    "Assign",
    "Block",
    "CudaEmitter",
    "CudaSourcePackage",
    "Declare",
    "For",
    "FuncDef",
    "HostGenerator",
    "If",
    "KernelGenerator",
    "Raw",
    "Return",
    "Sync",
    "generate_cuda",
    "generate_host",
    "generate_kernel",
    "generate_macro_definitions",
    "render_expression",
]
