"""LOAD / CALC / STORE macro generation (Section 4.3.2, Fig. 5).

Every generated kernel is a sequence of macro calls; the macros themselves
encode where each operand lives:

* the thread's own column of the source sub-planes lives in the fixed
  registers passed as macro arguments,
* neighbouring columns are read from the double-buffered shared memory
  through a wrapper device function (``__an5d_sm_load``) that prevents NVCC
  from vectorizing the access (Section 4.3.2),
* loads/stores address global memory through the streaming index argument.

For diagonal-access-free (star) stencils the shared-memory buffers hold a
single sub-plane; for other stencils they hold ``1 + 2*rad`` sub-planes.  The
associative partial-summation schedule is modelled at the plan/resource level
(see :mod:`repro.core.associative`); its emitted CUDA uses the general
multi-plane form, a simplification documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.plan import KernelPlan
from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, UnaryOp
from repro.ir.stencil import StencilPattern

_CALL_RENDER = {
    "sqrt": "sqrt",
    "sqrtf": "sqrtf",
    "fabs": "fabs",
    "fabsf": "fabsf",
    "exp": "exp",
    "expf": "expf",
    "min": "min",
    "max": "max",
    "fmin": "fmin",
    "fmax": "fmax",
}


def _float_literal(value: float, dtype: str) -> str:
    text = f"{value:.9g}"
    if "." not in text and "e" not in text and "inf" not in text and "nan" not in text:
        text += ".0"
    return text + ("f" if dtype == "float" else "")


def _thread_index(ndim: int, offsets: Sequence[int]) -> str:
    """Shared-memory subscript for the blocked dimensions of an offset."""
    if ndim == 2:
        (dx,) = offsets
        return f"[__an5d_tx + {dx}]" if dx else "[__an5d_tx]"
    dy, dx = offsets
    y = f"__an5d_ty + {dy}" if dy else "__an5d_ty"
    x = f"__an5d_tx + {dx}" if dx else "__an5d_tx"
    return f"[{y}][{x}]"


def render_expression(
    pattern: StencilPattern,
    expr: Expr,
    source_registers: Sequence[str],
    smem_buffer: str,
    multi_plane: bool,
) -> str:
    """Render a stencil expression with operands resolved to registers/smem.

    ``source_registers`` are the ``2*rad + 1`` register names of the previous
    time step in streaming order (offset ``-rad`` first).
    """
    rad = pattern.radius
    dtype = pattern.dtype

    def render(node: Expr) -> str:
        if isinstance(node, Const):
            return _float_literal(node.value, dtype)
        if isinstance(node, GridRead):
            stream_offset, *blocked = node.offset
            if all(component == 0 for component in blocked):
                return f"({source_registers[stream_offset + rad]})"
            plane = f"[{stream_offset + rad}]" if multi_plane else ""
            subscript = _thread_index(pattern.ndim, blocked)
            return f"__an5d_sm_load(&{smem_buffer}{plane}{subscript})"
        if isinstance(node, BinOp):
            return f"({render(node.lhs)} {node.op} {render(node.rhs)})"
        if isinstance(node, UnaryOp):
            return f"(-{render(node.operand)})"
        if isinstance(node, Call):
            args = ", ".join(render(a) for a in node.args)
            return f"{_CALL_RENDER[node.name]}({args})"
        raise TypeError(f"cannot render expression node {node!r}")

    return render(expr)


def _smem_plane_count(plan: KernelPlan) -> int:
    """Sub-planes per shared-memory buffer in the emitted code."""
    if plan.use_star_opt:
        return 1
    return 1 + 2 * plan.pattern.radius


def smem_declaration(plan: KernelPlan, block_dims: Sequence[str]) -> List[str]:
    """Shared-memory buffer declarations (double buffered by default)."""
    dtype = plan.pattern.dtype
    planes = _smem_plane_count(plan)
    plane_dim = f"[{planes}]" if planes > 1 else ""
    dims = "".join(f"[{d}]" for d in block_dims)
    buffers = plan.smem_buffers
    return [
        f"__shared__ {dtype} __an5d_sm{b}{plane_dim}{dims};" for b in range(buffers)
    ]


def generate_macro_definitions(plan: KernelPlan) -> str:
    """All ``#define`` lines of one kernel (LOAD, CALC1..CALCbT-1, STORE)."""
    pattern = plan.pattern
    dtype = pattern.dtype
    rad = pattern.radius
    period = 2 * rad + 1
    multi_plane = _smem_plane_count(plan) > 1
    ndim = pattern.ndim

    if ndim == 2:
        global_index = "[(__an5d_plane)][__an5d_gx]"
        smem_store_index = "[__an5d_tx]"
    else:
        global_index = "[(__an5d_plane)][__an5d_gy][__an5d_gx]"
        smem_store_index = "[__an5d_ty][__an5d_tx]"

    lines: List[str] = []
    lines.append(
        f"__device__ __forceinline__ {dtype} __an5d_sm_load(const {dtype} *p) {{ return *p; }}"
    )
    lines.append("")

    # LOAD: global memory -> register + shared memory (time step 0).
    lines.append(
        "#define LOAD(reg, __an5d_plane) do { \\\n"
        f"    (reg) = __an5d_in{global_index}; \\\n"
        f"    __an5d_sm0{'[' + str(rad) + ']' if multi_plane else ''}{smem_store_index} = (reg); \\\n"
        "  } while (0)"
    )

    source_args = ", ".join(f"s{k}" for k in range(period))
    source_registers = [f"(s{k})" for k in range(period)]
    for step in range(1, plan.config.bT):
        # With double buffering, time step T reads the buffer its predecessor
        # wrote and writes the other one (Section 4.2.2).
        read_buffer = f"__an5d_sm{(step - 1) % plan.smem_buffers}"
        write_buffer = f"__an5d_sm{step % plan.smem_buffers}"
        body = render_expression(
            pattern, pattern.expr, source_registers, read_buffer, multi_plane
        )
        plane_store = f"[{rad}]" if multi_plane else ""
        lines.append(
            f"#define CALC{step}(dst, {source_args}) do {{ \\\n"
            f"    {dtype} __an5d_res = {body}; \\\n"
            f"    {write_buffer}{plane_store}{smem_store_index} = __an5d_res; \\\n"
            "    (dst) = __an5d_res; \\\n"
            "  } while (0)"
        )

    # STORE: final combined time step writes the compute region only.
    final_buffer = f"__an5d_sm{(plan.config.bT - 1) % plan.smem_buffers}"
    final_body = render_expression(
        pattern, pattern.expr, source_registers, final_buffer, multi_plane
    )
    lines.append(
        f"#define STORE(__an5d_plane, {source_args}) do {{ \\\n"
        "    if (__an5d_in_compute_region) \\\n"
        f"      __an5d_out{global_index} = {final_body}; \\\n"
        "  } while (0)"
    )
    return "\n".join(lines)


def macro_call_text(plan: KernelPlan, kind: str, time_step: int, plane: str, args: Sequence[str]) -> str:
    """Render one macro invocation."""
    name = f"CALC{time_step}" if kind == "CALC" else kind
    if kind == "LOAD":
        return f"LOAD({args[0]}, {plane});"
    if kind == "STORE":
        return f"STORE({plane}, {', '.join(args)});"
    return f"{name}({', '.join(args)});"
