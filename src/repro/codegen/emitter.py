"""Pretty-printer for the CUDA mini-AST."""

from __future__ import annotations

from typing import List

from repro.codegen.cuda_ast import (
    Assign,
    Block,
    CudaNode,
    Declare,
    For,
    FuncDef,
    If,
    Raw,
    Return,
    Sync,
)


class CudaEmitter:
    """Renders CUDA nodes to indented source text."""

    def __init__(self, indent: str = "  ") -> None:
        self.indent = indent

    def emit(self, node: CudaNode, level: int = 0) -> str:
        return "\n".join(self._emit_lines(node, level))

    def emit_many(self, nodes: List[CudaNode], level: int = 0) -> str:
        lines: List[str] = []
        for node in nodes:
            lines.extend(self._emit_lines(node, level))
        return "\n".join(lines)

    # -- internals -------------------------------------------------------------
    def _pad(self, level: int) -> str:
        return self.indent * level

    def _emit_lines(self, node: CudaNode, level: int) -> List[str]:
        pad = self._pad(level)
        if isinstance(node, Raw):
            return [pad + line for line in node.text.splitlines()] or [pad]
        if isinstance(node, Declare):
            return [pad + node.render()]
        if isinstance(node, Assign):
            return [pad + node.render()]
        if isinstance(node, Sync):
            return [pad + "__syncthreads();"]
        if isinstance(node, Return):
            return [pad + "return;"]
        if isinstance(node, Block):
            lines: List[str] = []
            for statement in node.statements:
                lines.extend(self._emit_lines(statement, level))
            return lines
        if isinstance(node, If):
            lines = [pad + f"if ({node.condition}) {{"]
            lines.extend(self._emit_lines(node.then, level + 1))
            if node.otherwise is not None and node.otherwise.statements:
                lines.append(pad + "} else {")
                lines.extend(self._emit_lines(node.otherwise, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(node, For):
            lines = [pad + f"for ({node.init}; {node.condition}; {node.step}) {{"]
            lines.extend(self._emit_lines(node.body, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(node, FuncDef):
            lines = [pad + node.signature + " {"]
            lines.extend(self._emit_lines(node.body, level + 1))
            lines.append(pad + "}")
            return lines
        raise TypeError(f"cannot emit node of type {type(node).__name__}")
