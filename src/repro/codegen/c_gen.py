"""Re-emission of the normalized C loop nest from a stencil pattern.

AN5D's frontend normalises the input program before transforming it; this
module performs the inverse, turning a :class:`StencilPattern` back into the
canonical double-buffered C loop nest the frontend accepts.  It is used for:

* round-trip testing of the frontend (parse → pattern → emit → parse),
* producing the reference-loop source that accompanies generated CUDA so a
  user can diff what the kernel is supposed to compute, and
* exporting synthetic stencils (which are constructed directly in the IR) in
  a form other stencil tools can consume.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, UnaryOp
from repro.ir.stencil import StencilPattern

_LOOP_VARS = ("i", "j", "k")

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def _literal(value: float, dtype: str) -> str:
    text = f"{value:.9g}"
    if "." not in text and "e" not in text and "inf" not in text:
        text += ".0"
    return text + ("f" if dtype == "float" else "")


def _subscript(var: str, offset: int) -> str:
    if offset == 0:
        return f"[{var}]"
    sign = "+" if offset > 0 else "-"
    return f"[{var}{sign}{abs(offset)}]"


def _render_read(read: GridRead, array: str, spatial_vars: Sequence[str]) -> str:
    subscripts = "".join(
        _subscript(var, component) for var, component in zip(spatial_vars, read.offset)
    )
    return f"{array}[t%2]{subscripts}"


def render_c_expression(
    expr: Expr, pattern: StencilPattern, spatial_vars: Sequence[str], parent_precedence: int = 0
) -> str:
    """Render an IR expression as C source text."""
    if isinstance(expr, Const):
        return _literal(expr.value, pattern.dtype)
    if isinstance(expr, GridRead):
        return _render_read(expr, pattern.array, spatial_vars)
    if isinstance(expr, UnaryOp):
        inner = render_c_expression(expr.operand, pattern, spatial_vars, 3)
        return f"-{inner}"
    if isinstance(expr, Call):
        args = ", ".join(render_c_expression(a, pattern, spatial_vars, 0) for a in expr.args)
        name = expr.name
        if pattern.dtype == "float" and name in ("sqrt", "fabs", "exp") :
            name += "f"
        return f"{name}({args})"
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE[expr.op]
        lhs = render_c_expression(expr.lhs, pattern, spatial_vars, precedence)
        rhs = render_c_expression(expr.rhs, pattern, spatial_vars, precedence + 1)
        text = f"{lhs} {expr.op} {rhs}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot render expression node {expr!r}")


def generate_c(pattern: StencilPattern, size_names: Sequence[str] | None = None) -> str:
    """Emit the canonical double-buffered C loop nest for ``pattern``.

    ``size_names`` optionally overrides the symbolic loop bounds (defaults to
    ``I_T`` and ``I_S<n>`` following the paper's notation, innermost last).
    """
    spatial_vars = _LOOP_VARS[: pattern.ndim]
    if size_names is None:
        size_names = [f"I_S{pattern.ndim - d}" for d in range(pattern.ndim)]
    if len(size_names) != pattern.ndim:
        raise ValueError("expected one size name per spatial dimension")

    lines: List[str] = ["for (t = 0; t < I_T; t++)"]
    for depth, (var, size) in enumerate(zip(spatial_vars, size_names), start=1):
        lines.append(f"{'  ' * depth}for ({var} = 1; {var} <= {size}; {var}++)")

    lhs_subscripts = "".join(f"[{var}]" for var in spatial_vars)
    body = render_c_expression(pattern.expr, pattern, spatial_vars)
    indent = "  " * (pattern.ndim + 1)
    lines.append(f"{indent}{pattern.array}[(t+1)%2]{lhs_subscripts} = {body};")
    return "\n".join(lines) + "\n"


def round_trips(pattern: StencilPattern) -> bool:
    """True when emitting and re-parsing the pattern preserves its accesses.

    Coefficient text formatting can lose a few digits of precision, so the
    check compares the structural properties the transformation depends on:
    offsets, radius, shape classification and dtype.
    """
    from repro.frontend.stencil_detect import parse_stencil

    reparsed = parse_stencil(generate_c(pattern), name=pattern.name, dtype=pattern.dtype).pattern
    return (
        reparsed.offsets == pattern.offsets
        and reparsed.radius == pattern.radius
        and reparsed.shape == pattern.shape
        and reparsed.dtype == pattern.dtype
    )
