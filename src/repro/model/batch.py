"""Batched (structure-of-arrays) evaluation of the analytic model.

The scalar model walks one :class:`~repro.core.config.BlockingConfig` at a
time: per-config Python objects, per-position classification loops, dict
lookups.  That is fine for a single prediction but dominates cold tuning
sweeps, where the whole search space (bT x bS x hS x register-limit axes) is
evaluated before anything is measured.

This module evaluates *all* configurations at once.  A :class:`ConfigBatch`
holds the space as one ``int64`` column per blocking axis; the
:class:`BatchModelEngine` turns those columns into thread-category counts,
traffic totals, register pressure, occupancy, and finally the roofline
prediction (Section 5) and the timing-simulator measurement, each as a
handful of NumPy array operations.  Pruning (Section 6.3) becomes boolean
masks over the same arrays.

Exactness contract
------------------
The scalar model remains the oracle: for every configuration the batch
engine reproduces its results *bit for bit* — identical integers and
identical float64 values, not merely values within a tolerance.  Two things
make that possible:

* every intermediate that is an integer in the scalar path stays ``int64``
  here (the per-dimension thread-category counts are closed-form sums of
  clipped arithmetic sequences instead of per-position loops), and
* every float operation mirrors the scalar code's operand order and type
  promotions, so each step performs the same IEEE-754 operation.

``ceil``/``floor`` of integer ratios use exact integer division; the scalar
path's ``math.ceil(a / b)`` agrees because every such ratio in the model is
far below 2**53, where float division cannot cross an integer boundary.

Configurations with non-default optimisation switches (single buffering,
forced star/associative overrides) and 1-D patterns are outside the batch
layout; callers fall back to the scalar path for those.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_registry

from repro.core.config import (
    MAX_THREADS_PER_BLOCK,
    BlockingConfig,
    ConfigurationError,
)
from repro.ir.flops import alu_efficiency, count_flops
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec
from repro.model.traffic import shared_memory_access_per_thread

_GIGA = 1.0e9

#: Column value standing in for ``None`` (undivided stream / no register cap).
UNSET = -1

#: Bottleneck names in the scalar model's dict-iteration order; the batch
#: arrays store indices into this tuple (3 = unlaunchable, simulator only).
BOTTLENECKS: Tuple[str, ...] = ("compute", "global_memory", "shared_memory", "unlaunchable")

#: Occupancy limiter names in the scalar ``occupancy_for`` dict order.
LIMITING_FACTORS: Tuple[str, ...] = ("threads", "blocks", "shared_memory", "registers")

#: Occupancy saturation points of :mod:`repro.sim.memory`.
_GLOBAL_SATURATION_OCCUPANCY = 0.25
_SHARED_SATURATION_OCCUPANCY = 0.45


class BatchUnsupportedError(ValueError):
    """The configurations cannot be represented in the batch layout."""


def supports_pattern(pattern: StencilPattern) -> bool:
    """Whether the batch layout can represent this pattern's search space."""
    return pattern.ndim in (2, 3)


def is_standard_config(config: BlockingConfig) -> bool:
    """Default optimisation switches — the only ones the engine evaluates."""
    return (
        config.double_buffer
        and config.star_opt is None
        and config.associative_opt is None
        and not config.vectorized_smem
    )


def resolve_engine(engine: str, pattern: StencilPattern) -> str:
    """Normalise an ``--engine`` selector to ``"batch"`` or ``"scalar"``."""
    if engine not in ("auto", "batch", "scalar"):
        raise ValueError(f"unknown engine {engine!r}; expected auto, batch or scalar")
    if engine == "batch" and not supports_pattern(pattern):
        raise ValueError(
            f"batch engine does not support {pattern.ndim}-D patterns; use --engine scalar"
        )
    if engine == "auto":
        return "batch" if supports_pattern(pattern) else "scalar"
    return engine


# ---------------------------------------------------------------------------
# The structure-of-arrays configuration batch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigBatch:
    """N blocking configurations as one ``int64`` column per axis.

    ``hS`` and ``regs`` use :data:`UNSET` where the scalar configuration
    holds ``None``.  All configurations share the default optimisation
    switches (see :func:`is_standard_config`).
    """

    bT: np.ndarray  # (N,)
    bS: np.ndarray  # (N, blocked_dims)
    hS: np.ndarray  # (N,)
    regs: np.ndarray  # (N,)

    @property
    def size(self) -> int:
        return int(self.bT.shape[0])

    @property
    def blocked_dims(self) -> int:
        return int(self.bS.shape[1])

    @property
    def nthr(self) -> np.ndarray:
        """Threads per block (product of the spatial block sizes)."""
        return np.prod(self.bS, axis=1, dtype=np.int64)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_space(cls, space: "SearchSpace", include_register_limits: bool = False) -> "ConfigBatch":
        """Materialise a search space in its enumeration order.

        Rows follow ``itertools.product(time_blocks, spatial_blocks,
        stream_blocks[, register_limits])`` exactly, so row ``i`` corresponds
        to the ``i``-th configuration of ``space.configurations()``.
        """
        time_blocks = np.asarray(space.time_blocks, dtype=np.int64).reshape(-1)
        spatial = np.asarray(space.spatial_blocks, dtype=np.int64)
        if spatial.size == 0:
            spatial = spatial.reshape(0, 1)
        stream = np.asarray(
            [UNSET if v is None else v for v in space.stream_blocks], dtype=np.int64
        ).reshape(-1)
        limits = (
            np.asarray(
                [UNSET if v is None else v for v in space.register_limits], dtype=np.int64
            ).reshape(-1)
            if include_register_limits
            else np.asarray([UNSET], dtype=np.int64)
        )
        nt, ns, nh, nl = len(time_blocks), spatial.shape[0], len(stream), len(limits)
        return cls(
            bT=np.repeat(time_blocks, ns * nh * nl),
            bS=np.tile(np.repeat(spatial, nh * nl, axis=0), (nt, 1)),
            hS=np.tile(np.repeat(stream, nl), nt * ns),
            regs=np.tile(limits, nt * ns * nh),
        )

    @classmethod
    def from_configs(
        cls, configs: Sequence[BlockingConfig], check_switches: bool = True
    ) -> "ConfigBatch":
        """Pack explicit configurations; order is preserved.

        Raises :class:`BatchUnsupportedError` for ragged spatial-block
        lengths or (unless ``check_switches`` is disabled — the pruning
        masks do not depend on them) non-default optimisation switches;
        callers catch it and fall back to the scalar path.
        """
        configs = list(configs)
        if not configs:
            raise BatchUnsupportedError("empty configuration list")
        blocked = len(configs[0].bS)
        for config in configs:
            if len(config.bS) != blocked:
                raise BatchUnsupportedError("mixed spatial-block dimensionalities")
            if check_switches and not is_standard_config(config):
                raise BatchUnsupportedError("non-default optimisation switches")
        return cls(
            bT=np.asarray([c.bT for c in configs], dtype=np.int64),
            bS=np.asarray([c.bS for c in configs], dtype=np.int64),
            hS=np.asarray(
                [UNSET if c.hS is None else c.hS for c in configs], dtype=np.int64
            ),
            regs=np.asarray(
                [UNSET if c.register_limit is None else c.register_limit for c in configs],
                dtype=np.int64,
            ),
        )

    # -- derived batches -----------------------------------------------------
    def select(self, mask: np.ndarray) -> "ConfigBatch":
        """Rows where ``mask`` holds (boolean or index array), order kept."""
        return ConfigBatch(self.bT[mask], self.bS[mask], self.hS[mask], self.regs[mask])

    def with_register_limits(self, limits: Sequence[Optional[int]]) -> "ConfigBatch":
        """Cross every row with the register-limit axis.

        The result is configuration-major, limit-minor — the exact order the
        scalar exhaustive sweep visits candidates in.
        """
        values = np.asarray([UNSET if v is None else v for v in limits], dtype=np.int64)
        n = len(values)
        return ConfigBatch(
            bT=np.repeat(self.bT, n),
            bS=np.repeat(self.bS, n, axis=0),
            hS=np.repeat(self.hS, n),
            regs=np.tile(values, self.size),
        )

    # -- scalar views --------------------------------------------------------
    def config(self, index: int) -> BlockingConfig:
        """Materialise row ``index`` as a scalar configuration."""
        hs = int(self.hS[index])
        regs = int(self.regs[index])
        return BlockingConfig(
            bT=int(self.bT[index]),
            bS=tuple(int(v) for v in self.bS[index]),
            hS=None if hs == UNSET else hs,
            register_limit=None if regs == UNSET else regs,
        )

    def configs(self) -> Iterator[BlockingConfig]:
        return (self.config(i) for i in range(self.size))


# ---------------------------------------------------------------------------
# Pruning masks (Section 6.3)
# ---------------------------------------------------------------------------


def register_demand(pattern: StencilPattern, bT: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.model.registers.estimate_registers`."""
    column = 2 * pattern.radius + 1
    if pattern.dtype == "float":
        return bT * column + bT + 20
    return 2 * bT * column + bT + 30


def validity_mask(pattern: StencilPattern, batch: ConfigBatch) -> np.ndarray:
    """``BlockingConfig.is_valid`` for every row at once."""
    if batch.blocked_dims != max(pattern.ndim - 1, 1):
        return np.zeros(batch.size, dtype=bool)
    if pattern.ndim == 1:
        # 1-D stencils have zero blocked dimensions; no batch row (which
        # always carries at least one spatial block) can be valid.
        return np.zeros(batch.size, dtype=bool)
    compute = batch.bS - (2 * pattern.radius) * batch.bT[:, None]
    return (batch.nthr <= MAX_THREADS_PER_BLOCK) & np.all(compute > 0, axis=1)


def register_mask(pattern: StencilPattern, batch: ConfigBatch, gpu: GpuSpec) -> np.ndarray:
    """``register_pressure_ok`` for every row at once."""
    demand = register_demand(pattern, batch.bT)
    return (demand <= gpu.max_registers_per_thread) & (
        demand * batch.nthr <= gpu.registers_per_sm
    )


def prune_mask(pattern: StencilPattern, batch: ConfigBatch, gpu: GpuSpec) -> np.ndarray:
    """Rows that survive both pruning rules (validity and registers)."""
    return validity_mask(pattern, batch) & register_mask(pattern, batch, gpu)


# ---------------------------------------------------------------------------
# Closed-form thread-category counts
# ---------------------------------------------------------------------------


def _sum_clipped(a: np.ndarray, step: np.ndarray, n: np.ndarray, cap: np.ndarray) -> np.ndarray:
    """``sum_{b=0}^{n-1} clip(a - b*step, 0, cap)`` for int64 arrays.

    This is the kernel of the coverage computation: every per-dimension
    category count is the sum of a clipped arithmetic sequence over the
    blocks of that dimension.  ``step >= 1``; terms saturate at ``cap`` for
    the first ``nf`` blocks, decay linearly over the next ``m`` blocks and
    are zero afterwards.
    """
    nf = np.clip((a - cap) // step + 1, 0, n)
    npos = np.clip((a - 1) // step + 1, 0, n)
    m = npos - nf
    return nf * cap + m * a - step * ((m * (nf + npos - 1)) // 2)


def _dimension_counts(
    extent: int, block: np.ndarray, bT: np.ndarray, radius: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-dimension (valid, redundant, boundary, out-of-bound, total) counts.

    Equivalent to summing ``ExecutionModel.dimension_coverage`` over all
    blocks, but in closed form: block ``b`` covers coordinates
    ``[b*C - H, b*C + C + H)``; counting coordinates below a threshold per
    block is a clipped arithmetic sequence in ``b``, so each category is a
    difference of two :func:`_sum_clipped` sums.
    """
    halo = bT * radius
    compute = block - 2 * halo
    compute = np.maximum(compute, 1)  # guard; only masked-valid rows are used
    nblocks = -(-extent // compute)
    total = nblocks * block

    oob_low = _sum_clipped(halo - radius, compute, nblocks, block)
    below_zero = _sum_clipped(halo, compute, nblocks, block)
    # High-side counts ascend with b; reversing the block order turns them
    # into the same descending form anchored at the last block.
    high_anchor = compute + halo - extent + (nblocks - 1) * compute
    oob_high = _sum_clipped(high_anchor - radius, compute, nblocks, block)
    at_or_above_extent = _sum_clipped(high_anchor, compute, nblocks, block)

    valid = np.full_like(block, extent)
    out_of_bound = oob_low + oob_high
    boundary = (below_zero - oob_low) + (at_or_above_extent - oob_high)
    redundant = total - valid - boundary - out_of_bound
    return valid, redundant, boundary, out_of_bound, total


# ---------------------------------------------------------------------------
# Batched traffic, prediction, measurement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchTraffic:
    """Array analogue of ``TrafficTotals`` + ``ThreadWorkCounts``."""

    compute: np.ndarray
    gm_read: np.ndarray
    gm_write: np.ndarray
    sm_read: np.ndarray
    sm_write: np.ndarray
    launches: np.ndarray
    valid: np.ndarray
    redundant: np.ndarray
    boundary: np.ndarray
    out_of_bound: np.ndarray
    total_flops: np.ndarray
    global_bytes: np.ndarray
    shared_bytes: np.ndarray

    def repeat(self, repeats: int) -> "BatchTraffic":
        """Each row repeated ``repeats`` times, matching the row order of
        ``ConfigBatch.with_register_limits``.

        Traffic does not depend on the register limit (the scalar path
        memoizes on the limit-stripped configuration for the same reason), so
        a sweep over the register-limit axis can reuse one traffic pass.
        """
        return BatchTraffic(
            **{
                name: np.repeat(getattr(self, name), repeats)
                for name in self.__dataclass_fields__
            }
        )


@dataclass(frozen=True)
class BatchPrediction:
    """Array analogue of ``PerformancePrediction`` for a whole batch."""

    time_compute_s: np.ndarray
    time_global_s: np.ndarray
    time_shared_s: np.ndarray
    sm_efficiency: np.ndarray
    time_s: np.ndarray
    gflops: np.ndarray
    gcells: np.ndarray
    bottleneck: np.ndarray  # indices into BOTTLENECKS
    traffic: BatchTraffic

    @property
    def size(self) -> int:
        return int(self.gflops.shape[0])

    def bottleneck_name(self, index: int) -> str:
        return BOTTLENECKS[int(self.bottleneck[index])]


@dataclass(frozen=True)
class BatchMeasurement:
    """Array analogue of ``SimulatedMeasurement`` for a whole batch."""

    time_s: np.ndarray
    gflops: np.ndarray
    gcells: np.ndarray
    occupancy: np.ndarray
    registers_per_thread: np.ndarray
    limiting_factor: np.ndarray  # indices into LIMITING_FACTORS
    bottleneck: np.ndarray  # indices into BOTTLENECKS (3 = unlaunchable)
    time_compute_s: np.ndarray
    time_global_s: np.ndarray
    time_shared_s: np.ndarray
    overhead_s: np.ndarray

    @property
    def size(self) -> int:
        return int(self.gflops.shape[0])

    def bottleneck_name(self, index: int) -> str:
        return BOTTLENECKS[int(self.bottleneck[index])]

    def limiting_factor_name(self, index: int) -> str:
        return LIMITING_FACTORS[int(self.limiting_factor[index])]


class BatchModelEngine:
    """Evaluate the analytic model and the timing simulator over a batch.

    One engine is bound to (pattern, grid, GPU); per-pattern scalars (FLOP
    mix, shared-memory accesses, register formulas) are computed once in the
    constructor, so evaluating a batch touches only array operations.

    Results are only meaningful for rows that survive :func:`prune_mask`;
    invalid rows are computed with guarded denominators and must be masked
    by the caller.
    """

    def __init__(self, pattern: StencilPattern, grid: GridSpec, gpu: GpuSpec) -> None:
        if not supports_pattern(pattern):
            raise BatchUnsupportedError(
                f"batch engine supports 2-D/3-D patterns, got {pattern.ndim}-D"
            )
        if grid.ndim != pattern.ndim:
            raise ConfigurationError("grid dimensionality does not match the stencil")
        self.pattern = pattern
        self.grid = grid
        self.gpu = gpu
        self.radius = pattern.radius
        self.blocked_extents = grid.interior[1:]
        self.streaming_extent = grid.interior[0]

        flop_mix = count_flops(pattern.expr)
        self.flops_per_cell = flop_mix.total
        self.alu_efficiency = alu_efficiency(flop_mix)
        access = shared_memory_access_per_thread(pattern)
        self.smem_reads_per_thread = access.reads_practical
        self.smem_writes_per_thread = access.writes
        self.word_bytes = pattern.word_bytes
        self.useful_flops = float(grid.cells * grid.time_steps * self.flops_per_cell)
        self.cells = grid.cells * grid.time_steps
        # AN5D shared-memory plan for default switches: star/associative
        # stencils keep a single exchange plane, everything else 1 + 2*rad.
        single_plane = pattern.diagonal_access_free or pattern.associative
        self.smem_planes = 1 if single_plane else 1 + 2 * pattern.radius

    # -- geometry ------------------------------------------------------------
    def _stream_blocks(self, batch: ConfigBatch) -> np.ndarray:
        """``num_stream_blocks`` per row (1 where the stream is undivided)."""
        divided = batch.hS != UNSET
        safe_hs = np.where(divided, batch.hS, 1)
        return np.where(divided, -(-self.streaming_extent // safe_hs), 1)

    def _blocks_per_dimension(self, batch: ConfigBatch) -> np.ndarray:
        """(N, D) thread-block counts along each blocked dimension."""
        compute = np.maximum(batch.bS - (2 * self.radius) * batch.bT[:, None], 1)
        extents = np.asarray(self.blocked_extents, dtype=np.int64)
        return -(-extents // compute)

    def thread_counts(
        self, batch: ConfigBatch
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(valid, redundant, boundary, out_of_bound) threads per sub-plane.

        Per-dimension categories combine multiplicatively; a thread's overall
        category is its most severe per-dimension category, which in terms of
        cumulative ("at most this severe") counts is a per-severity product.
        """
        per_dim = [
            _dimension_counts(extent, batch.bS[:, d], batch.bT, self.radius)
            for d, extent in enumerate(self.blocked_extents)
        ]
        if len(per_dim) == 1:
            valid, redundant, boundary, out_of_bound, _ = per_dim[0]
            return valid, redundant, boundary, out_of_bound
        cumulative = []
        for severity in range(4):
            product = np.ones(batch.size, dtype=np.int64)
            for valid, redundant, boundary, _, total in per_dim:
                at_most = (valid, valid + redundant, valid + redundant + boundary, total)
                product = product * at_most[severity]
            cumulative.append(product)
        return (
            cumulative[0],
            cumulative[1] - cumulative[0],
            cumulative[2] - cumulative[1],
            cumulative[3] - cumulative[2],
        )

    # -- traffic (Section 5, first steps) ------------------------------------
    def traffic(self, batch: ConfigBatch) -> BatchTraffic:
        """Vectorised ``count_thread_work`` + ``compute_traffic``."""
        valid, redundant, boundary, out_of_bound = self.thread_counts(batch)
        stream = self.streaming_extent
        rad = self.radius
        bT = batch.bT
        time_steps = self.grid.time_steps

        launches = -(-time_steps // bT) if time_steps else np.zeros_like(bT)
        launch_span = np.maximum(launches * bT, 1)
        step_fraction = np.where(launches > 0, time_steps / launch_span, 0.0)

        stream_blocks = self._stream_blocks(batch)
        extra_blocks = stream_blocks - 1
        divided = stream_blocks > 1
        planes_loaded = stream + 2 * rad + np.where(divided, extra_blocks * (2 * rad * bT), 0)
        plane_steps = bT * (stream + 2 * rad) + np.where(
            divided, extra_blocks * (rad * bT * (bT - 1)), 0
        )

        in_grid = valid + redundant + boundary
        compute_threads = valid + redundant
        all_threads = in_grid + out_of_bound

        per_launch_compute = (compute_threads * plane_steps) * step_fraction
        compute = (per_launch_compute * launches).astype(np.int64)
        gm_read = in_grid * planes_loaded * launches
        gm_write = valid * stream * launches
        sm_write = ((all_threads * plane_steps) * step_fraction * launches).astype(np.int64)
        sm_read = compute  # same expression as the compute total

        total_flops = (compute * self.flops_per_cell).astype(np.float64)
        global_bytes = ((gm_read + gm_write) * self.word_bytes).astype(np.float64)
        shared_bytes = (
            (sm_read * self.smem_reads_per_thread + sm_write * self.smem_writes_per_thread)
            * self.word_bytes
        ).astype(np.float64)

        return BatchTraffic(
            compute=compute,
            gm_read=gm_read,
            gm_write=gm_write,
            sm_read=sm_read,
            sm_write=sm_write,
            launches=launches,
            valid=valid,
            redundant=redundant,
            boundary=boundary,
            out_of_bound=out_of_bound,
            total_flops=total_flops,
            global_bytes=global_bytes,
            shared_bytes=shared_bytes,
        )

    # -- the analytic roofline (Section 5, final step) ------------------------
    def predict(self, batch: ConfigBatch, traffic: Optional[BatchTraffic] = None) -> BatchPrediction:
        """Vectorised ``predict_performance`` over every row."""
        traffic = traffic if traffic is not None else self.traffic(batch)
        gpu = self.gpu
        dtype = self.pattern.dtype

        peak_comp = gpu.peak_gflops(dtype) * _GIGA * self.alu_efficiency
        peak_gm = gpu.measured_membw(dtype) * _GIGA
        peak_sm = gpu.measured_smembw(dtype) * _GIGA

        time_compute = traffic.total_flops / peak_comp
        time_global = traffic.global_bytes / peak_gm
        time_shared = traffic.shared_bytes / peak_sm

        total_blocks = self._stream_blocks(batch) * np.prod(
            self._blocks_per_dimension(batch), axis=1, dtype=np.int64
        )
        eff_sm = np.maximum(self._paper_sm_efficiency(total_blocks, batch.nthr), 1.0e-6)

        times = np.stack([time_compute, time_global, time_shared])
        bottleneck = times.argmax(axis=0)
        time_total = times[bottleneck, np.arange(batch.size)] / eff_sm

        positive = time_total > 0
        safe_total = np.where(positive, time_total, 1.0)
        gflops = np.where(positive, self.useful_flops / safe_total / _GIGA, 0.0)
        gcells = np.where(positive, self.cells / safe_total / _GIGA, 0.0)

        return BatchPrediction(
            time_compute_s=time_compute,
            time_global_s=time_global,
            time_shared_s=time_shared,
            sm_efficiency=eff_sm,
            time_s=time_total,
            gflops=gflops,
            gcells=gcells,
            bottleneck=bottleneck,
            traffic=traffic,
        )

    def _paper_sm_efficiency(self, total_blocks: np.ndarray, nthr: np.ndarray) -> np.ndarray:
        """Vectorised ``paper_sm_efficiency`` (wave quantisation)."""
        blocks_per_group = np.maximum(self.gpu.max_threads_per_sm // nthr, 1)
        filled = total_blocks / blocks_per_group
        full = np.floor(filled)
        partial = np.ceil(filled)
        safe_partial = np.where(partial > 0, partial, 1.0)
        quantised = np.where(full == 0, filled, full / safe_partial)
        return np.where(partial == 0, 1.0, quantised)

    # -- the timing simulator ------------------------------------------------
    def simulate(self, batch: ConfigBatch, traffic: Optional[BatchTraffic] = None) -> BatchMeasurement:
        """Vectorised ``TimingSimulator.simulate`` over every row."""
        # One gauge write per vectorised *call* (thousands of configs), so
        # the sweep throughput readout costs nothing measurable.
        sweep_start = time.perf_counter()
        try:
            return self._simulate(batch, traffic)
        finally:
            elapsed = time.perf_counter() - sweep_start
            if elapsed > 0:
                get_registry().gauge(
                    "model_configs_per_second",
                    "Configurations the batched model evaluated per second",
                ).set(batch.size / elapsed)

    def _simulate(self, batch: ConfigBatch, traffic: Optional[BatchTraffic] = None) -> BatchMeasurement:
        traffic = traffic if traffic is not None else self.traffic(batch)
        gpu = self.gpu
        pattern = self.pattern
        dtype = pattern.dtype
        nthr = batch.nthr
        bT = batch.bT

        # -- registers and occupancy ------------------------------------------
        demand = register_demand(pattern, bT)
        capped = batch.regs != UNSET
        per_thread = np.where(capped, np.minimum(demand, batch.regs), demand)
        per_block = per_thread * nthr
        smem_bytes = 2 * self.smem_planes * nthr * (self.word_bytes // 4) * 4

        limits = np.stack(
            [
                gpu.max_threads_per_sm // nthr,
                np.full(batch.size, gpu.max_blocks_per_sm, dtype=np.int64),
                gpu.shared_memory_per_sm_bytes // smem_bytes,
                gpu.registers_per_sm // per_block,
            ]
        )
        limiting_factor = limits.argmin(axis=0)
        blocks_per_sm = np.maximum(limits.min(axis=0), 0)
        launchable = blocks_per_sm > 0
        safe_bpsm = np.maximum(blocks_per_sm, 1)

        total_blocks = self._stream_blocks(batch) * np.prod(
            self._blocks_per_dimension(batch), axis=1, dtype=np.int64
        )
        occupancy = np.minimum(blocks_per_sm * nthr / gpu.max_threads_per_sm, 1.0)
        concurrent = safe_bpsm * gpu.sm_count
        waves = total_blocks / concurrent
        wave_efficiency = waves / np.maximum(np.ceil(waves), 1.0)
        effective_occupancy = occupancy * np.minimum(wave_efficiency, 1.0)

        # -- the three pipeline times -----------------------------------------
        compute_gflops = gpu.peak_gflops(dtype) * self.alu_efficiency
        division_penalty = (
            gpu.fp64_division_penalty
            if pattern.has_division and dtype == "double"
            else 1.0
        )
        time_compute = traffic.total_flops / (compute_gflops * _GIGA) * division_penalty

        fraction_global = np.where(
            effective_occupancy <= 0.0,
            0.0,
            np.minimum(1.0, effective_occupancy / _GLOBAL_SATURATION_OCCUPANCY),
        )
        fraction_shared = np.where(
            effective_occupancy <= 0.0,
            0.0,
            np.minimum(1.0, effective_occupancy / _SHARED_SATURATION_OCCUPANCY),
        )
        global_gbs = gpu.measured_membw(dtype) * fraction_global
        shared_gbs = (gpu.measured_smembw(dtype) * gpu.shared_efficiency(dtype)) * fraction_shared
        launchable = launchable & (global_gbs > 0.0) & (shared_gbs > 0.0)

        safe_global = np.where(global_gbs > 0.0, global_gbs * _GIGA, 1.0)
        safe_shared = np.where(shared_gbs > 0.0, shared_gbs * _GIGA, 1.0)
        time_global = traffic.global_bytes / safe_global
        time_shared = traffic.shared_bytes / safe_shared

        # -- register spilling -------------------------------------------------
        width = 2 if dtype == "double" else 1
        minimum_live = width * (2 * pattern.radius + 1) + bT + 16
        spilled = capped & (minimum_live > batch.regs)
        overflow = demand - batch.regs
        penalty = np.where(spilled, 1.0 + np.minimum(0.08 * overflow, 0.9), 1.0)
        time_compute = time_compute * penalty
        time_global = time_global * penalty

        # -- fixed overheads ---------------------------------------------------
        stream_blocks = self._stream_blocks(batch)
        span = np.where(
            batch.hS != UNSET,
            np.minimum(batch.hS, self.streaming_extent),
            self.streaming_extent,
        )
        overlap = np.where(stream_blocks > 1, self.radius * bT * (bT + 1), 0)
        subplanes = span + 2 * self.radius + overlap
        syncs_per_block = subplanes * bT  # double buffering: one barrier per step
        launch_blocks = total_blocks * traffic.launches
        sync_waves = np.ceil(launch_blocks / (safe_bpsm * gpu.sm_count))
        sync_cost = np.where(
            (launch_blocks == 0) | ~(blocks_per_sm > 0),
            0.0,
            (syncs_per_block * 2.0e-8) * sync_waves,
        )
        overhead = 5.0e-6 * traffic.launches + sync_cost

        # -- bottleneck and totals ---------------------------------------------
        times = np.stack([time_compute, time_global, time_shared])
        bottleneck = times.argmax(axis=0)
        rows = np.arange(batch.size)
        leading = times[bottleneck, rows]
        others = np.where(
            bottleneck == 0,
            time_global + time_shared,
            np.where(bottleneck == 1, time_compute + time_shared, time_compute + time_global),
        )
        total = leading + 0.12 * others + overhead
        safe_total = np.where(total > 0, total, 1.0)
        gflops = self.useful_flops / safe_total / _GIGA
        gcells = self.cells / safe_total / _GIGA

        # -- unlaunchable rows mirror TimingSimulator._unlaunchable ------------
        inf = np.float64(np.inf)
        return BatchMeasurement(
            time_s=np.where(launchable, total, inf),
            gflops=np.where(launchable, gflops, 0.0),
            gcells=np.where(launchable, gcells, 0.0),
            occupancy=np.where(launchable, occupancy, 0.0),
            registers_per_thread=per_thread,
            limiting_factor=limiting_factor,
            bottleneck=np.where(launchable, bottleneck, 3),
            time_compute_s=np.where(launchable, time_compute, inf),
            time_global_s=np.where(launchable, time_global, inf),
            time_shared_s=np.where(launchable, time_shared, inf),
            overhead_s=np.where(launchable, overhead, 0.0),
        )

    # -- scalar materialisation ----------------------------------------------
    def prediction(self, result: BatchPrediction, index: int) -> "PerformancePrediction":
        """Row ``index`` as the scalar model's ``PerformancePrediction``.

        Field-for-field identical to ``predict_performance`` on the same
        configuration (the equivalence tests compare with ``==``).
        """
        from repro.model.roofline import PerformancePrediction
        from repro.model.threads import ThreadWorkCounts
        from repro.model.traffic import TrafficTotals

        t = result.traffic
        work = ThreadWorkCounts(
            compute=int(t.compute[index]),
            gm_read=int(t.gm_read[index]),
            gm_write=int(t.gm_write[index]),
            sm_read=int(t.sm_read[index]),
            sm_write=int(t.sm_write[index]),
            launches=int(t.launches[index]),
            threads_per_subplane_valid=int(t.valid[index]),
            threads_per_subplane_redundant=int(t.redundant[index]),
            threads_per_subplane_boundary=int(t.boundary[index]),
            threads_per_subplane_out_of_bound=int(t.out_of_bound[index]),
        )
        totals = TrafficTotals(
            total_flops=float(t.total_flops[index]),
            useful_flops=self.useful_flops,
            global_bytes=float(t.global_bytes[index]),
            shared_bytes=float(t.shared_bytes[index]),
            alu_efficiency=self.alu_efficiency,
            thread_work=work,
        )
        return PerformancePrediction(
            time_compute_s=float(result.time_compute_s[index]),
            time_global_s=float(result.time_global_s[index]),
            time_shared_s=float(result.time_shared_s[index]),
            sm_efficiency=float(result.sm_efficiency[index]),
            time_s=float(result.time_s[index]),
            gflops=float(result.gflops[index]),
            gcells=float(result.gcells[index]),
            bottleneck=result.bottleneck_name(index),
            traffic=totals,
        )

    def measurement(self, result: BatchMeasurement, index: int) -> "SimulatedMeasurement":
        """Row ``index`` as the simulator's ``SimulatedMeasurement``."""
        from repro.sim.timing import SimulatedMeasurement

        return SimulatedMeasurement(
            time_s=float(result.time_s[index]),
            gflops=float(result.gflops[index]),
            gcells=float(result.gcells[index]),
            occupancy=float(result.occupancy[index]),
            registers_per_thread=int(result.registers_per_thread[index]),
            limiting_factor=result.limiting_factor_name(index),
            bottleneck=result.bottleneck_name(index),
            time_compute_s=float(result.time_compute_s[index]),
            time_global_s=float(result.time_global_s[index]),
            time_shared_s=float(result.time_shared_s[index]),
            overhead_s=float(result.overhead_s[index]),
        )
