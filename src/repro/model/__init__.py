"""Roofline-based performance model (Section 5 of the paper).

The model predicts kernel runtime from first principles: it classifies the
threads of the N.5D execution model, converts the counts into global-memory,
shared-memory and compute totals, discounts peak throughputs by the ALU and
SM utilisation efficiencies, and takes the maximum of the three bottleneck
times.  It is intentionally optimistic — the paper reports 49–67 % average
accuracy — and the gap to "measured" performance is reproduced by the
separate timing simulator in :mod:`repro.sim`.
"""

from repro.model.batch import (
    BatchMeasurement,
    BatchModelEngine,
    BatchPrediction,
    ConfigBatch,
    prune_mask,
    register_mask,
    resolve_engine,
    supports_pattern,
    validity_mask,
)
from repro.model.gpu_specs import GPUS, GpuSpec, get_gpu
from repro.model.threads import ThreadWorkCounts, count_thread_work
from repro.model.traffic import (
    TrafficTotals,
    clear_traffic_cache,
    compute_traffic,
    shared_memory_access_per_thread,
)
from repro.model.registers import estimate_registers, register_pressure_ok, stencilgen_registers
from repro.model.occupancy import OccupancyResult, clear_occupancy_cache, occupancy_for
from repro.model.roofline import PerformancePrediction, predict_performance


def clear_model_caches() -> None:
    """Drop every model-layer memo (used by benchmarks to time cold paths)."""
    clear_traffic_cache()
    clear_occupancy_cache()


__all__ = [
    "clear_model_caches",
    "clear_occupancy_cache",
    "clear_traffic_cache",
    "BatchMeasurement",
    "BatchModelEngine",
    "BatchPrediction",
    "ConfigBatch",
    "GPUS",
    "GpuSpec",
    "OccupancyResult",
    "PerformancePrediction",
    "ThreadWorkCounts",
    "TrafficTotals",
    "compute_traffic",
    "count_thread_work",
    "estimate_registers",
    "get_gpu",
    "occupancy_for",
    "predict_performance",
    "prune_mask",
    "register_mask",
    "register_pressure_ok",
    "resolve_engine",
    "shared_memory_access_per_thread",
    "stencilgen_registers",
    "supports_pattern",
    "validity_mask",
]
