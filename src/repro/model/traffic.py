"""Memory-traffic and FLOP totals (Section 5, Table 2).

Shared-memory accesses per thread follow Table 2 of the paper:

=========  ==========================  =======================  ======
Shape      Read (expected)             Read (practical)         Write
=========  ==========================  =======================  ======
2D star    ``2*rad``                   ``2*rad``                1
2D box     ``(2*rad+1)^2 - (2*rad+1)`` ``(2*rad+1) - 1``        1
3D star    ``4*rad``                   ``4*rad``                1
3D box     ``(2*rad+1)^3 - (2*rad+1)`` ``(2*rad+1)^2 - 1``      1
=========  ==========================  =======================  ======

The "practical" column accounts for NVCC caching shared-memory values in
registers (one read per stencil column); the model uses the practical values,
as the authors found the expected values underestimate performance for box
stencils.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BlockingConfig
from repro.ir.classify import StencilShape
from repro.ir.flops import alu_efficiency, count_flops
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.threads import ThreadWorkCounts, count_thread_work


@dataclass(frozen=True)
class SharedMemoryAccess:
    """Per-thread shared-memory access counts (one cell update)."""

    reads_expected: int
    reads_practical: int
    writes: int


def shared_memory_access_per_thread(
    pattern: StencilPattern, practical: bool = True
) -> SharedMemoryAccess:
    """Table 2: shared-memory reads/writes per thread for one update."""
    rad = pattern.radius
    points_per_column = 2 * rad + 1
    if pattern.shape is StencilShape.STAR:
        expected = 2 * rad * (pattern.ndim - 1)
        return SharedMemoryAccess(expected, expected, 1)
    # Box and general stencils: all points except the register-held column.
    total_points = points_per_column ** pattern.ndim
    expected = total_points - points_per_column
    practical_reads = points_per_column ** (pattern.ndim - 1) - 1
    return SharedMemoryAccess(expected, practical_reads, 1)


@dataclass(frozen=True)
class TrafficTotals:
    """Aggregate traffic and computation for one full stencil run."""

    total_flops: float
    useful_flops: float
    global_bytes: float
    shared_bytes: float
    alu_efficiency: float
    thread_work: ThreadWorkCounts

    @property
    def arithmetic_intensity(self) -> float:
        """Useful FLOPs per byte of global-memory traffic."""
        if self.global_bytes == 0:
            return float("inf")
        return self.useful_flops / self.global_bytes


#: Memo for compute_traffic: traffic totals are identical for every register
#: limit of a configuration, so tuning sweeps that fan one config out over
#: several ``-maxrregcount`` values hit the cache after the first variant.
#: Keys use the pattern's identity token (see StencilPattern.cache_key).
_TRAFFIC_CACHE: dict = {}
_TRAFFIC_CACHE_MAX = 1 << 16


def clear_traffic_cache() -> None:
    _TRAFFIC_CACHE.clear()


def compute_traffic(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    practical_smem: bool = True,
) -> TrafficTotals:
    """Total global/shared traffic and FLOPs for running ``grid.time_steps``.

    Results are memoized per (pattern, grid, configuration-sans-register-limit).
    """
    base_config = config if config.register_limit is None else config.with_register_limit(None)
    key = (pattern.cache_key, grid, base_config, practical_smem)
    cached = _TRAFFIC_CACHE.get(key)
    if cached is None:
        cached = _compute_traffic(pattern, grid, base_config, practical_smem)
        if len(_TRAFFIC_CACHE) >= _TRAFFIC_CACHE_MAX:
            _TRAFFIC_CACHE.clear()
        _TRAFFIC_CACHE[key] = cached
    return cached


def _compute_traffic(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    practical_smem: bool,
) -> TrafficTotals:
    work = count_thread_work(pattern, grid, config)
    flop_mix = count_flops(pattern.expr)
    flops_per_cell = flop_mix.total
    word_bytes = pattern.word_bytes

    access = shared_memory_access_per_thread(pattern)
    reads_per_thread = access.reads_practical if practical_smem else access.reads_expected

    total_flops = work.compute * flops_per_cell
    useful_flops = grid.cells * grid.time_steps * flops_per_cell
    global_bytes = (work.gm_read + work.gm_write) * word_bytes
    shared_bytes = (work.sm_read * reads_per_thread + work.sm_write * access.writes) * word_bytes

    return TrafficTotals(
        total_flops=float(total_flops),
        useful_flops=float(useful_flops),
        global_bytes=float(global_bytes),
        shared_bytes=float(shared_bytes),
        alu_efficiency=alu_efficiency(flop_mix),
        thread_work=work,
    )
