"""Model-accuracy reporting (Section 7.2).

The paper defines model accuracy as the ratio of measured ("Tuned") to
predicted ("Model") performance and reports per-device averages — 49 %
(16–86 %) on the P100 and 67 % (25–89 %) on the V100 — noting that accuracy
improves when the double-precision-division stencils are excluded, and that
since the model predicts shared memory as the bottleneck almost everywhere,
accuracy can be read as an estimate of each device's shared-memory
efficiency.

This module computes the same statistics over any set of stencils using the
autotuner and the timing simulator, so the reproduction's accuracy profile
can be compared against the paper's numbers directly (the Table 5 bench uses
it for its summary line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.ir.stencil import GridSpec
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.stencils.library import BENCHMARKS, get_benchmark, load_pattern
from repro.tuning.autotuner import AutoTuner


@dataclass(frozen=True)
class AccuracyEntry:
    """Model accuracy of one tuned stencil."""

    stencil: str
    dtype: str
    tuned_gflops: float
    model_gflops: float
    uses_division: bool

    @property
    def accuracy(self) -> float:
        if self.model_gflops == 0:
            return 0.0
        return self.tuned_gflops / self.model_gflops


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate accuracy statistics for one device and data type."""

    gpu: str
    dtype: str
    entries: List[AccuracyEntry]

    def _values(self, entries: Sequence[AccuracyEntry]) -> List[float]:
        return [entry.accuracy for entry in entries]

    @property
    def mean_accuracy(self) -> float:
        values = self._values(self.entries)
        return sum(values) / len(values) if values else 0.0

    @property
    def min_accuracy(self) -> float:
        return min(self._values(self.entries), default=0.0)

    @property
    def max_accuracy(self) -> float:
        return max(self._values(self.entries), default=0.0)

    @property
    def mean_accuracy_excluding_division(self) -> float:
        """Section 7.2 also reports accuracy with the division stencils
        (whose double-precision code generation is pathological) excluded."""
        kept = [entry for entry in self.entries if not entry.uses_division]
        values = self._values(kept)
        return sum(values) / len(values) if values else 0.0

    def summary(self) -> str:
        return (
            f"{self.gpu} ({self.dtype}): mean accuracy {self.mean_accuracy:.0%} "
            f"({self.min_accuracy:.0%}–{self.max_accuracy:.0%}), "
            f"{self.mean_accuracy_excluding_division:.0%} excluding division stencils"
        )


def accuracy_report(
    gpu: GpuSpec | str,
    dtype: str = "float",
    stencils: Iterable[str] | None = None,
    grid_2d: GridSpec | None = None,
    grid_3d: GridSpec | None = None,
    top_k: int = 3,
) -> AccuracyReport:
    """Tune every requested stencil and collect its model accuracy.

    Defaults to the full Table 3 suite on the paper's evaluation grids; pass
    smaller grids for quick checks (the tests do).
    """
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    tuner = AutoTuner(spec, top_k=top_k)
    names = list(stencils) if stencils is not None else list(BENCHMARKS)
    entries: List[AccuracyEntry] = []
    for name in names:
        benchmark = get_benchmark(name)
        pattern = load_pattern(name, dtype)
        if benchmark.ndim == 2:
            grid = grid_2d or benchmark.default_grid()
        else:
            grid = grid_3d or benchmark.default_grid()
        result = tuner.tune(pattern, grid)
        entries.append(
            AccuracyEntry(
                stencil=name,
                dtype=dtype,
                tuned_gflops=result.best.measured_gflops,
                model_gflops=result.best.predicted_gflops,
                uses_division=pattern.has_division,
            )
        )
    return AccuracyReport(gpu=spec.name, dtype=dtype, entries=entries)
