"""Thread-work accounting (Section 5, first step of the model).

The model classifies every thread of every sub-plane into the four categories
of the execution model (valid / redundant / boundary / out-of-bound) and from
the classification derives how many thread-operations of each kind one full
stencil run performs:

* ``gm_read`` — global memory reads: every in-grid thread reads one cell per
  streamed sub-plane (time step T = 0 only),
* ``gm_write`` — global memory writes: only valid threads store, only for the
  compute-region sub-planes, at T = bT,
* ``compute`` — cell updates: valid and redundant threads compute every one of
  the bT combined time steps,
* ``sm_write`` / ``sm_read`` — shared-memory traffic: every thread writes its
  cell once per time step (including out-of-bound threads, which write to
  avoid branching); compute threads read their neighbourhoods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel, ThreadCategory
from repro.ir.stencil import GridSpec, StencilPattern


@dataclass(frozen=True)
class ThreadWorkCounts:
    """Thread-operation totals for a complete stencil run."""

    compute: int
    gm_read: int
    gm_write: int
    sm_read: int
    sm_write: int
    launches: int
    threads_per_subplane_valid: int
    threads_per_subplane_redundant: int
    threads_per_subplane_boundary: int
    threads_per_subplane_out_of_bound: int

    @property
    def total_threads_per_subplane(self) -> int:
        return (
            self.threads_per_subplane_valid
            + self.threads_per_subplane_redundant
            + self.threads_per_subplane_boundary
            + self.threads_per_subplane_out_of_bound
        )


def count_thread_work(
    pattern: StencilPattern, grid: GridSpec, config: BlockingConfig
) -> ThreadWorkCounts:
    """Compute the thread-work totals of running ``grid.time_steps`` steps."""
    model = ExecutionModel(pattern, grid, config)
    counts = model.thread_category_counts()
    valid = counts[ThreadCategory.VALID]
    redundant = counts[ThreadCategory.REDUNDANT]
    boundary = counts[ThreadCategory.BOUNDARY]
    out_of_bound = counts[ThreadCategory.OUT_OF_BOUND]

    bT = config.bT
    launches = math.ceil(grid.time_steps / bT) if grid.time_steps else 0
    # Fraction of a full bT-step launch performed on average (the final
    # launch may combine fewer steps).
    step_fraction = grid.time_steps / (launches * bT) if launches else 0.0

    planes_loaded = model.streamed_subplane_loads()
    plane_steps = model.streamed_subplane_compute_steps()
    planes_stored = model.streaming_extent

    in_grid = valid + redundant + boundary
    compute_threads = valid + redundant

    per_launch_compute = compute_threads * plane_steps * step_fraction
    per_launch_gm_read = in_grid * planes_loaded
    per_launch_gm_write = valid * planes_stored
    per_launch_sm_write = (
        (valid + redundant + boundary + out_of_bound) * plane_steps * step_fraction
    )
    per_launch_sm_read = compute_threads * plane_steps * step_fraction

    return ThreadWorkCounts(
        compute=int(per_launch_compute * launches),
        gm_read=int(per_launch_gm_read * launches),
        gm_write=int(per_launch_gm_write * launches),
        sm_read=int(per_launch_sm_read * launches),
        sm_write=int(per_launch_sm_write * launches),
        launches=launches,
        threads_per_subplane_valid=valid,
        threads_per_subplane_redundant=redundant,
        threads_per_subplane_boundary=boundary,
        threads_per_subplane_out_of_bound=out_of_bound,
    )
