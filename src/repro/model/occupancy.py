"""SM occupancy and utilisation efficiency (Section 5, last step).

Two related quantities are computed here:

* the paper's ``effSM`` — a wave-quantisation factor computed exactly as the
  paper defines it (``floor(n'tb / (2048/nthr)) / ceil(n'tb / (2048/nthr))``),
  used by the analytic model, and
* a fuller occupancy calculation (threads, shared memory and registers per
  SM, wave count across all SMs) used by the timing simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel
from repro.core.shared_memory import an5d_shared_memory_plan
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec
from repro.model.registers import effective_registers


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one kernel launch on one device."""

    blocks_per_sm: int
    limiting_factor: str
    active_threads_per_sm: int
    occupancy: float
    waves: float
    wave_efficiency: float

    @property
    def is_fully_occupied(self) -> bool:
        return self.occupancy >= 0.99


def paper_sm_efficiency(total_blocks: int, nthr: int, gpu: GpuSpec) -> float:
    """``effSM`` exactly as defined in Section 5.

    The quantisation is computed against the 2048-threads-per-SM limit; when
    fewer than one full group of blocks exists the ratio degenerates to the
    filled fraction.
    """
    blocks_per_group = max(gpu.max_threads_per_sm // nthr, 1)
    full = math.floor(total_blocks / blocks_per_group)
    partial = math.ceil(total_blocks / blocks_per_group)
    if partial == 0:
        return 1.0
    if full == 0:
        return total_blocks / blocks_per_group
    return full / partial


#: Memo for occupancy_for, keyed by the pattern's identity token plus the
#: full configuration (occupancy genuinely depends on the register limit).
_OCCUPANCY_CACHE: dict = {}
_OCCUPANCY_CACHE_MAX = 1 << 16


def clear_occupancy_cache() -> None:
    _OCCUPANCY_CACHE.clear()


def occupancy_for(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    gpu: GpuSpec,
    framework: str = "an5d",
) -> OccupancyResult:
    """Detailed occupancy used by the timing simulator (memoized)."""
    key = (pattern.cache_key, grid, config, gpu, framework)
    cached = _OCCUPANCY_CACHE.get(key)
    if cached is None:
        cached = _occupancy_for(pattern, grid, config, gpu, framework)
        if len(_OCCUPANCY_CACHE) >= _OCCUPANCY_CACHE_MAX:
            _OCCUPANCY_CACHE.clear()
        _OCCUPANCY_CACHE[key] = cached
    return cached


def _occupancy_for(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    gpu: GpuSpec,
    framework: str = "an5d",
) -> OccupancyResult:
    model = ExecutionModel(pattern, grid, config)
    nthr = config.nthr
    smem = an5d_shared_memory_plan(pattern, config)
    registers = effective_registers(pattern, config, framework)

    limits = {
        "threads": gpu.max_threads_per_sm // nthr,
        "blocks": gpu.max_blocks_per_sm,
        "shared_memory": (
            gpu.shared_memory_per_sm_bytes // smem.bytes_per_block
            if smem.bytes_per_block
            else gpu.max_blocks_per_sm
        ),
        "registers": (
            gpu.registers_per_sm // registers.per_block
            if registers.per_block
            else gpu.max_blocks_per_sm
        ),
    }
    limiting_factor = min(limits, key=limits.get)
    blocks_per_sm = max(min(limits.values()), 0)

    if blocks_per_sm == 0:
        return OccupancyResult(0, limiting_factor, 0, 0.0, float("inf"), 0.0)

    active_threads = blocks_per_sm * nthr
    occupancy = min(active_threads / gpu.max_threads_per_sm, 1.0)
    total_blocks = model.total_thread_blocks
    concurrent = blocks_per_sm * gpu.sm_count
    waves = total_blocks / concurrent
    wave_efficiency = waves / math.ceil(waves) if waves > 0 else 1.0
    return OccupancyResult(
        blocks_per_sm=blocks_per_sm,
        limiting_factor=limiting_factor,
        active_threads_per_sm=active_threads,
        occupancy=occupancy,
        waves=waves,
        wave_efficiency=wave_efficiency,
    )
