"""GPU device specifications (Table 4).

Peak compute and the *measured* memory bandwidths are taken verbatim from the
paper (the authors measured them with BabelStream and gpumembench); the
remaining architectural constants (shared memory per SM, register file,
thread limits) are the published specifications of the Pascal/Volta Tesla
parts.  ``shared_efficiency`` is the empirical knob discussed in Section 7.2:
the fraction of the measured shared-memory bandwidth the N.5D kernels
actually sustain — roughly 0.67 on V100 and less than half that on P100 —
used only by the timing simulator, never by the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict


@dataclass(frozen=True)
class GpuSpec:
    """Specification of one GPU model."""

    name: str
    peak_gflops_float: float
    peak_gflops_double: float
    peak_membw_gbs: float
    measured_membw_float_gbs: float
    measured_membw_double_gbs: float
    measured_smembw_float_gbs: float
    measured_smembw_double_gbs: float
    sm_count: int
    shared_memory_per_sm_bytes: int
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    max_threads_per_sm: int = 2048
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 32
    shared_efficiency_float: float = 1.0
    shared_efficiency_double: float = 1.0
    fp64_division_penalty: float = 1.0

    # -- dtype-aware accessors ------------------------------------------------
    def peak_gflops(self, dtype: str) -> float:
        return self.peak_gflops_float if dtype == "float" else self.peak_gflops_double

    def measured_membw(self, dtype: str) -> float:
        return (
            self.measured_membw_float_gbs
            if dtype == "float"
            else self.measured_membw_double_gbs
        )

    def measured_smembw(self, dtype: str) -> float:
        return (
            self.measured_smembw_float_gbs
            if dtype == "float"
            else self.measured_smembw_double_gbs
        )

    def shared_efficiency(self, dtype: str) -> float:
        return (
            self.shared_efficiency_float if dtype == "float" else self.shared_efficiency_double
        )


TESLA_V100 = GpuSpec(
    name="Tesla V100 SXM2",
    peak_gflops_float=15700.0,
    peak_gflops_double=7850.0,
    peak_membw_gbs=900.0,
    measured_membw_float_gbs=791.0,
    measured_membw_double_gbs=805.0,
    measured_smembw_float_gbs=10650.0,
    measured_smembw_double_gbs=12750.0,
    sm_count=80,
    shared_memory_per_sm_bytes=96 * 1024,
    # Section 7.2: average model accuracy 67 % on V100 with shared memory the
    # predicted bottleneck in nearly every case.
    shared_efficiency_float=0.78,
    shared_efficiency_double=0.70,
    # Section 7.1: NVCC emits inefficient code for double-precision division.
    fp64_division_penalty=5.0,
)

TESLA_P100 = GpuSpec(
    name="Tesla P100 SXM2",
    peak_gflops_float=10600.0,
    peak_gflops_double=5300.0,
    peak_membw_gbs=720.0,
    measured_membw_float_gbs=535.0,
    measured_membw_double_gbs=540.0,
    measured_smembw_float_gbs=9700.0,
    measured_smembw_double_gbs=10150.0,
    sm_count=56,
    shared_memory_per_sm_bytes=64 * 1024,
    # Section 7.2: P100 sustains less than half the shared-memory bandwidth of
    # V100 for the same kernels (average model accuracy 49 %).
    shared_efficiency_float=0.40,
    shared_efficiency_double=0.38,
    fp64_division_penalty=5.5,
)

GPUS: Dict[str, GpuSpec] = {
    "V100": TESLA_V100,
    "P100": TESLA_P100,
}

_ALIASES = {
    "v100": "V100",
    "tesla v100": "V100",
    "tesla v100 sxm2": "V100",
    "volta": "V100",
    "p100": "P100",
    "tesla p100": "P100",
    "tesla p100 sxm2": "P100",
    "pascal": "P100",
}


@lru_cache(maxsize=None)
def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by name (case-insensitive, common aliases accepted)."""
    key = _ALIASES.get(name.strip().lower())
    if key is None and name in GPUS:
        key = name
    if key is None:
        raise KeyError(f"unknown GPU {name!r}; available: {', '.join(GPUS)}")
    return GPUS[key]
