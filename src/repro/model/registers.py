"""Register-pressure estimation (Sections 6.3 and 7.1, Fig. 7).

The paper reports an empirical lower bound on registers per thread for AN5D
kernels — ``bT*(2*rad + 1) + bT + 20`` for single precision and
``2*bT*(2*rad + 1) + bT + 30`` for double precision — and uses it to prune
configurations that would exceed the 255-registers-per-thread or
64K-registers-per-SM hardware limits.  STENCILGEN's shifting register
allocation needs additional live values for the shift chains, which is what
makes it spill for second-order stencils under a 32-register cap (Fig. 7)
while AN5D does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BlockingConfig
from repro.ir.stencil import StencilPattern
from repro.model.gpu_specs import GpuSpec

#: Fixed per-thread overhead (indices, predicates, pointers) observed by the
#: authors for single and double precision kernels.
_FLOAT_OVERHEAD = 20
_DOUBLE_OVERHEAD = 30


@dataclass(frozen=True)
class RegisterEstimate:
    """Estimated register usage of one generated kernel."""

    per_thread: int
    per_block: int
    spilled: bool
    limit: int | None


def estimate_registers(pattern: StencilPattern, config: BlockingConfig) -> int:
    """AN5D's minimum registers per thread (the paper's pruning formula)."""
    column = 2 * pattern.radius + 1
    if pattern.dtype == "float":
        return config.bT * column + config.bT + _FLOAT_OVERHEAD
    return 2 * config.bT * column + config.bT + _DOUBLE_OVERHEAD


def stencilgen_registers(pattern: StencilPattern, config: BlockingConfig) -> int:
    """Register usage of STENCILGEN's shifting allocation (baseline model).

    Shifting keeps the same sub-plane registers live but additionally needs
    one temporary per retained value to stage the shift, plus per-time-step
    shared-memory indices for its multi-buffered layout.  The net effect
    matches Fig. 7: a handful more registers than AN5D on average, enough to
    spill second-order stencils under a 32-register cap.
    """
    column = 2 * pattern.radius + 1
    shift_temps = 2 * pattern.radius
    buffer_indices = config.bT
    if pattern.dtype == "float":
        return config.bT * column + config.bT + _FLOAT_OVERHEAD + shift_temps + buffer_indices - 2
    return (
        2 * config.bT * column + config.bT + _DOUBLE_OVERHEAD + 2 * shift_temps + buffer_indices - 2
    )


def minimum_live_registers(
    pattern: StencilPattern, config: BlockingConfig, framework: str = "an5d"
) -> int:
    """Registers that must be live simultaneously — the spill threshold.

    A ``-maxrregcount`` cap below the *preferred* allocation merely forces the
    compiler to reschedule; spilling only happens once the cap drops below the
    simultaneously-live values.  AN5D's fixed allocation keeps one column of
    the current time step plus one in-flight value per combined step live;
    STENCILGEN's shifting chains hold two copies of the column during the
    shift plus per-buffer indices, which is why it spills for second-order
    stencils under a 32-register cap while AN5D does not (Fig. 7).
    """
    column = 2 * pattern.radius + 1
    width = 2 if pattern.dtype == "double" else 1
    if framework == "an5d":
        return width * column + config.bT + 16
    return 2 * width * column + 2 * config.bT + 16


def effective_registers(
    pattern: StencilPattern,
    config: BlockingConfig,
    framework: str = "an5d",
) -> RegisterEstimate:
    """Registers per thread after applying an optional ``-maxrregcount`` cap."""
    demand = (
        estimate_registers(pattern, config)
        if framework == "an5d"
        else stencilgen_registers(pattern, config)
    )
    limit = config.register_limit
    if limit is None:
        per_thread = demand
        spilled = False
    else:
        per_thread = min(demand, limit)
        spilled = minimum_live_registers(pattern, config, framework) > limit
    return RegisterEstimate(
        per_thread=per_thread,
        per_block=per_thread * config.nthr,
        spilled=spilled,
        limit=limit,
    )


def register_pressure_ok(
    pattern: StencilPattern, config: BlockingConfig, gpu: GpuSpec
) -> bool:
    """Section 6.3 pruning rule: reject configurations whose register demand
    exceeds the per-thread or per-SM hardware limits."""
    demand = estimate_registers(pattern, config)
    if demand > gpu.max_registers_per_thread:
        return False
    if demand * config.nthr > gpu.registers_per_sm:
        return False
    return True


def spill_penalty(estimate: RegisterEstimate, demand: int) -> float:
    """Multiplicative slowdown applied by the timing simulator on spills.

    Each register forced to local memory costs extra global traffic; the
    penalty grows with the amount spilled but saturates (spilled values still
    hit L2/L1 most of the time).
    """
    if not estimate.spilled or estimate.limit is None:
        return 1.0
    overflow = demand - estimate.limit
    return 1.0 + min(0.08 * overflow, 0.9)
