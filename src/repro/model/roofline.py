"""The roofline performance prediction (Section 5, final step).

Three candidate bottlenecks are considered — compute, global memory and
shared memory — and the predicted runtime is the slowest of the three divided
by the SM utilisation efficiency:

.. math::

    time_{model} = \\frac{\\max(time_{comp}, time_{sm}, time_{gm})}{eff_{SM}}

Registers are deliberately ignored (the model assumes no spilling), which is
one of the two reasons the model over-predicts (the other being the effective
shared-memory bandwidth of real kernels, see Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec
from repro.model.occupancy import paper_sm_efficiency
from repro.model.traffic import TrafficTotals, compute_traffic

_GIGA = 1.0e9


@dataclass(frozen=True)
class PerformancePrediction:
    """Model output for one (stencil, grid, configuration, GPU) combination."""

    time_compute_s: float
    time_global_s: float
    time_shared_s: float
    sm_efficiency: float
    time_s: float
    gflops: float
    gcells: float
    bottleneck: str
    traffic: TrafficTotals

    def as_row(self) -> dict[str, float | str]:
        return {
            "time_s": self.time_s,
            "gflops": self.gflops,
            "gcells": self.gcells,
            "bottleneck": self.bottleneck,
            "sm_efficiency": self.sm_efficiency,
        }


def predict_performance(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    gpu: GpuSpec,
) -> PerformancePrediction:
    """Predict runtime and throughput of one AN5D kernel configuration."""
    traffic = compute_traffic(pattern, grid, config)
    model = ExecutionModel(pattern, grid, config)

    peak_comp = gpu.peak_gflops(pattern.dtype) * _GIGA * traffic.alu_efficiency
    peak_gm = gpu.measured_membw(pattern.dtype) * _GIGA
    peak_sm = gpu.measured_smembw(pattern.dtype) * _GIGA

    time_compute = traffic.total_flops / peak_comp
    time_global = traffic.global_bytes / peak_gm
    time_shared = traffic.shared_bytes / peak_sm

    eff_sm = paper_sm_efficiency(model.total_thread_blocks, config.nthr, gpu)
    eff_sm = max(eff_sm, 1.0e-6)

    times = {
        "compute": time_compute,
        "global_memory": time_global,
        "shared_memory": time_shared,
    }
    bottleneck = max(times, key=times.get)
    time_total = times[bottleneck] / eff_sm

    gflops = traffic.useful_flops / time_total / _GIGA if time_total > 0 else 0.0
    cells = grid.cells * grid.time_steps
    gcells = cells / time_total / _GIGA if time_total > 0 else 0.0

    return PerformancePrediction(
        time_compute_s=time_compute,
        time_global_s=time_global,
        time_shared_s=time_shared,
        sm_efficiency=eff_sm,
        time_s=time_total,
        gflops=gflops,
        gcells=gcells,
        bottleneck=bottleneck,
        traffic=traffic,
    )
