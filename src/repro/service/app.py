"""The campaign service application and its stdlib HTTP server.

:class:`CampaignApp` owns the shared :class:`~repro.campaign.store.ResultStore`
(WAL mode, one connection per thread) and the async
:class:`~repro.service.worker.CampaignWorker`; its handler methods implement
the endpoints listed in :mod:`repro.service.routes` and are plain functions
over :class:`~repro.service.routes.Request`, so the whole service can be
exercised without a socket.

:class:`CampaignServer` wraps the app in a ``ThreadingHTTPServer``: request
threads only ever read the store and enqueue work; the worker loop owns all
campaign execution.  Bind to port ``0`` for an ephemeral port (tests, CI).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qsl, urlsplit

import repro
from repro.campaign.report import REPORTS
from repro.campaign.store import ResultStore
from repro.service.routes import Request, Response, dispatch, route_table
from repro.service.worker import CampaignWorker, WorkerSettings
from repro.service.wire import (
    JSONL_TYPE,
    WireError,
    decode_campaign_spec,
    etag,
    render_table,
    spec_summary,
)


class CampaignApp:
    """Endpoint handlers over one store and one worker."""

    def __init__(
        self,
        store: Union[str, Path, ResultStore] = "campaign.sqlite",
        settings: Optional[WorkerSettings] = None,
    ) -> None:
        self._owns_store = not isinstance(store, ResultStore)
        self.store = ResultStore(store) if self._owns_store else store
        self.worker = CampaignWorker(self.store, settings)

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        self.worker.start()

    def close(self) -> None:
        stopped = self.worker.stop()
        # If the worker could not drain in time, a campaign is still running
        # on its executor thread; leaking the store beats yanking SQLite
        # connections out from under an in-flight commit.
        if self._owns_store and stopped:
            self.store.close()

    def handle(self, request: Request) -> Response:
        return dispatch(self, request)

    # -- endpoint handlers -----------------------------------------------------
    def health(self, request: Request) -> Response:
        return Response.json(
            {
                "status": "ok",
                "version": repro.__version__,
                "store": self.store.path,
                "results": self.store.count(),
                "campaigns": len(self.worker.records()),
                "routes": route_table(),
            }
        )

    def submit_campaign(self, request: Request) -> Response:
        spec = decode_campaign_spec(request.body)
        record = self.worker.submit(spec)
        payload = {
            "id": record.id,
            "state": record.state,
            "runs": record.runs,
            "jobs": spec.size(),
            "url": f"/campaigns/{record.id}",
            **spec_summary(spec),
        }
        return Response.json(payload, status=202)

    def list_campaigns(self, request: Request) -> Response:
        return Response.json(
            {"campaigns": [record.summary() for record in self.worker.records()]}
        )

    def campaign_status(self, request: Request, cid: str) -> Response:
        status = self.worker.status(cid)
        if status is None:
            raise WireError(f"unknown campaign {cid!r}", status=404)
        return Response.json(status)

    def campaign_report(self, request: Request, cid: str) -> Response:
        keys = self.worker.job_keys(cid)
        if keys is None:
            raise WireError(f"unknown campaign {cid!r}", status=404)
        kind = request.param("kind", "table5")
        builder = REPORTS.get(kind)
        if builder is None:
            raise WireError(
                f"unknown report kind {kind!r}; available: {', '.join(REPORTS)}"
            )
        options = {}
        if kind == "leaderboard":
            options = {
                "gpu": request.query.get("gpu"),
                "dtype": request.query.get("dtype"),
                "top": int(request.param("top", "10")),
            }
        elif kind == "table5":
            options = {"value": request.param("value", "tuned_gflops")}
        # Scoped to the addressed campaign's job keys: sharing a store with
        # other campaigns never leaks their rows into this report.  (For a
        # store holding just this campaign that is exactly what
        # `an5d campaign report --store ...` renders.)
        table = builder(self.store, keys=keys, **options)
        body, content_type = render_table(table, request.param("format", "json"))
        return Response(body=body, content_type=content_type)

    def campaign_export(self, request: Request, cid: str) -> Response:
        keys = self.worker.job_keys(cid)
        if keys is None:
            raise WireError(f"unknown campaign {cid!r}", status=404)
        ok_only = request.param("status", "ok") == "ok"
        key_set = frozenset(keys)
        records = [
            record
            for record in self.store.export_records(ok_only=ok_only)
            if record["key"] in key_set
        ]
        lines = [self.store.record_line(record) + "\n" for record in records]
        digest = etag("".join(lines).encode("utf-8"))
        return Response(
            content_type=JSONL_TYPE,
            headers={"ETag": digest, "X-Result-Count": str(len(records))},
            stream=(line.encode("utf-8") for line in lines),
        )


class _CampaignRequestHandler(BaseHTTPRequestHandler):
    """Bridges http.server onto :meth:`CampaignApp.handle`."""

    app: CampaignApp  # bound by CampaignServer via a subclass attribute
    protocol_version = "HTTP/1.1"
    quiet = True

    # -- plumbing --------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover — verbose serving only
            super().log_message(format, *args)

    def _read_request(self) -> Request:
        parts = urlsplit(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        return Request(
            method=self.command,
            path=parts.path,
            query=dict(parse_qsl(parts.query)),
            body=body,
        )

    def _send(self, response: Response) -> None:
        if response.stream is not None:
            self._send_chunked(response)
            return
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _send_chunked(self, response: Response) -> None:
        """Stream an iterable body with chunked transfer encoding."""
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        for chunk in response.stream:
            if not chunk:
                continue
            self.wfile.write(f"{len(chunk):x}\r\n".encode("ascii"))
            self.wfile.write(chunk)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def _handle(self) -> None:
        try:
            response = self.app.handle(self._read_request())
        except Exception as error:  # noqa: BLE001 — the server must not die
            response = Response.error(
                f"internal error: {type(error).__name__}: {error}", status=500
            )
        try:
            self._send(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response

    do_GET = _handle
    do_POST = _handle
    do_DELETE = _handle
    do_PUT = _handle


class CampaignServer:
    """A long-running campaign service on one store.

    >>> server = CampaignServer(port=0, store="campaign.sqlite")
    >>> server.start()          # background serving (tests, embedding)
    >>> server.url
    'http://127.0.0.1:54321'
    >>> server.stop()

    ``run()`` serves on the calling thread until interrupted (the CLI path).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        store: Union[str, Path, ResultStore] = "campaign.sqlite",
        settings: Optional[WorkerSettings] = None,
        quiet: bool = True,
    ) -> None:
        self.app = CampaignApp(store, settings)
        handler = type(
            "BoundCampaignRequestHandler",
            (_CampaignRequestHandler,),
            {"app": self.app, "quiet": quiet},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.host, self.port = self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Serve in a background thread (returns once accepting requests)."""
        self.app.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="campaign-http",
            daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        self._thread.start()

    def run(self) -> None:
        """Serve on the calling thread until KeyboardInterrupt."""
        self.app.start()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover — interactive only
            pass

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "CampaignServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
