"""The campaign service application and its stdlib HTTP server.

:class:`CampaignApp` owns the shared :class:`~repro.campaign.store.ResultStore`
(WAL mode, one connection per thread) and the async
:class:`~repro.service.worker.CampaignWorker`; its handler methods implement
the endpoints listed in :mod:`repro.service.routes` and are plain functions
over :class:`~repro.service.routes.Request`, so the whole service can be
exercised without a socket.

With a :class:`~repro.cluster.registry.ClusterConfig` the app becomes a
cluster member: it registers itself in the store's instance registry, runs a
heartbeat thread, accepts coordinator shard assignments on
``POST /campaigns/assigned``, and — in the coordinator role — accepts whole
campaigns on ``POST /cluster/campaigns``, fans shards out to live instances
and supervises re-assignment on a monitor thread.

:class:`CampaignServer` wraps the app in a ``ThreadingHTTPServer``: request
threads only ever read the store and enqueue work; the worker loop owns all
campaign execution.  Bind to port ``0`` for an ephemeral port (tests, CI).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union
from urllib.parse import parse_qsl, urlsplit

import repro
from repro.campaign.report import REPORTS
from repro.campaign.store import ResultStore
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.registry import ClusterConfig, InstanceRegistry
from repro.cluster.remote import RemoteStore
from repro.obs import (
    EVENTS,
    SPANS,
    MetricsRegistry,
    SingleFlightCache,
    profile_for,
    record_suppressed,
    span,
)
from repro.obs.events import EventSubscription
from repro.obs.profile import DEFAULT_HZ as PROFILE_HZ
from repro.obs.top import code_version_report, telemetry_deltas
from repro.service.hotcache import HotModelCache
from repro.service.routes import Request, Response, dispatch, route_table
from repro.service.worker import CampaignWorker, QueueFull, WorkerSettings
from repro.service.wire import (
    JSONL_TYPE,
    TEXT_TYPE,
    WireError,
    decode_assignment,
    decode_instance_id,
    decode_member,
    decode_predict_request,
    decode_result_records,
    decode_status_query,
    decode_submit,
    decode_tune_request,
    etag,
    render_table,
    spec_summary,
)

#: Prometheus text exposition content type served by ``GET /metrics``.
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Event kinds a campaign stream delivers, and the ones that end it.
_CAMPAIGN_STREAM_EVENTS = frozenset(
    {"campaign_run_started", "job_finished", "campaign_run_finished", "campaign_failed"}
)
_CAMPAIGN_TERMINAL_EVENTS = frozenset({"campaign_run_finished", "campaign_failed"})


def _event_line(record: Dict[str, object]) -> bytes:
    """One stream record as a canonical JSONL line."""
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


class CampaignApp:
    """Endpoint handlers over one store, one worker and (optionally) a cluster."""

    def __init__(
        self,
        store: Union[str, Path, ResultStore, RemoteStore] = "campaign.sqlite",
        settings: Optional[WorkerSettings] = None,
        cluster: Optional[ClusterConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry_interval: Optional[float] = None,
        telemetry_keep: int = 1000,
    ) -> None:
        # Each app gets its *own* registry by default (injectable, like the
        # cluster layer's clocks): in-process multi-instance topologies then
        # serve genuinely per-instance /metrics, and tests assert exact counts.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Most recent trace id seen by any span-opening handler; attached to
        # the request-latency histogram as an OpenMetrics exemplar so a
        # scrape links straight into ``GET /trace/{id}``.
        self.last_trace_id: Optional[str] = None
        # Telemetry history: with an interval, a background thread persists
        # ``metrics.snapshot()`` into the store's (timestamped, non-exported)
        # telemetry table every ``telemetry_interval`` seconds, pruned to the
        # newest ``telemetry_keep`` rows.
        self.telemetry_interval = telemetry_interval
        self.telemetry_keep = int(telemetry_keep)
        self._telemetry_stop = threading.Event()
        self._telemetry_thread: Optional[threading.Thread] = None
        self._owns_store = not isinstance(store, (ResultStore, RemoteStore))
        if self._owns_store:
            self.store = ResultStore(store, metrics=self.metrics)
        else:
            self.store = store
            if isinstance(store, RemoteStore):
                # A wire store serves exactly one member; its journal gauge
                # and flush histograms belong on this instance's /metrics.
                store.set_metrics(self.metrics)
        self.worker = CampaignWorker(self.store, settings, metrics=self.metrics)
        # The interactive tier: the hot model cache behind /predict and
        # /tune, plus read-through caches over the store's report, export
        # and cluster-status reads.  The read-through keys embed the store's
        # write generation, so invalidation is automatic (and scoped: only
        # *result* writes evict reports/exports, heartbeat churn does not).
        # Every cache honours ``?cache=off``; generations are per-process,
        # so a second process writing the same SQLite file must be polled
        # with ``cache=off`` (documented on ResultStore.generation).
        self.hot = HotModelCache(metrics=self.metrics)
        self._report_cache = SingleFlightCache("report", capacity=128, metrics=self.metrics)
        self._export_cache = SingleFlightCache("export", capacity=64, metrics=self.metrics)
        self._status_cache = SingleFlightCache("cluster_status", capacity=8, metrics=self.metrics)
        self.cluster = cluster
        self.registry = None  # InstanceRegistry | RemoteRegistry
        self.coordinator: Optional[ClusterCoordinator] = None
        self._endpoint: Optional[tuple] = None  # (host, port) once bound
        self._cluster_stop = threading.Event()
        self._cluster_threads: List[threading.Thread] = []
        if isinstance(self.store, RemoteStore):
            # Wire-native member: no filesystem access to the store, so it
            # can neither coordinate (no submissions table) nor answer the
            # store-native routes — it executes shards and commits over HTTP.
            if cluster is None:
                raise ValueError(
                    "a wire-native store needs a ClusterConfig (the member "
                    "must register with its coordinator)"
                )
            if cluster.coordinates:
                raise ValueError(
                    "a wire-native member cannot coordinate: the coordinator "
                    "role needs direct store access (leases, submission queue)"
                )
            # Imported lazily only to keep module import order obvious; the
            # registry speaks to whichever store-native peer answers.
            from repro.cluster.remote import RemoteRegistry

            self.registry = RemoteRegistry(self.store)
        elif cluster is not None:
            self.registry = InstanceRegistry(
                self.store, liveness_timeout=cluster.liveness_timeout
            )
            self.coordinator = ClusterCoordinator(
                self.store,
                self.registry,
                instance_id=cluster.instance_id,
                lease_ttl=cluster.liveness_timeout,
                metrics=self.metrics,
            )

    @property
    def store_native(self) -> bool:
        """Whether this instance holds the SQLite store itself."""
        return isinstance(self.store, ResultStore)

    # -- lifecycle -------------------------------------------------------------
    def set_endpoint(self, host: str, port: int) -> None:
        """Record the HTTP address this app is reachable at (pre-``start``)."""
        self._endpoint = (host, int(port))

    def start(self) -> None:
        self.worker.start()
        if self.telemetry_interval and self.store_native:
            self._telemetry_stop.clear()
            self._telemetry_thread = threading.Thread(
                target=self._telemetry_loop, name="telemetry-snapshots", daemon=True
            )
            self._telemetry_thread.start()
        if self.cluster is None:
            return
        if self._endpoint is None:
            raise RuntimeError("cluster mode needs set_endpoint() before start()")
        host, port = self._endpoint
        self.registry.register(
            self.cluster.instance_id,
            host,
            port,
            role=self.cluster.role,
            capabilities={
                "workers": self.worker.settings.workers,
                "concurrency": self.worker.settings.concurrency,
                # Advertised so peers know who can receive wire commits:
                # only store-native members answer /results/commit.
                "store": "native" if self.store_native else "wire",
            },
        )
        self._cluster_stop.clear()
        self._cluster_threads = [
            threading.Thread(
                target=self._heartbeat_loop, name="cluster-heartbeat", daemon=True
            )
        ]
        if self.cluster.coordinates:
            self._cluster_threads.append(
                threading.Thread(
                    target=self._monitor_loop, name="cluster-monitor", daemon=True
                )
            )
        for thread in self._cluster_threads:
            thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._cluster_stop.wait(self.cluster.heartbeat_interval):
            try:
                self.registry.heartbeat(self.cluster.instance_id)
            except Exception as error:  # noqa: BLE001 — a missed beat is not fatal
                record_suppressed(
                    "app.heartbeat_loop", error, metrics=self.metrics,
                    instance=self.cluster.instance_id,
                )

    def _monitor_loop(self) -> None:
        while not self._cluster_stop.wait(self.cluster.heartbeat_interval):
            try:
                self.coordinator.tick()
            except Exception as error:  # noqa: BLE001 — supervision must keep running
                record_suppressed(
                    "app.monitor_loop", error, metrics=self.metrics,
                    instance=self.cluster.instance_id,
                )

    def _instance_label(self) -> str:
        """How this instance identifies itself in telemetry rows."""
        if self.cluster is not None:
            return self.cluster.instance_id
        if self._endpoint is not None:
            host, port = self._endpoint
            return f"{host}:{port}"
        return "solo"

    def _telemetry_loop(self) -> None:
        while not self._telemetry_stop.wait(self.telemetry_interval):
            self.record_telemetry_snapshot()

    def record_telemetry_snapshot(self) -> Optional[int]:
        """Persist one metrics snapshot into the store's telemetry table.

        Deliberately *outside* the content-addressed results namespace (its
        rows are explicitly timestamped), so exports stay byte-identical no
        matter how much history accumulates; the write bumps only the
        ``telemetry`` generation, leaving report/export caches warm.
        """
        if not self.store_native:
            return None
        try:
            row_id = self.store.record_telemetry(
                self._instance_label(),
                self.metrics.snapshot(),
                code_version=repro.__version__,
            )
            if self.telemetry_keep > 0:
                self.store.prune_telemetry(self.telemetry_keep)
            return row_id
        except Exception as error:  # noqa: BLE001 — history must not kill serving
            record_suppressed("app.telemetry_snapshot", error, metrics=self.metrics)
            return None

    def _stop_telemetry(self) -> None:
        self._telemetry_stop.set()
        if self._telemetry_thread is not None:
            self._telemetry_thread.join(timeout=5.0)
            self._telemetry_thread = None

    def _stop_cluster(self, deregister: bool) -> None:
        self._cluster_stop.set()
        for thread in self._cluster_threads:
            thread.join(timeout=5.0)
        self._cluster_threads = []
        if deregister and self.cluster is not None and self.registry is not None:
            if self.coordinator is not None and self.cluster.coordinates:
                # Graceful exit hands the lease back so a standby takes over
                # immediately instead of waiting out the TTL.
                try:
                    self.coordinator.release_lease()
                except Exception as error:  # noqa: BLE001 — the store may already be gone
                    record_suppressed(
                        "app.release_lease", error, metrics=self.metrics,
                        instance=self.cluster.instance_id,
                    )
            try:
                self.registry.deregister(self.cluster.instance_id)
            except Exception as error:  # noqa: BLE001 — the store may already be gone
                record_suppressed(
                    "app.deregister", error, metrics=self.metrics,
                    instance=self.cluster.instance_id,
                )

    def close(self) -> None:
        # A graceful shutdown leaves the registry (the cluster's
        # source of truth) without this instance, so coordinators stop
        # planning work onto it immediately instead of after a heartbeat
        # lapse.
        self._stop_cluster(deregister=True)
        stopped = self.worker.stop()
        if self._telemetry_thread is not None:
            # One final snapshot so short-lived serves still leave history.
            self._stop_telemetry()
            if stopped:
                self.record_telemetry_snapshot()
        if isinstance(self.store, RemoteStore) and stopped:
            # Final journal drain (best effort) + flush-thread shutdown.
            self.store.close()
        # If the worker could not drain in time, a campaign is still running
        # on its executor thread; leaking the store beats yanking SQLite
        # connections out from under an in-flight commit.
        if self._owns_store and stopped:
            self.store.close()

    def kill(self) -> None:
        """Simulate a crash: no drain, no deregistration, heartbeats stop.

        The instance's registry row stays behind with an aging heartbeat —
        exactly what a SIGKILL leaves — so coordinator re-assignment can be
        exercised in-process.
        """
        self._stop_telemetry()
        self._stop_cluster(deregister=False)
        self.worker.kill()

    def handle(self, request: Request) -> Response:
        return dispatch(self, request)

    # -- endpoint handlers -----------------------------------------------------
    def health(self, request: Request) -> Response:
        payload = {
            "status": "ok",
            "version": repro.__version__,
            "store": self.store.path,
            "campaigns": len(self.worker.records()),
            "routes": route_table(),
        }
        if self.store_native:
            payload["results"] = self.store.count()
        else:
            # A wire member's local truth is its journal: how many results
            # it has finished but not yet gotten acknowledged by a peer.
            payload["journal_pending"] = self.store.pending_count()
        if self.cluster is not None:
            payload["cluster"] = {
                "instance_id": self.cluster.instance_id,
                "role": self.cluster.role,
                "store": "native" if self.store_native else "wire",
            }
        return Response.json(payload)

    def metrics_endpoint(self, request: Request) -> Response:
        """This instance's registry in Prometheus text exposition format."""
        return Response(
            body=self.metrics.render().encode("utf-8"), content_type=METRICS_TYPE
        )

    def trace_endpoint(self, request: Request, tid: str) -> Response:
        """The span tree this process recorded for one trace id."""
        tree = SPANS.tree(tid)
        if tree is None:
            raise WireError(f"unknown trace {tid!r}", status=404)
        return Response.json(tree)

    # -- live observability plane -----------------------------------------------
    def profile_endpoint(self, request: Request) -> Response:
        """Sample this process for N seconds; folded-stack (collapse) text.

        Blocks one handler thread for the window — fine under the threading
        server — and shares the refcounted process profiler, so concurrent
        windows and armed hot paths compose.
        """
        seconds = float(request.param("seconds", "2"))
        if not 0.0 < seconds <= 60.0:
            raise WireError("seconds must be in (0, 60]")
        hz = float(request.param("hz", str(PROFILE_HZ)))
        folded, samples = profile_for(seconds, hz=hz, metrics=self.metrics)
        body = folded.encode("utf-8")
        if body and not body.endswith(b"\n"):
            body += b"\n"
        return Response(
            body=body,
            content_type=TEXT_TYPE,
            headers={"X-Profile-Samples": str(samples)},
        )

    def _stream_response(
        self,
        subscription: EventSubscription,
        timeout_s: float,
        max_events: int = 0,
        opening: Optional[Dict[str, object]] = None,
        terminal: Optional[Callable[[Dict[str, object]], bool]] = None,
    ) -> Response:
        """Chunked JSONL push stream over one event subscription.

        The subscriber's queue is bounded and fed with ``put_nowait`` on the
        emitting thread, so a stalled (or dead) reader can never wedge a
        worker: overflow is dropped and counted on this instance's registry
        as ``stream_dropped_total{reason="slow_subscriber"}``.  Idle seconds
        emit a blank keep-alive line, which doubles as prompt dead-client
        detection; the subscription is detached however the stream ends.
        """
        drops = self.metrics.counter(
            "stream_dropped_total",
            "Events dropped because a stream subscriber was too slow",
            labels=("reason",),
        )

        def generate() -> Iterator[bytes]:
            sent = 0
            dropped_seen = 0
            deadline = time.monotonic() + timeout_s
            try:
                if opening is not None:
                    yield _event_line(opening)
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return
                    record = subscription.get(timeout=min(1.0, remaining))
                    if subscription.dropped > dropped_seen:
                        drops.inc(
                            subscription.dropped - dropped_seen,
                            reason="slow_subscriber",
                        )
                        dropped_seen = subscription.dropped
                    if record is None:
                        if subscription.closed:
                            return
                        yield b"\n"
                        continue
                    yield _event_line(record)
                    sent += 1
                    if terminal is not None and terminal(record):
                        return
                    if max_events and sent >= max_events:
                        return
            finally:
                subscription.close()

        return Response(content_type=JSONL_TYPE, stream=generate())

    def events_stream(self, request: Request) -> Response:
        """Long-lived push stream of this instance's structured events.

        ``?event=a,b`` filters to the named kinds; ``?timeout=`` bounds the
        stream's lifetime; ``?max_events=`` ends it after N deliveries
        (tests, scripted consumers).
        """
        raw_kinds = request.query.get("event", "")
        kinds = frozenset(kind for kind in raw_kinds.split(",") if kind) or None
        timeout_s = min(float(request.param("timeout", "3600")), 86400.0)
        max_events = int(request.param("max_events", "0"))
        subscription = EVENTS.subscribe(events=kinds)
        return self._stream_response(subscription, timeout_s, max_events)

    def campaign_stream(self, request: Request, cid: str) -> Response:
        """Push stream of one campaign's lifecycle: every per-job completion
        as it lands, ending with the terminal ``campaign_run_finished`` (or
        ``campaign_failed``) line.

        Subscribes *before* reading the campaign's state, so a completion
        racing the request is never missed; ``?wait=1`` allows subscribing
        ahead of submission (the id is then taken on faith).
        """
        wait = request.param("wait", "0") not in ("0", "", "false", "no")
        timeout_s = min(float(request.param("timeout", "600")), 86400.0)
        max_events = int(request.param("max_events", "0"))
        subscription = EVENTS.subscribe(
            events=_CAMPAIGN_STREAM_EVENTS,
            predicate=lambda record: record.get("campaign") == cid,
        )
        status = self.worker.status(cid)
        if status is None and not wait:
            subscription.close()
            raise WireError(
                f"unknown campaign {cid!r} (pass wait=1 to stream ahead of "
                "submission)",
                status=404,
            )
        state = str(status.get("state", "unknown")) if status else "unknown"
        if status is not None and state in ("done", "failed") and not wait:
            # Already terminal: nothing will ever arrive — close now so the
            # stream is just the opening line instead of a timeout wait.
            subscription.close()
        opening = {"event": "stream_open", "campaign": cid, "state": state}
        return self._stream_response(
            subscription,
            timeout_s,
            max_events,
            opening=opening,
            terminal=lambda record: record.get("event") in _CAMPAIGN_TERMINAL_EVENTS,
        )

    def telemetry_history(self, request: Request) -> Response:
        """Persisted metrics snapshots plus the regression-delta report."""
        store = self._require_store_native()
        limit = int(request.param("limit", "50"))
        rows = store.telemetry_rows(
            instance_id=request.query.get("instance"),
            code_version=request.query.get("code_version"),
            limit=limit,
        )
        return Response.json(
            {
                "snapshots": rows,
                "deltas": telemetry_deltas(rows),
                "code_versions": code_version_report(rows),
            }
        )

    # -- interactive fast path --------------------------------------------------
    def predict_endpoint(self, request: Request) -> Response:
        """Synchronous model prediction from the hot cache (no queue, no store)."""
        spec, trace = decode_predict_request(request.body)
        with span("predict.sync", parent=trace, job=spec.key()[:12]) as ctx:
            payload, hit = self.hot.predict(spec)
        self.last_trace_id = ctx.trace_id
        return Response.json(
            {
                "kind": "predict",
                "key": spec.key(),
                "cached": hit,
                "result": payload,
                "trace_id": ctx.trace_id,
            }
        )

    def tune_endpoint(self, request: Request) -> Response:
        """Synchronous autotuning re-entered from the cached stage-1 ranking."""
        spec, trace = decode_tune_request(request.body)
        with span("tune.sync", parent=trace, job=spec.key()[:12]) as ctx:
            payload, hit = self.hot.tune(spec)
        self.last_trace_id = ctx.trace_id
        return Response.json(
            {
                "kind": "tune",
                "key": spec.key(),
                "cached": hit,
                "result": payload,
                "trace_id": ctx.trace_id,
            }
        )

    @staticmethod
    def _queue_full(error: QueueFull) -> Response:
        retry_after = str(error.retry_after)
        return Response.json(
            {"error": str(error), "retry_after_s": error.retry_after},
            status=429,
            **{"Retry-After": retry_after},
        )

    def submit_campaign(self, request: Request) -> Response:
        spec, trace = decode_submit(request.body)
        with span("campaign.submit", parent=trace, campaign=spec.short_id()) as ctx:
            try:
                record = self.worker.submit(spec, trace=ctx)
            except QueueFull as error:
                return self._queue_full(error)
        self.last_trace_id = ctx.trace_id
        payload = {
            "id": record.id,
            "state": record.state,
            "runs": record.runs,
            "jobs": spec.size(),
            "url": f"/campaigns/{record.id}",
            "trace_id": ctx.trace_id,
            **spec_summary(spec),
        }
        return Response.json(payload, status=202)

    def assigned_campaign(self, request: Request) -> Response:
        """Coordinator forwarding target: run one shard plan of a campaign."""
        spec, plan, trace = decode_assignment(request.body)
        with span(
            "campaign.assigned",
            parent=trace,
            campaign=spec.short_id(),
            shard=plan.describe(),
        ) as ctx:
            try:
                record = self.worker.submit(spec, plan=plan, trace=ctx)
            except QueueFull as error:
                return self._queue_full(error)
        self.last_trace_id = ctx.trace_id
        payload = {
            "id": record.id,
            "state": record.state,
            "runs": record.runs,
            "shard_plan": plan.to_json(),
            "jobs": len(self.worker.job_keys(record.id) or ()),
            "url": f"/campaigns/{record.id}",
            "trace_id": ctx.trace_id,
        }
        return Response.json(payload, status=202)

    def list_campaigns(self, request: Request) -> Response:
        return Response.json(
            {"campaigns": [record.summary() for record in self.worker.records()]}
        )

    def campaign_status(self, request: Request, cid: str) -> Response:
        status = self.worker.status(cid)
        if status is None:
            raise WireError(f"unknown campaign {cid!r}", status=404)
        return Response.json(status)

    def _require_store_native(self) -> ResultStore:
        """The routes that read or write store rows directly need the store."""
        if not self.store_native:
            raise WireError(
                "this instance is wire-native (no store access); ask a "
                "store-native member (the coordinator)",
                status=409,
            )
        return self.store

    def _render_report(self, request: Request, keys: Sequence[str]) -> Response:
        self._require_store_native()
        kind = request.param("kind", "table5")
        builder = REPORTS.get(kind)
        if builder is None:
            raise WireError(
                f"unknown report kind {kind!r}; available: {', '.join(REPORTS)}"
            )
        options = {}
        if kind == "leaderboard":
            options = {
                "gpu": request.query.get("gpu"),
                "dtype": request.query.get("dtype"),
                "top": int(request.param("top", "10")),
            }
        elif kind == "table5":
            options = {"value": request.param("value", "tuned_gflops")}
        # Scoped to the addressed campaign's job keys: sharing a store with
        # other campaigns never leaks their rows into this report.  (For a
        # store holding just this campaign that is exactly what
        # `an5d campaign report --store ...` renders.)
        #
        # The materialised report — built table *and* rendered bytes, both
        # deterministic for a given store state — is read-through cached,
        # keyed on the store's *results* write generation: any
        # commit/put/purge evicts by key change, while heartbeats (cluster
        # generation) leave it warm.
        fmt = request.param("format", "json")

        def build() -> tuple:
            return render_table(builder(self.store, keys=keys, **options), fmt)

        if request.param("cache", "on") == "off":
            body, content_type = build()
        else:
            cache_key = (
                self.store.generation("results"),
                kind,
                tuple(sorted(options.items())),
                frozenset(keys),
                fmt,
            )
            (body, content_type), _ = self._report_cache.get_or_build(
                cache_key, build
            )
        return Response(body=body, content_type=content_type)

    def _stream_export(self, request: Request, keys: Sequence[str]) -> Response:
        store = self._require_store_native()
        ok_only = request.param("status", "ok") == "ok"
        key_set = frozenset(keys)

        def build() -> tuple:
            records = [
                record
                for record in store.export_records(ok_only=ok_only)
                if record["key"] in key_set
            ]
            lines = tuple(store.record_line(record) + "\n" for record in records)
            digest = etag("".join(lines).encode("utf-8"))
            return lines, digest, len(records)

        # Export lines are deterministic for a given store state, so the
        # rendered (lines, etag, count) triple caches under the results
        # generation.  The stream below re-encodes per request — the cached
        # tuple is immutable and shared.
        if request.param("cache", "on") == "off":
            lines, digest, count = build()
        else:
            (lines, digest, count), _ = self._export_cache.get_or_build(
                (store.generation("results"), ok_only, key_set), build
            )
        return Response(
            content_type=JSONL_TYPE,
            headers={"ETag": digest, "X-Result-Count": str(count)},
            stream=(line.encode("utf-8") for line in lines),
        )

    def campaign_report(self, request: Request, cid: str) -> Response:
        keys = self.worker.job_keys(cid)
        if keys is None:
            raise WireError(f"unknown campaign {cid!r}", status=404)
        return self._render_report(request, keys)

    def campaign_export(self, request: Request, cid: str) -> Response:
        keys = self.worker.job_keys(cid)
        if keys is None:
            raise WireError(f"unknown campaign {cid!r}", status=404)
        return self._stream_export(request, keys)

    # -- wire-native result path -----------------------------------------------
    def commit_results(self, request: Request) -> Response:
        """Receive a batch of result records from a wire-native worker.

        Idempotent by construction (content-addressed keys; the store only
        upgrades non-ok rows), so duplicated and replayed batches — retries,
        injected faults, two workers racing on a re-assigned shard — are
        absorbed without changing what an export will say.
        """
        store = self._require_store_native()
        records, trace = decode_result_records(request.body)
        now = self.registry.clock() if isinstance(self.registry, InstanceRegistry) else None
        if trace is not None:
            # The sender's run span rode the envelope; the commit itself is
            # a receiver-side child span (duration on *our* clock).
            with span("results.commit", parent=trace, records=len(records)) as ctx:
                written = store.commit_records(records, now=now)
            self.last_trace_id = ctx.trace_id
        else:
            written = store.commit_records(records, now=now)
        return Response.json(
            {"ok": True, "received": len(records), "committed": written}
        )

    def result_statuses(self, request: Request) -> Response:
        store = self._require_store_native()
        keys = decode_status_query(request.body)
        return Response.json({"statuses": store.statuses(keys)})

    # -- wire membership --------------------------------------------------------
    def _require_member_registry(self) -> InstanceRegistry:
        """Wire membership endpoints need the store-backed registry."""
        self._require_store_native()
        if not isinstance(self.registry, InstanceRegistry):
            raise WireError(
                "this instance is not a cluster member (start it with --cluster)",
                status=409,
            )
        return self.registry

    def _peer_urls(self) -> List[str]:
        """Live store-native member URLs — valid wire-commit targets.

        Handed back on register/heartbeat so wire members can re-resolve
        the coordinator after a failover without any out-of-band config.
        """
        registry = self.registry
        if not isinstance(registry, InstanceRegistry):
            return []
        return [
            instance.url
            for instance in registry.live()
            if instance.capabilities.get("store") == "native"
        ]

    def cluster_register(self, request: Request) -> Response:
        registry = self._require_member_registry()
        member = decode_member(request.body)
        registry.register(**member)  # receiver-stamped heartbeat start
        return Response.json({"ok": True, "peers": self._peer_urls()})

    def cluster_heartbeat(self, request: Request) -> Response:
        registry = self._require_member_registry()
        instance_id = decode_instance_id(request.body)
        # The arrival time on *our* clock is the heartbeat — the envelope
        # carries no timestamp (the decoder rejects any), so a wire member
        # with a skewed wall clock is judged exactly like one without.
        known = registry.record_heartbeat(instance_id)
        return Response.json({"ok": known, "peers": self._peer_urls()})

    def cluster_deregister(self, request: Request) -> Response:
        registry = self._require_member_registry()
        instance_id = decode_instance_id(request.body)
        return Response.json({"ok": registry.deregister(instance_id)})

    # -- cluster endpoints -----------------------------------------------------
    def _require_cluster(self) -> ClusterCoordinator:
        if self.coordinator is None:
            raise WireError(
                "this instance is not a cluster member (start it with --cluster)",
                status=409,
            )
        return self.coordinator

    def _require_coordinator(self) -> ClusterCoordinator:
        coordinator = self._require_cluster()
        if not self.cluster.coordinates:
            raise WireError(
                "this instance is not a coordinator; submit to the "
                "coordinator's /cluster/campaigns instead",
                status=409,
            )
        return coordinator

    def cluster_status(self, request: Request) -> Response:
        coordinator = self._require_cluster()
        if request.param("cache", "on") == "off" or not self.store_native:
            return Response.json(coordinator.status())
        # Status polling must not hit SQLite per request: the payload caches
        # under (results gen, cluster gen, 1s clock bucket).  Any commit,
        # heartbeat or assignment change moves a generation; the clock
        # bucket bounds liveness staleness to a second even when nothing
        # writes at all (e.g. a peer silently dying).
        key = (
            self.store.generation("results"),
            self.store.generation("cluster"),
            int(self.registry.clock()),
        )
        payload, _ = self._status_cache.get_or_build(key, coordinator.status)
        return Response.json(payload)

    def cluster_instances(self, request: Request) -> Response:
        self._require_cluster()
        return Response.json({"instances": self.registry.summaries()})

    def cluster_submit(self, request: Request) -> Response:
        coordinator = self._require_coordinator()
        spec, trace = decode_submit(request.body)
        with span("cluster.submit", parent=trace, campaign=spec.short_id()) as ctx:
            payload = coordinator.submit(spec)
        self.last_trace_id = ctx.trace_id
        payload["url"] = f"/cluster/campaigns/{payload['id']}"
        payload["trace_id"] = ctx.trace_id
        return Response.json(payload, status=202)

    def _submission_keys(self, sid: str) -> List[str]:
        coordinator = self._require_cluster()
        try:
            return coordinator.job_keys(sid)
        except KeyError:
            raise WireError(f"unknown submission {sid!r}", status=404) from None

    def cluster_campaign_status(self, request: Request, sid: str) -> Response:
        coordinator = self._require_cluster()
        try:
            return Response.json(coordinator.submission_status(sid))
        except KeyError:
            raise WireError(f"unknown submission {sid!r}", status=404) from None

    def cluster_report(self, request: Request, sid: str) -> Response:
        return self._render_report(request, self._submission_keys(sid))

    def cluster_export(self, request: Request, sid: str) -> Response:
        # The full campaign's keys — whichever instances computed them — so
        # the stream is byte-identical to a single-instance run.
        return self._stream_export(request, self._submission_keys(sid))


class _CampaignRequestHandler(BaseHTTPRequestHandler):
    """Bridges http.server onto :meth:`CampaignApp.handle`."""

    app: CampaignApp  # bound by CampaignServer via a subclass attribute
    protocol_version = "HTTP/1.1"
    # Interactive tier: without TCP_NODELAY, keep-alive clients whose
    # request spans two segments (headers, then body) stall ~40 ms per
    # round-trip on the Nagle/delayed-ACK interaction — dwarfing the
    # single-millisecond /predict fast path this server exists to serve.
    disable_nagle_algorithm = True
    quiet = True

    # -- plumbing --------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover — verbose serving only
            super().log_message(format, *args)

    def _read_request(self) -> Request:
        parts = urlsplit(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        return Request(
            method=self.command,
            path=parts.path,
            query=dict(parse_qsl(parts.query)),
            body=body,
        )

    def _send(self, response: Response) -> None:
        if response.stream is not None:
            self._send_chunked(response)
            return
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _send_chunked(self, response: Response) -> None:
        """Stream an iterable body with chunked transfer encoding."""
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        stream = response.stream
        try:
            for chunk in stream:
                if not chunk:
                    continue
                self.wfile.write(f"{len(chunk):x}\r\n".encode("ascii"))
                self.wfile.write(chunk)
                self.wfile.write(b"\r\n")
            self.wfile.write(b"0\r\n\r\n")
        finally:
            # A disconnect mid-stream must still release the producer (for
            # event streams, the subscription detaches in its finally).
            close = getattr(stream, "close", None)
            if close is not None:
                close()

    def _handle(self) -> None:
        try:
            response = self.app.handle(self._read_request())
        except Exception as error:  # noqa: BLE001 — the server must not die
            response = Response.error(
                f"internal error: {type(error).__name__}: {error}", status=500
            )
        try:
            self._send(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response

    do_GET = _handle
    do_POST = _handle
    do_DELETE = _handle
    do_PUT = _handle


class CampaignServer:
    """A long-running campaign service on one store.

    >>> server = CampaignServer(port=0, store="campaign.sqlite")
    >>> server.start()          # background serving (tests, embedding)
    >>> server.url
    'http://127.0.0.1:54321'
    >>> server.stop()

    ``run()`` serves on the calling thread until interrupted (the CLI path).
    Pass a :class:`~repro.cluster.registry.ClusterConfig` to join (or
    coordinate) a cluster of instances sharing the store.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        store: Union[str, Path, ResultStore, RemoteStore] = "campaign.sqlite",
        settings: Optional[WorkerSettings] = None,
        quiet: bool = True,
        cluster: Optional[ClusterConfig] = None,
        advertise_host: Optional[str] = None,
        telemetry_interval: Optional[float] = None,
        telemetry_keep: int = 1000,
    ) -> None:
        self.app = CampaignApp(
            store,
            settings,
            cluster=cluster,
            telemetry_interval=telemetry_interval,
            telemetry_keep=telemetry_keep,
        )
        handler = type(
            "BoundCampaignRequestHandler",
            (_CampaignRequestHandler,),
            {"app": self.app, "quiet": quiet},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.host, self.port = self._httpd.server_address[:2]
        # Peers dial what the registry advertises.  A wildcard bind address
        # is not dialable, so fall back to ``advertise_host`` (multi-box
        # deployments) or this host's name.
        advertised = advertise_host or self.host
        if advertised in ("0.0.0.0", "::", ""):
            advertised = socket.gethostname()
        self.app.set_endpoint(advertised, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Serve in a background thread (returns once accepting requests)."""
        self.app.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="campaign-http",
            daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        self._thread.start()

    def run(self) -> None:
        """Serve on the calling thread until KeyboardInterrupt."""
        self.app.start()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover — interactive only
            pass

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()

    def kill(self) -> None:
        """Crash-stop: close the socket, abandon work, keep the registry row.

        What remains is exactly the footprint of a killed process — an
        instance whose heartbeat stops aging forward — which the cluster
        coordinator detects and routes around.
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.kill()

    def __enter__(self) -> "CampaignServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
