"""Wire format of the campaign service.

Everything that crosses the HTTP boundary goes through this module: strict
JSON decoding of submitted :class:`~repro.campaign.jobs.CampaignSpec` (and
:class:`~repro.campaign.jobs.JobSpec`) payloads, campaign ids, and the
rendering of :class:`~repro.reporting.ResultTable` reports as JSON, JSONL
or the CLI's plain-text layout.

The decoders are deliberately unforgiving — unknown fields are a 400, not a
silently ignored typo — because a campaign spec is a *content address*: two
submissions must either hash identically or fail loudly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Tuple

from repro.campaign.jobs import CampaignSpec, JobSpec
from repro.reporting import ResultTable

#: Media types used by the service responses.
JSON_TYPE = "application/json"
JSONL_TYPE = "application/jsonl"
TEXT_TYPE = "text/plain; charset=utf-8"

#: Length of the campaign-id digest suffix ("c" + first 12 hex chars).
_ID_DIGITS = 12


class WireError(ValueError):
    """A request that cannot be served; carries the HTTP status to send."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def campaign_id(spec: CampaignSpec) -> str:
    """Short, deterministic id of a campaign (prefix of its content address).

    Alias-equivalent submissions (``"v100"`` vs ``"V100"``, repeated matrix
    entries, an explicit all-benchmarks list vs the default) share one id,
    so re-submitting the same work converges on the same campaign record.
    """
    return "c" + spec.key()[:_ID_DIGITS]


def decode_json(body: bytes) -> object:
    """Parse a request body as JSON, mapping failures to HTTP 400."""
    if not body:
        raise WireError("request body must be a JSON object")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"invalid JSON body: {error}") from None


def decode_campaign_spec(body: bytes) -> CampaignSpec:
    """Decode and validate a submitted campaign spec (strict, alias-safe)."""
    data = decode_json(body)
    try:
        return CampaignSpec.from_json(data)  # type: ignore[arg-type]
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        raise WireError(f"invalid campaign spec: {message}") from None


def decode_job_spec(data: Mapping[str, object]) -> JobSpec:
    """Decode one job spec mapping (used by tests and future job routes)."""
    try:
        return JobSpec.from_json(data)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        raise WireError(f"invalid job spec: {message}") from None


def json_body(payload: object) -> bytes:
    """Canonical JSON response body (sorted keys, trailing newline)."""
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")


def render_table(table: ResultTable, fmt: str) -> Tuple[bytes, str]:
    """Render a report table in the requested format.

    ``json`` is :meth:`ResultTable.to_payload`, ``jsonl`` is one object per
    row, and ``text`` is exactly what ``an5d campaign report`` prints.
    """
    if fmt == "json":
        return json_body(table.to_payload()), JSON_TYPE
    if fmt == "jsonl":
        body = table.to_jsonl()
        return (body + "\n" if body else "").encode("utf-8"), JSONL_TYPE
    if fmt == "text":
        return (table.to_text() + "\n").encode("utf-8"), TEXT_TYPE
    raise WireError(f"unknown report format {fmt!r}; expected json, jsonl or text")


def etag(body: bytes) -> str:
    """A strong ETag for deterministic bodies (exports never lie)."""
    return '"' + hashlib.sha256(body).hexdigest()[:16] + '"'


def spec_summary(spec: CampaignSpec) -> Dict[str, object]:
    """The spec fields echoed back in submit/status responses."""
    return {"spec": spec.to_json(), "describe": spec.describe()}
