"""Wire format of the campaign service.

Everything that crosses the HTTP boundary goes through this module: strict
JSON decoding of submitted :class:`~repro.campaign.jobs.CampaignSpec` (and
:class:`~repro.campaign.jobs.JobSpec`) payloads, campaign ids, and the
rendering of :class:`~repro.reporting.ResultTable` reports as JSON, JSONL
or the CLI's plain-text layout.

The decoders are deliberately unforgiving — unknown fields are a 400, not a
silently ignored typo — because a campaign spec is a *content address*: two
submissions must either hash identically or fail loudly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping, Optional, Tuple

from repro.campaign.jobs import CampaignSpec, JobSpec
from repro.campaign.scheduler import ShardPlan
from repro.campaign.store import RECORD_FIELDS
from repro.cluster.registry import ROLES
from repro.obs.trace import TraceContext, context_from_wire
from repro.reporting import ResultTable
from repro.stencils.library import (
    DEFAULT_2D_GRID,
    DEFAULT_3D_GRID,
    DEFAULT_TIME_STEPS,
    get_benchmark,
)

#: Media types used by the service responses.
JSON_TYPE = "application/json"
JSONL_TYPE = "application/jsonl"
TEXT_TYPE = "text/plain; charset=utf-8"

class WireError(ValueError):
    """A request that cannot be served; carries the HTTP status to send."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def campaign_id(spec: CampaignSpec) -> str:
    """Short, deterministic id of a campaign (prefix of its content address).

    Alias-equivalent submissions (``"v100"`` vs ``"V100"``, repeated matrix
    entries, an explicit all-benchmarks list vs the default) share one id,
    so re-submitting the same work converges on the same campaign record —
    and the cluster coordinator's submission ids are the same ids.
    """
    return spec.short_id()


def decode_json(body: bytes) -> object:
    """Parse a request body as JSON, mapping failures to HTTP 400."""
    if not body:
        raise WireError("request body must be a JSON object")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"invalid JSON body: {error}") from None


def _campaign_spec_from_json(data: object) -> CampaignSpec:
    """Decode one campaign-spec mapping, mapping failures to HTTP 400.

    Shared by every submit route (direct and assignment envelope) so the
    two paths can never drift in what they accept — a drift would break
    content-address stability across routes.
    """
    try:
        return CampaignSpec.from_json(data)  # type: ignore[arg-type]
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        raise WireError(f"invalid campaign spec: {message}") from None


def _pop_trace(data: object) -> Tuple[object, Optional[TraceContext]]:
    """Split the optional ``"trace"`` envelope field off a request mapping.

    The trace context rides the envelope *next to* the content-addressed
    payload, never inside it: stripping it here (before any spec decoding)
    is what keeps campaign ids and job keys independent of tracing.  The
    field itself is strict — only ``trace_id``/``span_id``, no timestamps
    (see :func:`repro.obs.trace.context_from_wire`) — and a malformed one
    is a 400 like any other envelope error.
    """
    if not isinstance(data, Mapping) or "trace" not in data:
        return data, None
    try:
        trace = context_from_wire(data["trace"])
    except ValueError as error:
        raise WireError(str(error)) from None
    return {k: v for k, v in data.items() if k != "trace"}, trace


def decode_submit(body: bytes) -> Tuple[CampaignSpec, Optional[TraceContext]]:
    """Decode a submitted campaign spec plus its optional trace envelope."""
    data, trace = _pop_trace(decode_json(body))
    return _campaign_spec_from_json(data), trace


def decode_campaign_spec(body: bytes) -> CampaignSpec:
    """Decode and validate a submitted campaign spec (strict, alias-safe)."""
    return decode_submit(body)[0]


def decode_assignment(
    body: bytes,
) -> Tuple[CampaignSpec, ShardPlan, Optional[TraceContext]]:
    """Decode a coordinator shard assignment: a spec plus its shard plan.

    The envelope is ``{"spec": {...}, "shards": N, "shard_indices": [...]}``
    with an optional ``"trace"`` context (the coordinator's fan-out span).
    Both halves validate here, at the wire — a malformed shard plan (index
    out of range, zero shards, non-integer fields) is a structured 400, not
    a 500 thrown later out of the worker loop.
    """
    data, trace = _pop_trace(decode_json(body))
    if not isinstance(data, Mapping):
        raise WireError("assignment must be a JSON object")
    unknown = sorted(set(data) - {"spec", "shards", "shard_indices"})
    if unknown:
        raise WireError(f"unknown assignment field(s): {', '.join(unknown)}")
    if "spec" not in data:
        raise WireError("assignment is missing its campaign 'spec'")
    spec = _campaign_spec_from_json(data["spec"])
    try:
        plan = ShardPlan.from_json(
            {k: v for k, v in data.items() if k in ("shards", "shard_indices")}
        )
    except (TypeError, ValueError) as error:
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        raise WireError(f"invalid shard plan: {message}") from None
    return spec, plan, trace


def decode_job_spec(data: Mapping[str, object]) -> JobSpec:
    """Decode one job spec mapping (used by tests and future job routes)."""
    try:
        return JobSpec.from_json(data)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        raise WireError(f"invalid job spec: {message}") from None


def decode_result_records(
    body: bytes,
) -> Tuple[List[Dict[str, object]], Optional[TraceContext]]:
    """Decode a ``POST /results/commit`` batch: one JSON record per line.

    Every record must carry exactly the store's :data:`RECORD_FIELDS` — in
    particular **no** ``created_at``: commit timestamps are stamped by the
    receiving store, never trusted from the sender (same clock policy as
    heartbeats).  A record may additionally carry a ``"trace"`` envelope
    (the sending worker's run span); it is stripped here — trace context
    never reaches the store rows, so exports stay byte-identical — and the
    first one found is returned for the receiver's commit span.  Malformed
    batches are a 400 with the offending line.
    """
    if not body:
        raise WireError("commit body must be JSONL (one result record per line)")
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireError(f"commit body is not UTF-8: {error}") from None
    records: List[Dict[str, object]] = []
    trace: Optional[TraceContext] = None
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise WireError(f"commit line {number} is not JSON: {error}") from None
        if not isinstance(record, Mapping):
            raise WireError(f"commit line {number} must be a JSON object")
        if "trace" in record:
            record, line_trace = _pop_trace(record)
            if trace is None:
                trace = line_trace
        missing = sorted(set(RECORD_FIELDS) - set(record))
        if missing:
            raise WireError(
                f"commit line {number} is missing field(s): {', '.join(missing)}"
            )
        unknown = sorted(set(record) - set(RECORD_FIELDS))
        if unknown:
            raise WireError(
                f"commit line {number} has unknown field(s): {', '.join(unknown)}"
            )
        records.append(dict(record))
    if not records:
        raise WireError("commit body holds no result records")
    return records, trace


#: Envelope fields of the synchronous fast-path requests.  The config fields
#: (``bT``/``bS``/``hS``/``regs``) become job-spec params *only when sent*,
#: so a default request hashes to the same content address as the campaign
#: scheduler's default predict job — fast path and store agree on keys.
_PREDICT_FIELDS = {"pattern", "gpu", "dtype", "interior", "time_steps", "bT", "bS", "hS", "regs"}
_TUNE_FIELDS = {"pattern", "gpu", "dtype", "interior", "time_steps", "top_k"}

_DEFAULT_GRIDS = {2: DEFAULT_2D_GRID, 3: DEFAULT_3D_GRID}


def _decode_int(data: Mapping[str, object], name: str, minimum: int = 1) -> int:
    value = data[name]
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"field {name!r} must be an integer")
    if value < minimum:
        raise WireError(f"field {name!r} must be >= {minimum}, got {value}")
    return value


def _interactive_spec(body: bytes, kind: str, allowed: set) -> Tuple[Mapping[str, object], JobSpec, Optional[TraceContext]]:
    """Shared decode of the ``/predict`` and ``/tune`` envelopes.

    Returns the stripped request mapping (for kind-specific params), the
    partially built spec fields as a :class:`JobSpec` with empty params,
    and the optional trace context.
    """
    data, trace = _pop_trace(decode_json(body))
    if not isinstance(data, Mapping):
        raise WireError(f"{kind} request must be a JSON object")
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise WireError(f"unknown {kind} request field(s): {', '.join(unknown)}")
    if "pattern" not in data:
        raise WireError(f"{kind} request is missing its 'pattern'")
    pattern = data["pattern"]
    if not isinstance(pattern, str) or not pattern:
        raise WireError("field 'pattern' must be a non-empty string")
    try:
        ndim = get_benchmark(pattern).ndim
    except KeyError as error:
        message = error.args[0] if error.args else error
        raise WireError(str(message)) from None
    dtype = data.get("dtype", "float")
    if dtype not in ("float", "double"):
        raise WireError(f"field 'dtype' must be 'float' or 'double', got {dtype!r}")
    gpu = data.get("gpu", "V100")
    if not isinstance(gpu, str) or not gpu:
        raise WireError("field 'gpu' must be a non-empty string")
    interior = data.get("interior")
    if interior is None:
        interior = _DEFAULT_GRIDS.get(ndim)
        if interior is None:
            raise WireError(
                f"stencil {pattern!r} is {ndim}-D; an explicit 'interior' is required"
            )
    elif (
        not isinstance(interior, (list, tuple))
        or len(interior) != ndim
        or not all(isinstance(v, int) and not isinstance(v, bool) and v > 0 for v in interior)
    ):
        raise WireError(
            f"field 'interior' must be an array of {ndim} positive integers"
        )
    time_steps = _decode_int(data, "time_steps") if "time_steps" in data else DEFAULT_TIME_STEPS
    try:
        spec = JobSpec(
            kind=kind,
            pattern=pattern,
            gpu=gpu,
            dtype=dtype,
            interior=tuple(interior),
            time_steps=time_steps,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        raise WireError(f"invalid {kind} request: {message}") from None
    return data, spec, trace


def decode_predict_request(body: bytes) -> Tuple[JobSpec, Optional[TraceContext]]:
    """Decode a ``POST /predict`` envelope into a predict job spec.

    Omitted config fields are omitted from the spec's params too, so the
    default request keys identically to the campaign scheduler's default
    predict job (``params=()``, model-default blocking).
    """
    data, spec, trace = _interactive_spec(body, "predict", _PREDICT_FIELDS)
    params: List[Tuple[str, object]] = []
    if "bT" in data:
        params.append(("bT", _decode_int(data, "bT")))
    if "bS" in data:
        bS = data["bS"]
        if (
            not isinstance(bS, (list, tuple))
            or not bS
            or not all(isinstance(v, int) and not isinstance(v, bool) and v > 0 for v in bS)
        ):
            raise WireError("field 'bS' must be a non-empty array of positive integers")
        params.append(("bS", tuple(bS)))
    if "hS" in data:
        params.append(("hS", _decode_int(data, "hS")))
    if "regs" in data:
        params.append(("regs", _decode_int(data, "regs")))
    if params:
        spec = JobSpec(
            kind=spec.kind,
            pattern=spec.pattern,
            gpu=spec.gpu,
            dtype=spec.dtype,
            interior=spec.interior,
            time_steps=spec.time_steps,
            params=tuple(params),
        )
    return spec, trace


def decode_tune_request(body: bytes) -> Tuple[JobSpec, Optional[TraceContext]]:
    """Decode a ``POST /tune`` envelope into a tune job spec.

    ``top_k`` always lands in the params (default 5) — exactly how the
    campaign scheduler builds its tune jobs, so the fast path and a sweep
    share content addresses.
    """
    data, spec, trace = _interactive_spec(body, "tune", _TUNE_FIELDS)
    top_k = _decode_int(data, "top_k") if "top_k" in data else 5
    spec = JobSpec(
        kind=spec.kind,
        pattern=spec.pattern,
        gpu=spec.gpu,
        dtype=spec.dtype,
        interior=spec.interior,
        time_steps=spec.time_steps,
        params=(("top_k", top_k),),
    )
    return spec, trace


def decode_status_query(body: bytes) -> List[str]:
    """Decode a ``POST /results/statuses`` body: ``{"keys": [...]}``."""
    data = decode_json(body)
    if not isinstance(data, Mapping):
        raise WireError("status query must be a JSON object")
    unknown = sorted(set(data) - {"keys"})
    if unknown:
        raise WireError(f"unknown status query field(s): {', '.join(unknown)}")
    keys = data.get("keys")
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        raise WireError("status query field 'keys' must be an array of strings")
    return list(keys)


#: Fields a wire registration may carry.  Deliberately no timestamps: an
#: envelope trying to smuggle ``heartbeat_at``/``started_at`` is a 400, which
#: is how the receiver-clock liveness policy is enforced at the boundary.
_MEMBER_FIELDS = {"instance_id", "host", "port", "role", "capabilities"}


def decode_member(body: bytes) -> Dict[str, object]:
    """Decode a ``POST /cluster/register`` envelope (strict, timestamp-free)."""
    data = decode_json(body)
    if not isinstance(data, Mapping):
        raise WireError("registration must be a JSON object")
    unknown = sorted(set(data) - _MEMBER_FIELDS)
    if unknown:
        raise WireError(
            f"unknown registration field(s): {', '.join(unknown)} "
            "(timestamps are receiver-stamped and must not be sent)"
        )
    for required in ("instance_id", "host", "port"):
        if required not in data:
            raise WireError(f"registration is missing {required!r}")
    instance_id = data["instance_id"]
    host = data["host"]
    if not isinstance(instance_id, str) or not instance_id:
        raise WireError("registration field 'instance_id' must be a non-empty string")
    if not isinstance(host, str) or not host:
        raise WireError("registration field 'host' must be a non-empty string")
    try:
        port = int(data["port"])  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise WireError("registration field 'port' must be an integer") from None
    role = data.get("role", "worker")
    if role not in ROLES:
        raise WireError(f"unknown cluster role {role!r}; expected one of {ROLES}")
    capabilities = data.get("capabilities", {})
    if not isinstance(capabilities, Mapping):
        raise WireError("registration field 'capabilities' must be a JSON object")
    return {
        "instance_id": instance_id,
        "host": host,
        "port": port,
        "role": role,
        "capabilities": dict(capabilities),
    }


def decode_instance_id(body: bytes) -> str:
    """Decode heartbeat/deregister envelopes: ``{"instance_id": "..."}``.

    Strict like every other decoder — a heartbeat carrying a sender
    timestamp is rejected, not ignored, so skew bugs cannot creep back in.
    """
    data = decode_json(body)
    if not isinstance(data, Mapping):
        raise WireError("envelope must be a JSON object")
    unknown = sorted(set(data) - {"instance_id"})
    if unknown:
        raise WireError(
            f"unknown field(s): {', '.join(unknown)} "
            "(heartbeats carry no timestamps; arrival is receiver-stamped)"
        )
    instance_id = data.get("instance_id")
    if not isinstance(instance_id, str) or not instance_id:
        raise WireError("field 'instance_id' must be a non-empty string")
    return instance_id


def json_body(payload: object) -> bytes:
    """Canonical JSON response body (sorted keys, trailing newline)."""
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")


def render_table(table: ResultTable, fmt: str) -> Tuple[bytes, str]:
    """Render a report table in the requested format.

    ``json`` is :meth:`ResultTable.to_payload`, ``jsonl`` is one object per
    row, and ``text`` is exactly what ``an5d campaign report`` prints.
    """
    if fmt == "json":
        return json_body(table.to_payload()), JSON_TYPE
    if fmt == "jsonl":
        body = table.to_jsonl()
        return (body + "\n" if body else "").encode("utf-8"), JSONL_TYPE
    if fmt == "text":
        return (table.to_text() + "\n").encode("utf-8"), TEXT_TYPE
    raise WireError(f"unknown report format {fmt!r}; expected json, jsonl or text")


def etag(body: bytes) -> str:
    """A strong ETag for deterministic bodies (exports never lie)."""
    return '"' + hashlib.sha256(body).hexdigest()[:16] + '"'


def spec_summary(spec: CampaignSpec) -> Dict[str, object]:
    """The spec fields echoed back in submit/status responses."""
    return {"spec": spec.to_json(), "describe": spec.describe()}
