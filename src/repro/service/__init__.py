"""HTTP campaign service: a long-running front-end over the campaign layer.

The ROADMAP's "serve heavy traffic" direction: submit
:class:`~repro.campaign.jobs.CampaignSpec` matrices over HTTP, poll their
progress, stream reports and deterministic JSONL exports — all backed by
the same content-addressed SQLite store the CLI uses, so the service, the
CLI and future distributed workers are interchangeable views of one result
set.

``wire``
    Strict JSON wire format (spec decoding, campaign ids, table rendering).
``hotcache``
    The interactive tier's hot model-batch cache behind the synchronous
    ``POST /predict`` and ``POST /tune`` fast path.
``worker``
    The asyncio in-process worker that drains submissions through the
    sharded scheduler — batched model jobs in-process, scalar-simulator
    jobs over the multiprocessing pool.
``routes``
    The transport-agnostic routing table (Request -> Response).
``app``
    :class:`CampaignApp` (handlers) and :class:`CampaignServer`
    (ThreadingHTTPServer wrapper with ephemeral-port support).  Pass a
    :class:`~repro.cluster.registry.ClusterConfig` to join a cluster of
    instances sharing one store (see :mod:`repro.cluster`).

Quick use::

    from repro.service import CampaignServer

    with CampaignServer(port=0, store="campaign.sqlite") as server:
        print(server.url)   # http://127.0.0.1:<ephemeral>
"""

from repro.service.app import CampaignApp, CampaignServer
from repro.service.hotcache import HotModelCache
from repro.service.routes import Request, Response
from repro.service.wire import WireError, campaign_id
from repro.service.worker import CampaignRecord, CampaignWorker, QueueFull, WorkerSettings

__all__ = [
    "CampaignApp",
    "CampaignRecord",
    "CampaignServer",
    "CampaignWorker",
    "HotModelCache",
    "QueueFull",
    "Request",
    "Response",
    "WireError",
    "WorkerSettings",
    "campaign_id",
]
