"""Routing table of the campaign service.

The router is transport-agnostic: it maps a :class:`Request` (method, path,
query, body) to a :class:`Response` by calling handler methods on the app
object, which makes every endpoint testable without opening a socket.

Endpoints
---------

``GET  /healthz``
    Liveness probe: store path and campaign counts.
``GET  /metrics``
    This instance's metrics registry in Prometheus text format.
``GET  /trace/{trace_id}``
    The span tree this process recorded for one trace id (JSON).
``GET  /profile?seconds=N&hz=H``
    Sample this process' thread stacks for N seconds; folded-stack
    (flamegraph ``collapse``) text.
``GET  /events/stream``
    Long-lived chunked JSONL push stream of this instance's structured
    events (``?event=`` filters to one kind).
``GET  /telemetry/history``
    Persisted metrics snapshots plus the regression-delta report across
    runs and code versions (JSON).
``POST /predict``
    Synchronous fast path: one model prediction, answered in-request from
    the hot model-batch cache (no campaign queue, no store write).
``POST /tune``
    Synchronous fast path: one autotuning run re-entered from the cached
    stage-1 ranking (``top_k`` finalists simulated in-request).
``POST /campaigns``
    Submit a campaign spec (JSON); returns its id (202), or 429 with a
    ``Retry-After`` header when the admission queue is full.
``POST /campaigns/assigned``
    Coordinator forwarding target: a campaign spec plus the shard plan this
    instance must run (202).
``GET  /campaigns``
    All known campaigns in submission order.
``GET  /campaigns/{id}``
    Lifecycle state plus queued/running/done job counts from the store.
``GET  /campaigns/{id}/report?kind=leaderboard|table5|accuracy|summary``
    A rendered report table (``format=json|jsonl|text``).
``GET  /campaigns/{id}/export``
    The campaign's results, streamed as deterministic JSONL.
``GET  /campaigns/{id}/stream``
    Long-lived chunked JSONL push stream of one campaign's per-job
    completions (ends with a ``campaign_run_finished`` line).
``POST /results/commit``
    Wire-native result path: a JSONL batch of store records committed to
    this instance's store (idempotent — keys are content addresses).
``POST /results/statuses``
    Bulk status lookup (``{"keys": [...]}``) for wire-native schedulers.
``POST /cluster/register`` / ``POST /cluster/heartbeat`` /
``POST /cluster/deregister``
    Wire membership: envelopes carry no timestamps; heartbeat arrivals are
    stamped with the *receiver's* clock.  Responses list the live
    store-native peer URLs so wire members can re-resolve the coordinator.
``GET  /cluster/status``
    Aggregated cluster view: instances with liveness, submissions with
    per-instance merged progress.
``GET  /cluster/instances``
    The instance registry with heartbeat-derived liveness.
``POST /cluster/campaigns``
    Submit a campaign to the coordinator, which shards it over live
    instances (202).
``GET  /cluster/campaigns/{id}``
    One cluster submission: state, shard assignments, merged progress.
``GET  /cluster/campaigns/{id}/report`` / ``GET /cluster/campaigns/{id}/export``
    Whole-campaign reports/exports — byte-identical to a single-instance
    run over the same spec.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.service.wire import JSON_TYPE, WireError, json_body


@dataclass
class Request:
    """One decoded HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def param(self, name: str, default: str) -> str:
        return self.query.get(name, default)


@dataclass
class Response:
    """One response; ``stream`` (an iterable of byte chunks) wins over ``body``."""

    status: int = 200
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[Iterable[bytes]] = None

    @classmethod
    def json(cls, payload: object, status: int = 200, **headers: str) -> "Response":
        return cls(status=status, body=json_body(payload), headers=dict(headers))

    @classmethod
    def error(cls, message: str, status: int) -> "Response":
        return cls.json({"error": message}, status=status)


#: (method, compiled path pattern, app handler name)
_ROUTES: Tuple[Tuple[str, "re.Pattern[str]", str], ...] = tuple(
    (method, re.compile(pattern), handler)
    for method, pattern, handler in (
        ("GET", r"^/healthz$", "health"),
        ("GET", r"^/metrics$", "metrics_endpoint"),
        ("GET", r"^/trace/(?P<tid>[0-9a-f]+)$", "trace_endpoint"),
        ("GET", r"^/profile$", "profile_endpoint"),
        ("GET", r"^/events/stream$", "events_stream"),
        ("GET", r"^/telemetry/history$", "telemetry_history"),
        ("POST", r"^/predict$", "predict_endpoint"),
        ("POST", r"^/tune$", "tune_endpoint"),
        ("POST", r"^/campaigns$", "submit_campaign"),
        ("GET", r"^/campaigns$", "list_campaigns"),
        # /campaigns/assigned must precede the {cid} capture routes.
        ("POST", r"^/campaigns/assigned$", "assigned_campaign"),
        ("GET", r"^/campaigns/(?P<cid>[A-Za-z0-9_-]+)$", "campaign_status"),
        ("GET", r"^/campaigns/(?P<cid>[A-Za-z0-9_-]+)/report$", "campaign_report"),
        ("GET", r"^/campaigns/(?P<cid>[A-Za-z0-9_-]+)/export$", "campaign_export"),
        ("GET", r"^/campaigns/(?P<cid>[A-Za-z0-9_-]+)/stream$", "campaign_stream"),
        ("POST", r"^/results/commit$", "commit_results"),
        ("POST", r"^/results/statuses$", "result_statuses"),
        ("POST", r"^/cluster/register$", "cluster_register"),
        ("POST", r"^/cluster/heartbeat$", "cluster_heartbeat"),
        ("POST", r"^/cluster/deregister$", "cluster_deregister"),
        ("GET", r"^/cluster/status$", "cluster_status"),
        ("GET", r"^/cluster/instances$", "cluster_instances"),
        ("POST", r"^/cluster/campaigns$", "cluster_submit"),
        ("GET", r"^/cluster/campaigns/(?P<sid>[A-Za-z0-9_-]+)$", "cluster_campaign_status"),
        ("GET", r"^/cluster/campaigns/(?P<sid>[A-Za-z0-9_-]+)/report$", "cluster_report"),
        ("GET", r"^/cluster/campaigns/(?P<sid>[A-Za-z0-9_-]+)/export$", "cluster_export"),
    )
)


def _call(app: object, handler_name: str, request: Request, params: Dict[str, str]) -> Tuple[Response, Optional[str]]:
    """Invoke one handler; returns (response, error class when it failed)."""
    handler: Callable[..., Response] = getattr(app, handler_name)
    try:
        return handler(request, **params), None
    except WireError as error:
        return Response.error(str(error), status=error.status), "WireError"
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        return Response.error(str(message), status=400), type(error).__name__


def dispatch(app: object, request: Request) -> Response:
    """Route one request to the app, mapping failures to JSON errors.

    When the app carries a :class:`~repro.obs.metrics.MetricsRegistry` (as
    ``app.metrics``), every request is accounted here — the route label is
    the *handler name*, never the raw path, so label cardinality is bounded
    by the route table: ``requests_total{route,method,code}``,
    ``request_seconds{route}``, ``request_errors_total{route,error_class}``
    and the ``requests_in_flight`` gauge.
    """
    handler_name = "unmatched"
    matched_path = False
    params: Dict[str, str] = {}
    for method, pattern, name in _ROUTES:
        match = pattern.match(request.path)
        if match is None:
            continue
        matched_path = True
        if method != request.method:
            continue
        handler_name, params = name, match.groupdict()
        break
    registry = getattr(app, "metrics", None)
    if registry is None:
        if handler_name != "unmatched":
            return _call(app, handler_name, request, params)[0]
        if matched_path:
            return Response.error(f"method {request.method} not allowed here", status=405)
        return Response.error(f"no route for {request.path}", status=404)

    in_flight = registry.gauge("requests_in_flight", "Requests being handled right now")
    requests_total = registry.counter(
        "requests_total", "Requests handled, by route/method/status",
        labels=("route", "method", "code"),
    )
    latency = registry.histogram(
        "request_seconds", "Request handling latency by route", labels=("route",)
    )
    errors = registry.counter(
        "request_errors_total", "Requests that failed, by route and error class",
        labels=("route", "error_class"),
    )
    in_flight.inc()
    start = time.perf_counter()
    error_class: Optional[str] = None
    status = 500
    try:
        if handler_name != "unmatched":
            response, error_class = _call(app, handler_name, request, params)
        elif matched_path:
            response = Response.error(
                f"method {request.method} not allowed here", status=405
            )
        else:
            response = Response.error(f"no route for {request.path}", status=404)
        status = response.status
        return response
    except Exception as error:  # noqa: BLE001 — counted, then 500s upstream
        error_class = type(error).__name__
        raise
    finally:
        in_flight.dec()
        # The most recent trace id rides the latency histogram as an
        # OpenMetrics exemplar, linking a scrape straight to /trace/{id}.
        latency.observe(
            time.perf_counter() - start,
            exemplar=getattr(app, "last_trace_id", None),
            route=handler_name,
        )
        requests_total.inc(route=handler_name, method=request.method, code=str(status))
        if error_class is None and status >= 500:
            error_class = "InternalError"
        if error_class is not None:
            errors.inc(route=handler_name, error_class=error_class)


def route_table() -> List[str]:
    """Human-readable route listing (surfaced by /healthz)."""
    return sorted({f"{method} {pattern.pattern}" for method, pattern, _ in _ROUTES})
