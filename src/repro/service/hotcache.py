"""Hot in-process model cache behind the synchronous ``/predict``/``/tune`` path.

The campaign queue is the right place for matrix sweeps, but a model-only
prediction the batch engine answers in about a millisecond should not pay
job-submission latency.  This module keeps one :class:`_HotEntry` per
(pattern, grid, GPU, dtype, code-version): the loaded pattern, the
:class:`~repro.model.batch.BatchModelEngine`, and the pruned search space as
ConfigBatch columns with its traffic/prediction/simulation arrays already
evaluated — the whole stage-1 tuning state, resident in memory.

On top of the entry sit two payload caches:

* ``hot_predict`` — one payload per requested blocking configuration,
  served straight from the entry's columns when the configuration is in the
  pruned space and from a single-row batch evaluation otherwise;
* ``hot_tune`` — one payload per ``top_k``, produced by re-entering the
  autotuner's stage 2 (:meth:`~repro.tuning.autotuner.AutoTuner.tune_ranked`)
  over the entry's cached ranking.

All three caches are :class:`~repro.obs.SingleFlightCache` instances, so a
stampede of identical concurrent requests runs one build and shares it, and
every hit/miss/eviction lands in the metrics registry.

Payloads are **identical** to what the campaign path stores for the same
:class:`~repro.campaign.jobs.JobSpec` (the batch engine is bit-identical to
the scalar model, and the same ``_json_safe`` canonicalisation is applied),
so a caller may mix the fast path and the store freely — the numbers agree.
The fast path never writes the store: its answers are ephemeral by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

import repro
from repro.campaign.jobs import JobSpec, _json_safe, _predict_config, run_job
from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.batch import (
    BatchMeasurement,
    BatchModelEngine,
    BatchPrediction,
    BatchUnsupportedError,
    ConfigBatch,
    prune_mask,
    supports_pattern,
)
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.obs import MetricsRegistry, SingleFlightCache, get_registry
from repro.stencils.library import load_pattern
from repro.tuning.autotuner import AutoTuner, TuningCandidate
from repro.tuning.search_space import default_search_space

#: Distinct (pattern, grid, GPU, dtype) combinations kept hot.  The paper's
#: full Table-5 matrix is 7 stencils x 2 GPUs x 2 dtypes = 28 entries.
ENTRY_CAPACITY = 32


def _config_key(config: BlockingConfig) -> Tuple[object, ...]:
    return (config.bT, tuple(config.bS), config.hS, config.register_limit)


@dataclass(frozen=True)
class _HotEntry:
    """One (pattern, grid, GPU)'s resident model state.

    ``engine`` is ``None`` for patterns outside the batch layout (1-D);
    their requests fall back to the scalar job runner (still cached).
    """

    pattern: StencilPattern
    grid: GridSpec
    gpu: GpuSpec
    space_size: int
    engine: Optional[BatchModelEngine]
    survivors: Optional[ConfigBatch]
    predicted: Optional[BatchPrediction]
    simulated: Optional[BatchMeasurement]
    index: Dict[Tuple[object, ...], int]
    rank_order: Tuple[int, ...]

    def candidates(self) -> list:
        """The stage-1 ranking, materialised from the cached columns.

        Exactly :meth:`AutoTuner._rank_batched`: stable descending sort over
        the predicted GFLOPS already held in ``predicted``.
        """
        return [
            TuningCandidate(
                self.survivors.config(i), self.engine.prediction(self.predicted, i)
            )
            for i in self.rank_order
        ]


class HotModelCache:
    """Synchronous predict/tune answers from resident ConfigBatch columns."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else get_registry()
        self._entries = SingleFlightCache(
            "hot_batch", capacity=ENTRY_CAPACITY, metrics=self.metrics
        )
        self._predicts = SingleFlightCache(
            "hot_predict", capacity=4096, metrics=self.metrics
        )
        self._tunes = SingleFlightCache("hot_tune", capacity=256, metrics=self.metrics)

    # -- the resident entry ----------------------------------------------------
    @staticmethod
    def _entry_key(spec: JobSpec) -> Tuple[object, ...]:
        return (
            spec.pattern,
            spec.gpu,
            spec.dtype,
            spec.interior,
            spec.time_steps,
            repro.__version__,
        )

    def _entry(self, spec: JobSpec) -> _HotEntry:
        key = self._entry_key(spec)
        entry, _ = self._entries.get_or_build(key, lambda: self._build_entry(spec))
        return entry

    @staticmethod
    def _build_entry(spec: JobSpec) -> _HotEntry:
        pattern = load_pattern(spec.pattern, spec.dtype)
        grid = spec.grid()
        gpu = get_gpu(spec.gpu)
        space = default_search_space(pattern)
        if not supports_pattern(pattern):
            return _HotEntry(
                pattern=pattern, grid=grid, gpu=gpu, space_size=space.size(),
                engine=None, survivors=None, predicted=None, simulated=None,
                index={}, rank_order=(),
            )
        candidates = ConfigBatch.from_space(space)
        survivors = candidates.select(prune_mask(pattern, candidates, gpu))
        engine = BatchModelEngine(pattern, grid, gpu)
        if survivors.size:
            traffic = engine.traffic(survivors)
            predicted = engine.predict(survivors, traffic)
            simulated = engine.simulate(survivors, traffic)
            order = tuple(int(i) for i in np.argsort(-predicted.gflops, kind="stable"))
        else:
            predicted = simulated = None
            order = ()
        index = {
            _config_key(survivors.config(i)): i for i in range(survivors.size)
        }
        return _HotEntry(
            pattern=pattern, grid=grid, gpu=gpu, space_size=space.size(),
            engine=engine, survivors=survivors, predicted=predicted,
            simulated=simulated, index=index, rank_order=order,
        )

    # -- predict ---------------------------------------------------------------
    def predict(self, spec: JobSpec) -> Tuple[Dict[str, object], bool]:
        """``(payload, cache_hit)`` for one predict job spec.

        The payload is field-for-field what the campaign path would store
        for the same spec.  Invalid configurations surface as the model
        layer's :class:`~repro.core.config.ConfigurationError` (the HTTP
        handler maps it to a 400).
        """
        if spec.kind != "predict":
            raise ValueError(f"expected a predict spec, got kind {spec.kind!r}")
        key = ("predict", spec.key())
        return self._predicts.get_or_build(key, lambda: self._build_predict(spec))

    def _build_predict(self, spec: JobSpec) -> Dict[str, object]:
        entry = self._entry(spec)
        if entry.engine is None:
            return run_job(spec)  # 1-D pattern: scalar path, still cached
        config = _predict_config(spec, entry.pattern.ndim)
        config.validate(entry.pattern)
        row = entry.index.get(_config_key(config))
        if row is not None:
            batch, predicted, simulated = entry.survivors, entry.predicted, entry.simulated
        else:
            # Outside the pruned space (explicit register cap, exotic block
            # shape): one-row batch evaluation on the resident engine.
            try:
                batch = ConfigBatch.from_configs([config])
            except BatchUnsupportedError:
                return run_job(spec)
            traffic = entry.engine.traffic(batch)
            predicted = entry.engine.predict(batch, traffic)
            simulated = entry.engine.simulate(batch, traffic)
            row = 0
        payload = {
            "bT": config.bT,
            "bS": list(config.bS),
            "hS": config.hS,
            "regs": config.register_limit,
            "model_gflops": float(predicted.gflops[row]),
            "simulated_gflops": float(simulated.gflops[row]),
            "model_bottleneck": predicted.bottleneck_name(row),
            "simulated_bottleneck": simulated.bottleneck_name(row),
        }
        return {str(k): _json_safe(v) for k, v in payload.items()}

    # -- tune ------------------------------------------------------------------
    def tune(self, spec: JobSpec) -> Tuple[Dict[str, object], bool]:
        """``(payload, cache_hit)`` for one tune job spec (stage 2 on demand)."""
        if spec.kind != "tune":
            raise ValueError(f"expected a tune spec, got kind {spec.kind!r}")
        key = ("tune", spec.key())
        return self._tunes.get_or_build(key, lambda: self._build_tune(spec))

    def _build_tune(self, spec: JobSpec) -> Dict[str, object]:
        entry = self._entry(spec)
        if entry.engine is None:
            return run_job(spec)
        top_k = int(spec.params_dict().get("top_k", 5))
        tuner = AutoTuner(entry.gpu, top_k=top_k)
        result = tuner.tune_ranked(
            entry.pattern, entry.grid, entry.candidates(), explored=entry.space_size
        )
        config = result.best_config
        payload = {
            "bT": config.bT,
            "bS": list(config.bS),
            "hS": config.hS,
            "regs": config.register_limit,
            "tuned_gflops": result.best.measured_gflops,
            "model_gflops": result.best.predicted_gflops,
            "model_accuracy": result.model_accuracy,
            "explored": result.explored,
            "pruned_to": result.pruned_to,
        }
        return {str(k): _json_safe(v) for k, v in payload.items()}


__all__ = ["HotModelCache"]
