"""Async in-process campaign worker.

One daemon thread runs an asyncio event loop that drains submitted
:class:`~repro.campaign.jobs.CampaignSpec` records through the existing
:class:`~repro.campaign.scheduler.CampaignScheduler`:

* batched model ``predict``/``tune`` work is NumPy-bound and fast (PR 3),
  so those campaigns effectively run "inline" on an executor thread;
* scalar-simulator job kinds fan out to the scheduler's multiprocessing
  pool exactly as they do under ``an5d campaign run``;
* a semaphore overlaps several light campaigns so one long sweep does not
  head-of-line-block a model-only campaign submitted after it.

Every result commits to the shared store the moment it finishes, which is
the whole resume story: killing the server process loses at most in-flight
jobs, and the next submission of the same spec is served from the store.

In cluster mode a submission carries an externally supplied
:class:`~repro.campaign.scheduler.ShardPlan` — the coordinator's shard
assignment for this instance — which overrides the worker's default
(settings-derived) plan for that campaign.  Re-forwarding the same campaign
with a *different* plan (how the coordinator re-assigns the shards of a dead
instance) re-enqueues it under the new plan; the scheduler's store dedupe
makes the overlap free.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.jobs import CampaignSpec
from repro.campaign.scheduler import CampaignOutcome, CampaignScheduler, ShardPlan
from repro.campaign.store import ResultStore
from repro.obs import MetricsRegistry, emit_event, get_registry, record_suppressed, span
from repro.obs.trace import TraceContext
from repro.service.wire import campaign_id

#: Campaign lifecycle states reported by the status endpoint.
STATES = ("queued", "running", "done", "failed")


class QueueFull(RuntimeError):
    """Submission rejected by admission control (HTTP 429 at the boundary).

    ``retry_after`` is a drain estimate in whole seconds: current depth over
    the worker's campaign concurrency — honest enough for a client backoff
    hint, cheap enough to compute under the submission lock.
    """

    def __init__(self, depth: int, limit: int, retry_after: int) -> None:
        super().__init__(
            f"campaign queue is full ({depth} queued or running, limit {limit}); "
            f"retry in ~{retry_after}s"
        )
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after


@dataclass
class CampaignRecord:
    """One submitted campaign and the outcome of its most recent run."""

    id: str
    spec: CampaignSpec
    state: str = "queued"
    runs: int = 0
    submitted_seq: int = 0
    plan: Optional[ShardPlan] = None  # None = the worker's default slice
    outcome: Optional[CampaignOutcome] = None
    error: Optional[str] = None
    # Trace context of the submitting request.  Carried explicitly because
    # run_in_executor does not propagate contextvars — the run span below
    # re-establishes it on the executor thread.
    trace: Optional[TraceContext] = None
    enqueued_at: float = 0.0  # perf_counter at (re-)submit, for queue-wait
    # Memoised job content addresses for (spec, plan) — both frozen while
    # the plan stands, so reports/exports stop re-expanding the campaign on
    # every request.  Reset whenever a re-submission swaps the plan.
    job_keys_cache: Optional[List[str]] = field(default=None, repr=False)
    # Re-submitting an in-flight campaign under a widened plan enqueues the
    # record again; this lock serialises the two scheduler runs so they never
    # execute the overlapping slice concurrently.
    run_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def summary(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "runs": self.runs,
            "describe": self.spec.describe(),
        }
        if self.plan is not None:
            summary["shard_plan"] = self.plan.to_json()
        if self.outcome is not None:
            summary["outcome"] = self.outcome.as_row()
        if self.error is not None:
            summary["error"] = self.error
        return summary


@dataclass
class WorkerSettings:
    """Scheduler knobs applied to every campaign the worker runs."""

    workers: int = 1  # multiprocessing fan-out for scalar-simulator jobs
    concurrency: int = 2  # campaigns overlapped by the async loop
    timeout: Optional[float] = None
    retries: int = 1
    shards: int = 1
    shard_index: int = 0
    # Admission control.  ``max_queued`` bounds campaigns in the queued or
    # running states (None = unbounded, the historical behaviour); an
    # over-limit submission raises :class:`QueueFull`, which the service
    # surfaces as 429 + Retry-After.  ``reserve_interactive`` holds that many
    # concurrency slots back from *heavy* campaigns (> ``heavy_jobs`` jobs),
    # so an exhaustive sweep can never occupy every slot and a small
    # interactive campaign always finds one free.
    max_queued: Optional[int] = None
    reserve_interactive: int = 0
    heavy_jobs: int = 64

    def plan(self) -> ShardPlan:
        """The default shard plan these settings describe (validates them)."""
        return ShardPlan(self.shards, (self.shard_index,))


class CampaignWorker:
    """Drains submitted campaigns through the scheduler on an asyncio loop."""

    def __init__(
        self,
        store: ResultStore,
        settings: Optional[WorkerSettings] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self.settings = settings or WorkerSettings()
        self.metrics = metrics if metrics is not None else get_registry()
        # Validate shard settings up front: a bad ``--shards/--shard`` pair
        # must fail at construction, not as a 500 out of the worker loop.
        self._default_plan = self.settings.plan()
        self._records: Dict[str, CampaignRecord] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._queue: Optional[asyncio.Queue] = None
        self._ready = threading.Event()
        self._killed = False

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run_loop, name="campaign-worker", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):  # pragma: no cover — startup hang
            raise RuntimeError("campaign worker event loop failed to start")

    def stop(self, timeout: float = 10.0) -> bool:
        """Finish in-flight campaigns, then stop the loop thread.

        Returns True when the drain completed; False means a campaign is
        still running past the timeout (callers must then leave shared
        resources — the store — alive for it).
        """
        if self._loop is None or self._thread is None:
            return True
        try:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, None)
        except RuntimeError as error:
            # Loop already closed (e.g. after kill()) — fine, but accounted.
            record_suppressed("worker.stop", error, metrics=self.metrics)
        self._thread.join(timeout)
        if self._thread.is_alive():
            return False
        self._thread = None
        self._loop = None
        self._ready.clear()
        return True

    def kill(self) -> None:
        """Simulate a crash: stop picking up work, abandon the loop thread.

        Unlike :meth:`stop` this does not drain — queued campaigns are never
        started, which is what lets tests kill a cluster instance
        "mid-campaign" and watch the coordinator re-assign its shards.
        """
        self._killed = True
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._queue.put_nowait, None)
            except RuntimeError:  # pragma: no cover — loop already closed
                pass

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._queue = asyncio.Queue()
        loop.call_soon(self._ready.set)
        try:
            loop.run_until_complete(self._drain())
        finally:
            loop.close()

    async def _drain(self) -> None:
        concurrency = max(1, self.settings.concurrency)
        reserve = max(0, min(self.settings.reserve_interactive, concurrency - 1))
        semaphore = asyncio.Semaphore(concurrency)
        # The interactive lane: heavy campaigns must additionally pass this
        # narrower semaphore, leaving ``reserve`` total-slots only light
        # campaigns can fill.  Acquisition order is fixed (heavy, then
        # total), so the two semaphores cannot deadlock.
        heavy_semaphore = (
            asyncio.Semaphore(concurrency - reserve) if reserve else None
        )
        tasks: set = set()
        while True:
            record = await self._queue.get()
            if record is None or self._killed:
                break
            task = asyncio.create_task(
                self._run_one(record, semaphore, heavy_semaphore)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks and not self._killed:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _run_one(
        self,
        record: CampaignRecord,
        semaphore: asyncio.Semaphore,
        heavy_semaphore: Optional[asyncio.Semaphore] = None,
    ) -> None:
        heavy = (
            heavy_semaphore is not None
            and record.spec.size() > self.settings.heavy_jobs
        )
        if heavy:
            async with heavy_semaphore:
                async with semaphore:
                    await self._run_admitted(record)
        else:
            async with semaphore:
                await self._run_admitted(record)
        self._update_depth_gauge()

    async def _run_admitted(self, record: CampaignRecord) -> None:
        with self._lock:
            if self._killed:
                return
            record.state = "running"
            spec, plan, seq = record.spec, record.plan, record.runs
            enqueued_at = record.enqueued_at
        if enqueued_at:
            self.metrics.histogram(
                "campaign_queue_wait_seconds",
                "Time campaigns wait between submit and execution start",
            ).observe(time.perf_counter() - enqueued_at)
        loop = asyncio.get_running_loop()
        try:
            # The scheduler blocks (NumPy, SQLite, mp pool), so it runs on
            # an executor thread; the loop stays free to start overlapping
            # campaigns and to answer nothing — HTTP threads never enter it.
            outcome = await loop.run_in_executor(None, self._execute, record, spec, plan)
        except Exception as error:  # noqa: BLE001 — surfaced via status
            self.metrics.counter(
                "campaign_failures_total",
                "Campaign runs that raised out of the scheduler",
                labels=("error_class",),
            ).inc(error_class=type(error).__name__)
            emit_event(
                "campaign_failed",
                campaign=record.id,
                error_class=type(error).__name__,
                detail=str(error)[:500],
            )
            with self._lock:
                if record.runs == seq:
                    record.state = "failed"
                    record.error = f"{type(error).__name__}: {error}"
            return
        with self._lock:
            # A re-submission may have superseded this run (record.runs
            # moved on) — its own task will write the terminal state.
            if record.runs == seq:
                record.outcome = outcome
                record.error = None
                record.state = "done" if outcome.ok else "failed"
        emit_event(
            "campaign_run_finished",
            campaign=record.id,
            ok=outcome.ok,
            executed=outcome.executed,
            cached=outcome.cached,
            failed=outcome.failed,
            duration_s=round(outcome.duration_s, 3),
        )

    def _scheduler(
        self,
        spec: CampaignSpec,
        plan: Optional[ShardPlan] = None,
        campaign_id: Optional[str] = None,
    ) -> CampaignScheduler:
        """One scheduler per use, always under one shard plan — execution,
        progress counts and export key sets must agree on which slice of the
        campaign this instance owns."""
        return CampaignScheduler(
            spec,
            self.store,
            workers=self.settings.workers,
            timeout=self.settings.timeout,
            retries=self.settings.retries,
            plan=plan if plan is not None else self._default_plan,
            metrics=self.metrics,
            campaign_id=campaign_id,
        )

    def _execute(
        self, record: CampaignRecord, spec: CampaignSpec, plan: Optional[ShardPlan]
    ) -> CampaignOutcome:
        # Runs on an executor thread: the shared store hands this thread its
        # own SQLite connection (one writer per connection).  The record lock
        # serialises overlapping runs of one campaign (plan re-assignment).
        # The span re-establishes the submitting request's trace context on
        # this thread (run_in_executor drops contextvars), so wire commits
        # issued inside the scheduler inherit it.
        with record.run_lock:
            with span("campaign.run", parent=record.trace, campaign=record.id):
                return self._scheduler(spec, plan, campaign_id=record.id).run()

    # -- submission / inspection ----------------------------------------------
    def submit(
        self,
        spec: CampaignSpec,
        plan: Optional[ShardPlan] = None,
        trace: Optional[TraceContext] = None,
    ) -> CampaignRecord:
        """Enqueue a campaign; idempotent while an equal (spec, plan) is in flight.

        A finished (done/failed) campaign re-enqueues: the scheduler dedupes
        against the store, so a warm re-submission costs one plan pass and
        reports ``cache_hit_rate == 1.0``.  Re-submitting an in-flight
        campaign under a *different* shard plan re-enqueues it too — that is
        how the coordinator hands this instance the shards of a dead peer.

        With :attr:`WorkerSettings.max_queued` set, a submission that would
        push the queued-or-running count past the limit raises
        :class:`QueueFull` — but only *after* the dedupe check, so re-posting
        an in-flight campaign never 429s.
        """
        if self._loop is None:
            raise RuntimeError("campaign worker is not running")
        cid = campaign_id(spec)
        with self._lock:
            record = self._records.get(cid)
            if (
                record is not None
                and record.state in ("queued", "running")
                and record.plan == plan
            ):
                return record
            limit = self.settings.max_queued
            if limit is not None:
                depth = sum(
                    1
                    for r in self._records.values()
                    if r.state in ("queued", "running")
                )
                if depth >= limit:
                    self.metrics.counter(
                        "campaign_rejections_total",
                        "Campaign submissions rejected by admission control",
                    ).inc()
                    retry_after = max(
                        1, round(depth / max(1, self.settings.concurrency))
                    )
                    raise QueueFull(depth=depth, limit=limit, retry_after=retry_after)
            if record is None:
                record = CampaignRecord(
                    id=cid, spec=spec, plan=plan, submitted_seq=next(self._seq)
                )
                self._records[cid] = record
            else:
                record.plan = plan
                record.job_keys_cache = None  # plan changed: keys may differ
                record.state = "queued"
            if trace is not None:
                record.trace = trace
            record.enqueued_at = time.perf_counter()
            record.runs += 1
            run = record.runs
        self._update_depth_gauge()
        emit_event(
            "campaign_submitted",
            campaign=cid,
            run=run,
            sharded=plan is not None,
            traced=trace is not None,
        )
        self._loop.call_soon_threadsafe(self._queue.put_nowait, record)
        return record

    def _update_depth_gauge(self) -> None:
        with self._lock:
            depth = sum(
                1 for r in self._records.values() if r.state in ("queued", "running")
            )
        self.metrics.gauge(
            "campaign_queue_depth", "Campaigns queued or running right now"
        ).set(depth)

    def get(self, cid: str) -> Optional[CampaignRecord]:
        with self._lock:
            return self._records.get(cid)

    def records(self) -> List[CampaignRecord]:
        """All known campaigns in submission order."""
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.submitted_seq)

    def status(self, cid: str) -> Optional[Dict[str, object]]:
        """Lifecycle state plus live per-job counts read from the store."""
        record = self.get(cid)
        if record is None:
            return None
        with self._lock:
            payload = record.summary()
            spec, plan = record.spec, record.plan
        payload["jobs"] = self._scheduler(spec, plan).progress_counts()
        payload["spec"] = spec.to_json()
        return payload

    def job_keys(self, cid: str) -> Optional[List[str]]:
        """This instance's slice of the campaign's job content addresses
        (scopes exports and reports)."""
        record = self.get(cid)
        if record is None:
            return None
        with self._lock:
            if record.job_keys_cache is None:
                record.job_keys_cache = self._scheduler(
                    record.spec, record.plan
                ).job_keys()
            return list(record.job_keys_cache)
