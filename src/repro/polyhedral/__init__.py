"""A small polyhedral toolkit (the stand-in for PPCG / isl).

AN5D is implemented as a dedicated backend inside PPCG; it relies on the
polyhedral frontend only for normalisation, dependence information and the
iteration-domain bookkeeping of its restricted input language.  This package
provides exactly that slice of functionality:

* :mod:`repro.polyhedral.linexpr` — affine expressions over named variables,
* :mod:`repro.polyhedral.sets` — integer sets described by affine constraints
  with Fourier–Motzkin projection and emptiness testing,
* :mod:`repro.polyhedral.domain` — iteration domains of stencil loop nests,
* :mod:`repro.polyhedral.dependence` — flow-dependence analysis and the halo
  arithmetic it implies,
* :mod:`repro.polyhedral.schedule` — band schedules and rectangular tiling.
"""

from repro.polyhedral.linexpr import LinExpr
from repro.polyhedral.sets import Constraint, IntegerSet
from repro.polyhedral.domain import IterationDomain, stencil_iteration_domain
from repro.polyhedral.dependence import (
    DependenceVector,
    flow_dependences,
    max_negative_reach,
    required_halo,
    tiling_is_legal,
)
from repro.polyhedral.schedule import Band, ScheduleTree, tile_band

__all__ = [
    "Band",
    "Constraint",
    "DependenceVector",
    "IntegerSet",
    "IterationDomain",
    "LinExpr",
    "ScheduleTree",
    "flow_dependences",
    "max_negative_reach",
    "required_halo",
    "stencil_iteration_domain",
    "tile_band",
    "tiling_is_legal",
]
