"""Band schedules and rectangular tiling.

PPCG represents schedules as trees of bands; AN5D's transformation can be
seen as (1) tiling the time band by ``bT``, (2) tiling the non-streaming
spatial bands by ``bS_i`` with overlap, and (3) streaming the remaining
spatial band.  The loop-tiling baseline reuses the same machinery with plain
(non-overlapped) rectangular tiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Band:
    """A schedule band: an ordered group of loop dimensions."""

    members: Tuple[str, ...]
    tile_sizes: Tuple[int, ...] | None = None
    overlapped: bool = False
    streamed_member: str | None = None

    def __post_init__(self) -> None:
        if self.tile_sizes is not None and len(self.tile_sizes) != len(self.members):
            raise ValueError("tile_sizes must match band members")
        if self.streamed_member is not None and self.streamed_member not in self.members:
            raise ValueError("streamed member must belong to the band")

    @property
    def is_tiled(self) -> bool:
        return self.tile_sizes is not None


@dataclass(frozen=True)
class ScheduleTree:
    """A (linear) schedule tree: an ordered sequence of bands.

    The restricted stencil programs AN5D accepts always produce a two-band
    tree — the time band followed by the spatial band — so a sequence is
    sufficient; no filter/extension nodes are needed.
    """

    bands: Tuple[Band, ...]

    @property
    def loop_order(self) -> Tuple[str, ...]:
        order: list[str] = []
        for band in self.bands:
            order.extend(band.members)
        return tuple(order)

    def replace_band(self, index: int, band: Band) -> "ScheduleTree":
        bands = list(self.bands)
        bands[index] = band
        return ScheduleTree(tuple(bands))


def initial_schedule(time_var: str, spatial_vars: Sequence[str]) -> ScheduleTree:
    """The identity schedule of a stencil nest: time band then space band."""
    return ScheduleTree((Band((time_var,)), Band(tuple(spatial_vars))))


def tile_band(band: Band, tile_sizes: Sequence[int], overlapped: bool = False) -> Band:
    """Tile a band rectangularly (optionally with overlapped tiles)."""
    sizes = tuple(int(s) for s in tile_sizes)
    if any(s < 1 for s in sizes):
        raise ValueError("tile sizes must be positive")
    return replace(band, tile_sizes=sizes, overlapped=overlapped)


def an5d_schedule(
    time_var: str,
    spatial_vars: Sequence[str],
    time_block: int,
    spatial_blocks: Sequence[int],
    stream_block: int | None,
) -> ScheduleTree:
    """Build the schedule tree corresponding to an AN5D configuration.

    The first spatial variable is the streaming dimension; the remaining ones
    are blocked with overlapped tiles of the given sizes.  ``stream_block``
    (the paper's ``hS_N``) optionally tiles the streaming dimension as well
    (Section 4.2.3, division of the streaming dimension).
    """
    spatial_vars = tuple(spatial_vars)
    if len(spatial_blocks) != len(spatial_vars) - 1:
        raise ValueError("expected one spatial block size per non-streaming dimension")
    time_band = tile_band(Band((time_var,)), (time_block,))
    stream_var = spatial_vars[0]
    stream_sizes = (stream_block,) if stream_block is not None else None
    space_band = Band(
        spatial_vars,
        tile_sizes=(stream_sizes[0] if stream_sizes else 0,) + tuple(spatial_blocks)
        if stream_sizes
        else None,
        overlapped=True,
        streamed_member=stream_var,
    )
    if stream_sizes is None:
        # Leave the streaming dimension untiled but mark blocked dims.
        space_band = Band(
            spatial_vars,
            tile_sizes=(0,) + tuple(spatial_blocks),
            overlapped=True,
            streamed_member=stream_var,
        )
    return ScheduleTree((time_band, space_band))


def loop_tiling_schedule(
    time_var: str, spatial_vars: Sequence[str], tile_sizes: Sequence[int]
) -> ScheduleTree:
    """The PPCG default loop-tiling schedule used as the weakest baseline."""
    spatial_vars = tuple(spatial_vars)
    if len(tile_sizes) != len(spatial_vars):
        raise ValueError("expected one tile size per spatial dimension")
    return ScheduleTree(
        (
            Band((time_var,)),
            tile_band(Band(spatial_vars), tile_sizes, overlapped=False),
        )
    )
