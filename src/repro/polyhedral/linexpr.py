"""Affine (linear + constant) expressions over named integer variables."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Mapping


@dataclass(frozen=True)
class LinExpr:
    """An affine expression ``sum(coeff[v] * v) + const``.

    Coefficients are exact rationals so that Fourier–Motzkin elimination does
    not lose precision; variables with a zero coefficient are never stored.
    """

    coeffs: Mapping[str, Fraction] = field(default_factory=dict)
    const: Fraction = Fraction(0)

    def __post_init__(self) -> None:
        cleaned = {
            var: Fraction(c) for var, c in self.coeffs.items() if Fraction(c) != 0
        }
        object.__setattr__(self, "coeffs", cleaned)
        object.__setattr__(self, "const", Fraction(self.const))

    # -- constructors --------------------------------------------------------
    @staticmethod
    def var(name: str, coeff: int | Fraction = 1) -> "LinExpr":
        return LinExpr({name: Fraction(coeff)})

    @staticmethod
    def constant(value: int | Fraction) -> "LinExpr":
        return LinExpr({}, Fraction(value))

    # -- queries ---------------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    def coefficient(self, var: str) -> Fraction:
        return self.coeffs.get(var, Fraction(0))

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, assignment: Mapping[str, int | Fraction]) -> Fraction:
        total = Fraction(self.const)
        for var, coeff in self.coeffs.items():
            if var not in assignment:
                raise KeyError(f"no value for variable {var!r}")
            total += coeff * Fraction(assignment[var])
        return total

    # -- arithmetic ------------------------------------------------------------
    def _combine(self, other: "LinExpr | int | Fraction", sign: int) -> "LinExpr":
        other = _as_linexpr(other)
        coeffs: Dict[str, Fraction] = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, Fraction(0)) + sign * coeff
        return LinExpr(coeffs, self.const + sign * other.const)

    def __add__(self, other: "LinExpr | int | Fraction") -> "LinExpr":
        return self._combine(other, 1)

    __radd__ = __add__

    def __sub__(self, other: "LinExpr | int | Fraction") -> "LinExpr":
        return self._combine(other, -1)

    def __rsub__(self, other: "LinExpr | int | Fraction") -> "LinExpr":
        return _as_linexpr(other)._combine(self, -1)

    def __mul__(self, scalar: int | Fraction) -> "LinExpr":
        factor = Fraction(scalar)
        return LinExpr({v: c * factor for v, c in self.coeffs.items()}, self.const * factor)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        return LinExpr(
            {mapping.get(v, v): c for v, c in self.coeffs.items()}, self.const
        )

    def substitute(self, var: str, replacement: "LinExpr") -> "LinExpr":
        """Replace ``var`` by an affine expression."""
        if var not in self.coeffs:
            return self
        coeff = self.coeffs[var]
        remaining = LinExpr({v: c for v, c in self.coeffs.items() if v != var}, self.const)
        return remaining + replacement * coeff

    def __repr__(self) -> str:
        parts = [f"{c}*{v}" for v, c in sorted(self.coeffs.items())]
        parts.append(str(self.const))
        return " + ".join(parts)


def _as_linexpr(value: "LinExpr | int | Fraction") -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.constant(Fraction(value))


def sum_exprs(exprs: Iterable[LinExpr]) -> LinExpr:
    total = LinExpr.constant(0)
    for expr in exprs:
        total = total + expr
    return total
