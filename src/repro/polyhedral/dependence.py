"""Flow-dependence analysis for Jacobi stencils.

For a double-buffered stencil that writes ``A[t+1][x]`` and reads
``A[t][x + d]`` for each neighbour offset ``d``, the flow dependences are the
distance vectors ``(1, -d)``.  From these the framework derives:

* the halo width required to combine ``bT`` time steps with overlapped
  tiling (``bT * rad`` per side, Section 2.3),
* legality of a rectangular space/time tiling (all dependences must stay
  within the halo the tile provides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.ir.stencil import StencilPattern


@dataclass(frozen=True)
class DependenceVector:
    """A flow-dependence distance ``(time, space...)`` between iterations."""

    time: int
    space: Tuple[int, ...]

    @property
    def is_lexicographically_positive(self) -> bool:
        if self.time != 0:
            return self.time > 0
        for component in self.space:
            if component != 0:
                return component > 0
        return False


def flow_dependences(pattern: StencilPattern) -> list[DependenceVector]:
    """All flow dependences of one stencil update.

    The write at iteration ``(t, x)`` (storing time step ``t + 1``) is read by
    iteration ``(t + 1, x - d)`` for every neighbour offset ``d``, giving the
    distance vector ``(1, -d)``.
    """
    return [
        DependenceVector(1, tuple(-component for component in offset))
        for offset in pattern.offsets
    ]


def max_negative_reach(pattern: StencilPattern) -> Tuple[int, ...]:
    """Per-dimension maximum dependence reach (equals the stencil radius)."""
    reach = [0] * pattern.ndim
    for dep in flow_dependences(pattern):
        for dim, component in enumerate(dep.space):
            reach[dim] = max(reach[dim], abs(component))
    return tuple(reach)


def required_halo(pattern: StencilPattern, time_block: int) -> Tuple[int, ...]:
    """Halo width per side required for overlapped tiling of ``time_block`` steps.

    Each combined time step widens the dependence cone by the stencil radius,
    so after ``bT`` steps a block needs ``bT * rad`` extra cells on each side
    of each blocked dimension (Section 2.3: blocks overlap by
    ``2 * bT * rad``).
    """
    if time_block < 1:
        raise ValueError("time_block must be at least 1")
    return tuple(time_block * reach for reach in max_negative_reach(pattern))


def tiling_is_legal(
    pattern: StencilPattern,
    time_block: int,
    block_sizes: Sequence[int],
    blocked_dims: Sequence[int] | None = None,
) -> bool:
    """Check that an overlapped space/time tile is well formed.

    A tile of ``block_sizes`` cells per blocked dimension processing
    ``time_block`` time steps is legal when every blocked dimension retains a
    non-empty compute region after shrinking by the halo on both sides, and
    every dependence is lexicographically positive (always true for Jacobi
    stencils, asserted for safety).
    """
    if blocked_dims is None:
        blocked_dims = list(range(len(block_sizes)))
    if len(blocked_dims) != len(block_sizes):
        raise ValueError("block_sizes and blocked_dims must have equal length")
    deps = flow_dependences(pattern)
    if not all(dep.is_lexicographically_positive for dep in deps):
        return False
    halo = required_halo(pattern, time_block)
    for dim, size in zip(blocked_dims, block_sizes):
        if size - 2 * halo[dim] <= 0:
            return False
    return True


def dependence_cone_volume(pattern: StencilPattern, time_block: int) -> int:
    """Number of source cells one output cell transitively depends on.

    Used by tests as an independent check of the halo formula: the dependence
    cone after ``bT`` steps spans ``2 * bT * rad + 1`` cells per dimension for
    box stencils and is contained in that box for star stencils.
    """
    halo = required_halo(pattern, time_block)
    volume = 1
    for width in halo:
        volume *= 2 * width + 1
    return volume
