"""Iteration domains of stencil loop nests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.ir.stencil import GridSpec, StencilPattern
from repro.polyhedral.linexpr import LinExpr
from repro.polyhedral.sets import Constraint, IntegerSet

TIME_VAR = "t"
SPACE_VARS = ("s0", "s1", "s2")


@dataclass(frozen=True)
class IterationDomain:
    """The integer set of (time, space...) iterations of one stencil nest."""

    space: IntegerSet
    time_var: str
    spatial_vars: Tuple[str, ...]

    @property
    def ndim(self) -> int:
        return len(self.spatial_vars)

    def spatial_extent(self, dim: int) -> int:
        low, high = self.space.integer_bounds(self.spatial_vars[dim])
        return high - low + 1

    def time_extent(self) -> int:
        low, high = self.space.integer_bounds(self.time_var)
        return high - low + 1

    def cells_per_time_step(self) -> int:
        total = 1
        for dim in range(self.ndim):
            total *= self.spatial_extent(dim)
        return total

    def total_updates(self) -> int:
        return self.cells_per_time_step() * self.time_extent()

    def restrict_time(self, start: int, stop: int) -> "IterationDomain":
        """Sub-domain covering time steps ``start .. stop - 1``."""
        restricted = self.space.with_constraint(
            Constraint.ge(LinExpr.var(self.time_var), LinExpr.constant(start)),
            Constraint.le(LinExpr.var(self.time_var), LinExpr.constant(stop - 1)),
        )
        return IterationDomain(restricted, self.time_var, self.spatial_vars)


def stencil_iteration_domain(pattern: StencilPattern, grid: GridSpec) -> IterationDomain:
    """Build the iteration domain of ``pattern`` over ``grid``.

    Spatial variables use zero-based indexing of the interior cells (the
    boundary ring is not iterated, matching the benchmarks' ``1 .. I_S``
    loops shifted to ``0 .. I_S - 1``).
    """
    if grid.ndim != pattern.ndim:
        raise ValueError("grid dimensionality does not match stencil pattern")
    spatial_vars = SPACE_VARS[: pattern.ndim]
    bounds: dict[str, tuple[int, int]] = {TIME_VAR: (0, max(grid.time_steps - 1, 0))}
    for var, extent in zip(spatial_vars, grid.interior):
        bounds[var] = (0, extent - 1)
    return IterationDomain(IntegerSet.box(bounds), TIME_VAR, tuple(spatial_vars))


def block_domain(
    pattern: StencilPattern,
    grid: GridSpec,
    block_origin: Sequence[int],
    block_size: Sequence[int],
) -> IntegerSet:
    """The spatial set covered by one thread block (before halo clipping)."""
    spatial_vars = SPACE_VARS[: pattern.ndim]
    constraints = []
    for var, origin, size, extent in zip(spatial_vars, block_origin, block_size, grid.interior):
        constraints.append(Constraint.ge(LinExpr.var(var), LinExpr.constant(origin)))
        constraints.append(Constraint.le(LinExpr.var(var), LinExpr.constant(origin + size - 1)))
        constraints.append(Constraint.ge(LinExpr.var(var), LinExpr.constant(0)))
        constraints.append(Constraint.le(LinExpr.var(var), LinExpr.constant(extent - 1)))
    return IntegerSet(spatial_vars, constraints)
