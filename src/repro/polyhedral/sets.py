"""Integer sets described by conjunctions of affine constraints.

This is the minimal slice of isl needed by the AN5D reproduction: basic sets
(single conjunctions), intersection, rational emptiness testing and variable
elimination via Fourier–Motzkin, per-variable bounds, membership tests and
exact point counting for box-shaped sets (which is all the execution model
needs — iteration domains of rectangular loop nests are boxes).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence, Tuple

from repro.polyhedral.linexpr import LinExpr


@dataclass(frozen=True)
class Constraint:
    """An affine constraint ``expr >= 0`` (or ``expr == 0`` when ``equality``)."""

    expr: LinExpr
    equality: bool = False

    @staticmethod
    def ge(lhs: LinExpr, rhs: LinExpr | int = 0) -> "Constraint":
        """Constraint ``lhs >= rhs``."""
        return Constraint(lhs - rhs)

    @staticmethod
    def le(lhs: LinExpr, rhs: LinExpr | int = 0) -> "Constraint":
        """Constraint ``lhs <= rhs``."""
        return Constraint((rhs - lhs) if isinstance(rhs, LinExpr) else (LinExpr.constant(rhs) - lhs))

    @staticmethod
    def eq(lhs: LinExpr, rhs: LinExpr | int = 0) -> "Constraint":
        """Constraint ``lhs == rhs``."""
        diff = lhs - rhs if isinstance(rhs, LinExpr) else lhs - LinExpr.constant(rhs)
        return Constraint(diff, equality=True)

    def satisfied(self, assignment: Mapping[str, int | Fraction]) -> bool:
        value = self.expr.evaluate(assignment)
        return value == 0 if self.equality else value >= 0

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.equality)


class IntegerSet:
    """A conjunction of affine constraints over a fixed tuple of variables."""

    def __init__(self, variables: Sequence[str], constraints: Iterable[Constraint] = ()) -> None:
        self.variables: Tuple[str, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("duplicate variables in set space")
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        for constraint in self.constraints:
            unknown = constraint.expr.variables - set(self.variables)
            if unknown:
                raise ValueError(f"constraint references unknown variables {sorted(unknown)}")

    # -- constructors --------------------------------------------------------
    @staticmethod
    def box(bounds: Mapping[str, tuple[int, int]]) -> "IntegerSet":
        """The box ``lower <= var <= upper`` for each entry of ``bounds``."""
        constraints = []
        for var, (lower, upper) in bounds.items():
            constraints.append(Constraint.ge(LinExpr.var(var), LinExpr.constant(lower)))
            constraints.append(Constraint.le(LinExpr.var(var), LinExpr.constant(upper)))
        return IntegerSet(tuple(bounds), constraints)

    @staticmethod
    def universe(variables: Sequence[str]) -> "IntegerSet":
        return IntegerSet(variables)

    # -- basic operations ------------------------------------------------------
    def with_constraint(self, *constraints: Constraint) -> "IntegerSet":
        return IntegerSet(self.variables, self.constraints + tuple(constraints))

    def intersect(self, other: "IntegerSet") -> "IntegerSet":
        if set(self.variables) != set(other.variables):
            raise ValueError("cannot intersect sets over different spaces")
        return IntegerSet(self.variables, self.constraints + other.constraints)

    def rename(self, mapping: Mapping[str, str]) -> "IntegerSet":
        return IntegerSet(
            tuple(mapping.get(v, v) for v in self.variables),
            tuple(c.rename(mapping) for c in self.constraints),
        )

    def contains(self, point: Mapping[str, int] | Sequence[int]) -> bool:
        if not isinstance(point, Mapping):
            point = dict(zip(self.variables, point))
        return all(constraint.satisfied(point) for constraint in self.constraints)

    # -- Fourier–Motzkin --------------------------------------------------------
    def _normalised_inequalities(self) -> list[LinExpr]:
        """All constraints as a list of inequalities ``expr >= 0``."""
        inequalities: list[LinExpr] = []
        for constraint in self.constraints:
            inequalities.append(constraint.expr)
            if constraint.equality:
                inequalities.append(-constraint.expr)
        return inequalities

    def project_out(self, var: str) -> "IntegerSet":
        """Eliminate ``var`` (rational Fourier–Motzkin projection)."""
        if var not in self.variables:
            raise ValueError(f"{var!r} is not a variable of this set")
        lowers: list[LinExpr] = []  # expressions e with  var >= e
        uppers: list[LinExpr] = []  # expressions e with  var <= e
        free: list[LinExpr] = []
        for expr in self._normalised_inequalities():
            coeff = expr.coefficient(var)
            if coeff == 0:
                free.append(expr)
                continue
            # expr >= 0  <=>  coeff*var >= -(expr - coeff*var)
            rest = expr - LinExpr.var(var, coeff)
            bound = -rest * (Fraction(1) / coeff)
            if coeff > 0:
                lowers.append(bound)  # var >= bound
            else:
                uppers.append(bound)  # var <= bound
        new_constraints = [Constraint(expr) for expr in free]
        for low in lowers:
            for up in uppers:
                new_constraints.append(Constraint(up - low))
        remaining = tuple(v for v in self.variables if v != var)
        return IntegerSet(remaining, new_constraints)

    def is_empty(self) -> bool:
        """Rational emptiness test by eliminating every variable.

        Exact for the rational relaxation; for the box-like sets used by the
        execution model this coincides with integer emptiness.
        """
        current = self
        for var in self.variables:
            current = current.project_out(var)
        return any(
            constraint.expr.const < 0 or (constraint.equality and constraint.expr.const != 0)
            for constraint in current.constraints
        )

    def bounds(self, var: str) -> tuple[Fraction | None, Fraction | None]:
        """Rational lower/upper bounds of ``var`` over the set (None = unbounded)."""
        others = [v for v in self.variables if v != var]
        current = self
        for other in others:
            current = current.project_out(other)
        lower: Fraction | None = None
        upper: Fraction | None = None
        for expr in current._normalised_inequalities():
            coeff = expr.coefficient(var)
            if coeff == 0:
                continue
            bound = -(expr.const) / coeff
            if coeff > 0:
                lower = bound if lower is None else max(lower, bound)
            else:
                upper = bound if upper is None else min(upper, bound)
        return lower, upper

    # -- enumeration -------------------------------------------------------------
    def integer_bounds(self, var: str) -> tuple[int, int]:
        lower, upper = self.bounds(var)
        if lower is None or upper is None:
            raise ValueError(f"variable {var!r} is unbounded")
        return math.ceil(lower), math.floor(upper)

    def points(self, limit: int = 1_000_000) -> Iterator[Tuple[int, ...]]:
        """Enumerate integer points (bounded sets only).

        Enumeration walks the bounding box and filters by membership, so it is
        only intended for the small sets used in tests and halo accounting.
        """
        ranges = []
        total = 1
        for var in self.variables:
            low, high = self.integer_bounds(var)
            if high < low:
                return
            span = high - low + 1
            total *= span
            if total > limit:
                raise ValueError(f"set too large to enumerate (> {limit} candidate points)")
            ranges.append(range(low, high + 1))
        for candidate in itertools.product(*ranges):
            if self.contains(candidate):
                yield candidate

    def count(self, limit: int = 1_000_000) -> int:
        """Number of integer points in the set (bounded sets only)."""
        if self.is_empty():
            return 0
        if self._is_box():
            total = 1
            for var in self.variables:
                low, high = self.integer_bounds(var)
                if high < low:
                    return 0
                total *= high - low + 1
            return total
        return sum(1 for _ in self.points(limit))

    def _is_box(self) -> bool:
        """True when every constraint involves at most one variable."""
        return all(len(c.expr.variables) <= 1 for c in self.constraints)

    def __repr__(self) -> str:
        return f"IntegerSet({list(self.variables)}, {len(self.constraints)} constraints)"
