"""Observability layer: metrics, traces and structured events (stdlib-only).

Three small, independent pieces:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges and
  fixed-bucket histograms (p50/p95/p99 readouts), rendered in Prometheus
  text format for ``GET /metrics`` and parsed back by ``an5d top``;
* :mod:`repro.obs.trace` — trace/span context propagated across the cluster
  wire as explicit envelope fields (``trace_id``/``span_id`` — never a
  timestamp, matching the receiver-stamped clock policy); every process
  records its own spans with locally measured durations;
* :mod:`repro.obs.events` — structured JSONL event logging with one
  process-wide sink (ring buffer, optionally mirrored to a file).

Nothing in here imports the rest of ``repro`` and nothing needs a
third-party package, so any layer — store, scheduler, cluster, service —
can instrument itself without import cycles or new dependencies.
"""

from repro.obs.cache import SingleFlightCache
from repro.obs.events import (
    EVENTS,
    EventLog,
    EventSubscription,
    emit_event,
    record_suppressed,
)
from repro.obs.profile import (
    PROFILER,
    SamplingProfiler,
    arm_profiler,
    disarm_profiler,
    profile_for,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    parse_prometheus,
    set_registry,
)
from repro.obs.trace import (
    SPANS,
    SpanStore,
    TraceContext,
    context_from_wire,
    context_to_wire,
    current_trace,
    new_span_id,
    new_trace_id,
    span,
)

__all__ = [
    "Counter",
    "EVENTS",
    "EventLog",
    "EventSubscription",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "PROFILER",
    "SPANS",
    "SamplingProfiler",
    "SingleFlightCache",
    "SpanStore",
    "TraceContext",
    "arm_profiler",
    "context_from_wire",
    "context_to_wire",
    "current_trace",
    "disarm_profiler",
    "emit_event",
    "get_registry",
    "profile_for",
    "new_span_id",
    "new_trace_id",
    "parse_prometheus",
    "record_suppressed",
    "set_registry",
    "span",
]
