"""``an5d top`` — cluster-wide throughput/queue/latency view from ``/metrics``.

One-shot or ``--watch``: discover the live instances from any member's
``GET /cluster/instances`` (falling back to the given URL for a solo
server), scrape each instance's ``GET /metrics``, and render one row per
instance — request totals and p99 latency, per-kind job throughput, queue
depths (in-flight requests, wire journal) and the coordinator's shard
re-assignment counter.  In watch mode, rates are computed from the deltas
between two consecutive scrapes.

Stdlib only (urllib); the parsing/quantile machinery is shared with the
registry in :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import parse_prometheus, scrape_quantile

Samples = Dict[str, List[Tuple[Dict[str, str], float]]]


def _fetch(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def discover_instances(url: str, timeout: float = 5.0) -> List[Dict[str, object]]:
    """Live instances reachable from ``url`` (itself, for a solo server)."""
    base = url.rstrip("/")
    try:
        payload = json.loads(_fetch(base + "/cluster/instances", timeout))
        instances = [
            {
                "id": str(row.get("instance_id", "?")),
                "role": str(row.get("role", "?")),
                "url": str(row.get("url", "")),
                "live": bool(row.get("live", False)),
            }
            for row in payload.get("instances", [])
        ]
        if instances:
            return instances
    except (urllib.error.URLError, OSError, ValueError, KeyError):
        pass  # not a cluster member (409/404) or unreachable: solo fallback
    return [{"id": base, "role": "solo", "url": base, "live": True}]


def scrape(url: str, timeout: float = 5.0) -> Optional[Samples]:
    """One instance's parsed ``/metrics`` (None when unreachable)."""
    try:
        body = _fetch(url.rstrip("/") + "/metrics", timeout)
        return parse_prometheus(body.decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def _series_total(samples: Samples, name: str, **match: str) -> float:
    total = 0.0
    for labels, value in samples.get(name, []):
        if any(labels.get(key) != expected for key, expected in match.items()):
            continue
        total += value
    return total


def instance_row(
    instance: Dict[str, object], samples: Optional[Samples]
) -> Dict[str, object]:
    """The numbers one ``top`` row shows for one instance."""
    row: Dict[str, object] = {
        "id": instance["id"],
        "role": instance["role"],
        "live": instance["live"],
        "reachable": samples is not None,
    }
    if samples is None:
        return row
    row.update(
        {
            "requests": _series_total(samples, "requests_total"),
            "req_p99_ms": scrape_quantile(samples, "request_seconds", 0.99) * 1000.0,
            "in_flight": _series_total(samples, "requests_in_flight"),
            "jobs_ok": _series_total(samples, "jobs_completed_total", status="ok"),
            "jobs_failed": _series_total(samples, "jobs_completed_total", status="failed"),
            "job_p99_ms": scrape_quantile(samples, "job_execution_seconds", 0.99) * 1000.0,
            "journal": _series_total(samples, "journal_pending"),
            "reassigned": _series_total(samples, "cluster_reassign_total"),
            "swallowed": _series_total(samples, "errors_swallowed_total"),
            "cache_hits": _series_total(samples, "cache_hits_total"),
            "cache_misses": _series_total(samples, "cache_misses_total"),
        }
    )
    return row


def cache_ratio(row: Dict[str, object]) -> Optional[float]:
    """Hit fraction across all this instance's caches (None = no traffic)."""
    hits = float(row.get("cache_hits", 0.0))
    misses = float(row.get("cache_misses", 0.0))
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def collect(url: str, timeout: float = 5.0) -> List[Dict[str, object]]:
    """Scrape every live instance reachable from ``url`` into top rows."""
    rows = []
    for instance in discover_instances(url, timeout):
        samples = scrape(str(instance["url"]), timeout) if instance["live"] else None
        rows.append(instance_row(instance, samples))
    return rows


def _fmt(value: object, width: int, decimals: int = 0) -> str:
    if isinstance(value, (int, float)):
        return f"{value:>{width}.{decimals}f}"
    return f"{str(value):>{width}}"


def render(
    rows: List[Dict[str, object]],
    previous: Optional[List[Dict[str, object]]] = None,
    interval_s: float = 0.0,
) -> str:
    """Render top rows as a fixed-width table (plus a cluster totals line).

    With a ``previous`` sample and the interval between the two, the
    ``req/s`` and ``jobs/s`` columns show real rates; one-shot mode leaves
    them at 0 (totals are still shown).
    """
    before = {row["id"]: row for row in (previous or [])}

    def rate(row: Dict[str, object], field: str) -> float:
        if interval_s <= 0 or row["id"] not in before:
            return 0.0
        delta = float(row.get(field, 0.0)) - float(before[row["id"]].get(field, 0.0))
        return max(0.0, delta) / interval_s

    header = (
        f"{'INSTANCE':<18} {'ROLE':<12} {'LIVE':<5} "
        f"{'REQS':>8} {'REQ/S':>7} {'P99MS':>8} {'INFLT':>6} "
        f"{'JOBS✓':>8} {'JOBS✗':>6} {'JOB/S':>7} {'JRNL':>6} {'REASG':>6} {'SWLW':>5} "
        f"{'CACHE':>6}"
    )
    lines = [header, "-" * len(header)]
    totals = {"requests": 0.0, "jobs_ok": 0.0, "jobs_failed": 0.0, "reassigned": 0.0}
    for row in rows:
        if not row.get("reachable"):
            lines.append(
                f"{str(row['id'])[:18]:<18} {str(row['role'])[:12]:<12} "
                f"{'yes' if row['live'] else 'no':<5} {'(unreachable)':>8}"
            )
            continue
        for key in totals:
            totals[key] += float(row.get(key, 0.0))
        ratio = cache_ratio(row)
        cache_cell = "-" if ratio is None else f"{ratio * 100.0:.0f}%"
        lines.append(
            f"{str(row['id'])[:18]:<18} {str(row['role'])[:12]:<12} "
            f"{'yes' if row['live'] else 'no':<5} "
            f"{_fmt(row['requests'], 8)} {_fmt(rate(row, 'requests'), 7, 1)} "
            f"{_fmt(row['req_p99_ms'], 8, 2)} {_fmt(row['in_flight'], 6)} "
            f"{_fmt(row['jobs_ok'], 8)} {_fmt(row['jobs_failed'], 6)} "
            f"{_fmt(rate(row, 'jobs_ok'), 7, 1)} {_fmt(row['journal'], 6)} "
            f"{_fmt(row['reassigned'], 6)} {_fmt(row['swallowed'], 5)} "
            f"{cache_cell:>6}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"cluster: {len(rows)} instance(s)  requests={totals['requests']:.0f}  "
        f"jobs_ok={totals['jobs_ok']:.0f}  jobs_failed={totals['jobs_failed']:.0f}  "
        f"reassigned={totals['reassigned']:.0f}"
    )
    return "\n".join(lines)


__all__ = [
    "cache_ratio",
    "collect",
    "discover_instances",
    "instance_row",
    "render",
    "scrape",
]
