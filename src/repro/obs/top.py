"""``an5d top`` — cluster-wide throughput/queue/latency view from ``/metrics``.

One-shot or ``--watch``: discover the live instances from any member's
``GET /cluster/instances`` (falling back to the given URL for a solo
server), scrape each instance's ``GET /metrics``, and render one row per
instance — request totals and p99 latency, per-kind job throughput, queue
depths (in-flight requests, wire journal) and the coordinator's shard
re-assignment counter.  In watch mode, rates are computed from the deltas
between two consecutive scrapes.

Stdlib only (urllib); the parsing/quantile machinery is shared with the
registry in :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import parse_prometheus, scrape_quantile

Samples = Dict[str, List[Tuple[Dict[str, str], float]]]


def _fetch(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def discover_instances(url: str, timeout: float = 5.0) -> List[Dict[str, object]]:
    """Live instances reachable from ``url`` (itself, for a solo server)."""
    base = url.rstrip("/")
    try:
        payload = json.loads(_fetch(base + "/cluster/instances", timeout))
        instances = [
            {
                "id": str(row.get("instance_id", "?")),
                "role": str(row.get("role", "?")),
                "url": str(row.get("url", "")),
                "live": bool(row.get("live", False)),
            }
            for row in payload.get("instances", [])
        ]
        if instances:
            return instances
    except (urllib.error.URLError, OSError, ValueError, KeyError):
        pass  # not a cluster member (409/404) or unreachable: solo fallback
    return [{"id": base, "role": "solo", "url": base, "live": True}]


def scrape(url: str, timeout: float = 5.0) -> Optional[Samples]:
    """One instance's parsed ``/metrics`` (None when unreachable)."""
    try:
        body = _fetch(url.rstrip("/") + "/metrics", timeout)
        return parse_prometheus(body.decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def stream_records(url: str, timeout: float = 30.0):
    """Yield decoded records from a long-lived chunked JSONL stream.

    ``urllib`` undoes the chunked framing; blank keep-alive lines are
    skipped (they also keep the socket-inactivity ``timeout`` from firing
    on an idle stream).  The generator ends when the server closes the
    stream; closing the generator closes the connection.
    """
    with urllib.request.urlopen(url, timeout=timeout) as response:
        for raw in response:
            line = raw.strip()
            if not line:
                continue
            yield json.loads(line.decode("utf-8"))


def _series_total(samples: Samples, name: str, **match: str) -> float:
    total = 0.0
    for labels, value in samples.get(name, []):
        if any(labels.get(key) != expected for key, expected in match.items()):
            continue
        total += value
    return total


def instance_row(
    instance: Dict[str, object], samples: Optional[Samples]
) -> Dict[str, object]:
    """The numbers one ``top`` row shows for one instance."""
    row: Dict[str, object] = {
        "id": instance["id"],
        "role": instance["role"],
        "live": instance["live"],
        "reachable": samples is not None,
    }
    if samples is None:
        return row
    row.update(
        {
            "requests": _series_total(samples, "requests_total"),
            "req_p99_ms": scrape_quantile(samples, "request_seconds", 0.99) * 1000.0,
            "in_flight": _series_total(samples, "requests_in_flight"),
            "jobs_ok": _series_total(samples, "jobs_completed_total", status="ok"),
            "jobs_failed": _series_total(samples, "jobs_completed_total", status="failed"),
            "job_p99_ms": scrape_quantile(samples, "job_execution_seconds", 0.99) * 1000.0,
            "journal": _series_total(samples, "journal_pending"),
            "reassigned": _series_total(samples, "cluster_reassign_total"),
            "swallowed": _series_total(samples, "errors_swallowed_total"),
            "cache_hits": _series_total(samples, "cache_hits_total"),
            "cache_misses": _series_total(samples, "cache_misses_total"),
        }
    )
    return row


def cache_ratio(row: Dict[str, object]) -> Optional[float]:
    """Hit fraction across all this instance's caches (None = no traffic)."""
    hits = float(row.get("cache_hits", 0.0))
    misses = float(row.get("cache_misses", 0.0))
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def collect(url: str, timeout: float = 5.0) -> List[Dict[str, object]]:
    """Scrape every live instance reachable from ``url`` into top rows."""
    rows = []
    for instance in discover_instances(url, timeout):
        samples = scrape(str(instance["url"]), timeout) if instance["live"] else None
        rows.append(instance_row(instance, samples))
    return rows


def _fmt(value: object, width: int, decimals: int = 0) -> str:
    if isinstance(value, (int, float)):
        return f"{value:>{width}.{decimals}f}"
    return f"{str(value):>{width}}"


def render(
    rows: List[Dict[str, object]],
    previous: Optional[List[Dict[str, object]]] = None,
    interval_s: float = 0.0,
) -> str:
    """Render top rows as a fixed-width table (plus a cluster totals line).

    With a ``previous`` sample and the interval between the two, the
    ``req/s`` and ``jobs/s`` columns show real rates; one-shot mode leaves
    them at 0 (totals are still shown).
    """
    before = {row["id"]: row for row in (previous or [])}

    def rate(row: Dict[str, object], field: str) -> float:
        if interval_s <= 0 or row["id"] not in before:
            return 0.0
        delta = float(row.get(field, 0.0)) - float(before[row["id"]].get(field, 0.0))
        return max(0.0, delta) / interval_s

    header = (
        f"{'INSTANCE':<18} {'ROLE':<12} {'LIVE':<5} "
        f"{'REQS':>8} {'REQ/S':>7} {'P99MS':>8} {'INFLT':>6} "
        f"{'JOBS✓':>8} {'JOBS✗':>6} {'JOB/S':>7} {'JRNL':>6} {'REASG':>6} {'SWLW':>5} "
        f"{'CACHE':>6}"
    )
    lines = [header, "-" * len(header)]
    totals = {"requests": 0.0, "jobs_ok": 0.0, "jobs_failed": 0.0, "reassigned": 0.0}
    for row in rows:
        if not row.get("reachable"):
            lines.append(
                f"{str(row['id'])[:18]:<18} {str(row['role'])[:12]:<12} "
                f"{'yes' if row['live'] else 'no':<5} {'(unreachable)':>8}"
            )
            continue
        for key in totals:
            totals[key] += float(row.get(key, 0.0))
        ratio = cache_ratio(row)
        cache_cell = "-" if ratio is None else f"{ratio * 100.0:.0f}%"
        lines.append(
            f"{str(row['id'])[:18]:<18} {str(row['role'])[:12]:<12} "
            f"{'yes' if row['live'] else 'no':<5} "
            f"{_fmt(row['requests'], 8)} {_fmt(rate(row, 'requests'), 7, 1)} "
            f"{_fmt(row['req_p99_ms'], 8, 2)} {_fmt(row['in_flight'], 6)} "
            f"{_fmt(row['jobs_ok'], 8)} {_fmt(row['jobs_failed'], 6)} "
            f"{_fmt(rate(row, 'jobs_ok'), 7, 1)} {_fmt(row['journal'], 6)} "
            f"{_fmt(row['reassigned'], 6)} {_fmt(row['swallowed'], 5)} "
            f"{cache_cell:>6}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"cluster: {len(rows)} instance(s)  requests={totals['requests']:.0f}  "
        f"jobs_ok={totals['jobs_ok']:.0f}  jobs_failed={totals['jobs_failed']:.0f}  "
        f"reassigned={totals['reassigned']:.0f}"
    )
    return "\n".join(lines)


# -- telemetry history (store-backed metrics snapshots) -------------------------
#
# ``ResultStore.record_telemetry`` persists ``MetricsRegistry.snapshot()``
# payloads: counters/gauges as ``{series-key: value}`` maps, histograms as
# ``{series-key: {count, sum, p50, p95, p99}}`` maps.  The helpers below turn
# a run of snapshots (newest first, as ``telemetry_rows`` returns them) into
# the regression-delta report behind ``GET /telemetry/history`` and
# ``an5d top --history``.

def _counter_total(snapshot: Dict[str, object], name: str) -> float:
    """Sum one counter/gauge across all its label series."""
    series = snapshot.get(name)
    if not isinstance(series, dict):
        return 0.0
    return sum(
        float(value) for value in series.values() if isinstance(value, (int, float))
    )


def _histogram_p99(snapshot: Dict[str, object], name: str) -> Optional[float]:
    """Worst p99 across one histogram's label series (None = no samples)."""
    series = snapshot.get(name)
    if not isinstance(series, dict):
        return None
    worst: Optional[float] = None
    for summary in series.values():
        if not isinstance(summary, dict) or not summary.get("count"):
            continue
        p99 = summary.get("p99")
        if isinstance(p99, (int, float)):
            worst = float(p99) if worst is None else max(worst, float(p99))
    return worst


#: Monotone totals whose between-snapshot deltas become rates.
_DELTA_COUNTERS = (
    "requests_total",
    "jobs_completed_total",
    "stream_dropped_total",
    "errors_swallowed_total",
)


def telemetry_deltas(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Between-snapshot deltas per instance (``rows`` newest first).

    Each entry compares one snapshot against the next-older one from the
    same instance: counter deltas and per-second rates over the real
    interval, plus the p99 request/job latency drift.
    """
    by_instance: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        by_instance.setdefault(str(row.get("instance_id", "?")), []).append(row)
    deltas: List[Dict[str, object]] = []
    for instance, sequence in sorted(by_instance.items()):
        for newer, older in zip(sequence, sequence[1:]):
            interval = float(newer["created_at"]) - float(older["created_at"])
            new_snap = newer.get("snapshot") or {}
            old_snap = older.get("snapshot") or {}
            entry: Dict[str, object] = {
                "instance_id": instance,
                "from": older["created_at"],
                "to": newer["created_at"],
                "interval_s": round(interval, 3),
                "code_version": newer.get("code_version"),
            }
            for name in _DELTA_COUNTERS:
                delta = _counter_total(new_snap, name) - _counter_total(old_snap, name)
                entry[name] = round(delta, 3)
                if interval > 0:
                    entry[name.replace("_total", "_per_s")] = round(delta / interval, 3)
            for metric, label in (
                ("request_seconds", "req_p99_ms"),
                ("job_execution_seconds", "job_p99_ms"),
            ):
                p99 = _histogram_p99(new_snap, metric)
                previous = _histogram_p99(old_snap, metric)
                entry[label] = None if p99 is None else round(p99 * 1000.0, 3)
                if p99 is not None and previous is not None:
                    entry[label + "_delta"] = round((p99 - previous) * 1000.0, 3)
            deltas.append(entry)
    return deltas


def code_version_report(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Latest snapshot per code version — the across-versions regression view.

    Newest version first; comparing ``req_p99_ms``/``job_p99_ms`` between
    adjacent entries answers "did this code change regress the service?".
    """
    latest: Dict[str, Dict[str, object]] = {}
    for row in rows:  # newest first: keep the first row seen per version
        version = str(row.get("code_version") or "?")
        if version not in latest:
            latest[version] = row
    report: List[Dict[str, object]] = []
    for version, row in latest.items():
        snapshot = row.get("snapshot") or {}
        p99 = _histogram_p99(snapshot, "request_seconds")
        job_p99 = _histogram_p99(snapshot, "job_execution_seconds")
        report.append(
            {
                "code_version": version,
                "created_at": row["created_at"],
                "instance_id": row.get("instance_id"),
                "requests": _counter_total(snapshot, "requests_total"),
                "jobs": _counter_total(snapshot, "jobs_completed_total"),
                "stream_dropped": _counter_total(snapshot, "stream_dropped_total"),
                "req_p99_ms": None if p99 is None else round(p99 * 1000.0, 3),
                "job_p99_ms": None if job_p99 is None else round(job_p99 * 1000.0, 3),
            }
        )
    return report


def render_history(
    rows: List[Dict[str, object]],
    deltas: Optional[List[Dict[str, object]]] = None,
    versions: Optional[List[Dict[str, object]]] = None,
) -> str:
    """Fixed-width text rendering of the telemetry history + delta report."""
    if deltas is None:
        deltas = telemetry_deltas(rows)
    if versions is None:
        versions = code_version_report(rows)
    lines = [f"telemetry history: {len(rows)} snapshot(s)"]
    header = (
        f"{'INSTANCE':<18} {'VERSION':<12} {'AGE-S':>8} "
        f"{'REQS':>8} {'JOBS':>8} {'DROPS':>6} {'P99MS':>8}"
    )
    lines += [header, "-" * len(header)]
    newest = float(rows[0]["created_at"]) if rows else 0.0
    for row in rows:
        snapshot = row.get("snapshot") or {}
        p99 = _histogram_p99(snapshot, "request_seconds")
        lines.append(
            f"{str(row.get('instance_id', '?'))[:18]:<18} "
            f"{str(row.get('code_version') or '?')[:12]:<12} "
            f"{newest - float(row['created_at']):>8.1f} "
            f"{_counter_total(snapshot, 'requests_total'):>8.0f} "
            f"{_counter_total(snapshot, 'jobs_completed_total'):>8.0f} "
            f"{_counter_total(snapshot, 'stream_dropped_total'):>6.0f} "
            f"{'-' if p99 is None else format(p99 * 1000.0, '.2f'):>8}"
        )
    if deltas:
        lines.append("")
        lines.append("deltas (newest interval first):")
        for entry in deltas:
            drift = entry.get("req_p99_ms_delta")
            drift_cell = "-" if drift is None else f"{drift:+.2f}ms"
            lines.append(
                f"  {str(entry['instance_id'])[:18]:<18} "
                f"{float(entry['interval_s']):>7.1f}s  "
                f"req/s={float(entry.get('requests_per_s', 0.0)):.2f}  "
                f"jobs/s={float(entry.get('jobs_completed_per_s', 0.0)):.2f}  "
                f"p99 drift={drift_cell}"
            )
    if versions and len(versions) > 1:
        lines.append("")
        lines.append("code versions (latest snapshot each, newest first):")
        for entry in versions:
            p99 = entry.get("req_p99_ms")
            lines.append(
                f"  {str(entry['code_version'])[:20]:<20} "
                f"reqs={float(entry['requests']):.0f}  jobs={float(entry['jobs']):.0f}  "
                f"p99={'-' if p99 is None else format(p99, '.2f') + 'ms'}"
            )
    return "\n".join(lines)


__all__ = [
    "cache_ratio",
    "code_version_report",
    "collect",
    "discover_instances",
    "instance_row",
    "render",
    "render_history",
    "scrape",
    "stream_records",
    "telemetry_deltas",
]
