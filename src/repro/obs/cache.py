"""Instrumented in-process caches with single-flight build deduplication.

One small primitive serves every read-through cache in the repo — the
service's hot model-batch cache, materialised report/export objects, the
coordinator's status payloads:

* **LRU over a plain dict** — bounded capacity, thread-safe, eviction in
  insertion-recency order;
* **single-flight** — when N threads miss on the same key concurrently,
  exactly one runs the builder; the others block on an event and share the
  one result, so a stampede of identical ``POST /predict`` requests costs
  one batch-model evaluation, not N;
* **metrics** — every cache reports ``cache_hits_total{cache}``,
  ``cache_misses_total{cache}`` and ``cache_evictions_total{cache}`` to the
  owning registry, plus a ``cache_singleflight_wait_seconds`` histogram of
  how long followers waited on a leader's build.

Values are never copied: callers must treat cached objects as immutable
(every current user caches frozen dataclasses, tuples or rendered payloads).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

from repro.obs.metrics import MetricsRegistry, get_registry

T = TypeVar("T")

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()


class SingleFlightCache:
    """A bounded LRU cache whose misses are built once per key, not per caller."""

    def __init__(
        self,
        name: str,
        capacity: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self.metrics = metrics if metrics is not None else get_registry()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        # key -> the build-in-progress event followers wait on.
        self._building: Dict[Hashable, threading.Event] = {}

    # -- metrics helpers -------------------------------------------------------
    def _count(self, verb: str, amount: int = 1) -> None:
        self.metrics.counter(
            f"cache_{verb}_total", f"Cache {verb} by cache name", labels=("cache",)
        ).inc(float(amount), cache=self.name)

    # -- plain access ----------------------------------------------------------
    def get(self, key: Hashable) -> Tuple[object, bool]:
        """``(value, True)`` on a hit, ``(None, False)`` on a miss (counted)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._count("hits")
                return value, True
        self._count("misses")
        return None, False

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) one entry, evicting the least recently used."""
        with self._lock:
            self._store_locked(key, value)

    def _store_locked(self, key: Hashable, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        if evicted:
            self._count("evictions", evicted)

    def invalidate(self, key: Hashable) -> bool:
        with self._lock:
            return self._entries.pop(key, _MISSING) is not _MISSING

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- single-flight ---------------------------------------------------------
    def get_or_build(
        self, key: Hashable, builder: Callable[[], T]
    ) -> Tuple[T, bool]:
        """The cached value for ``key``, building it at most once concurrently.

        Returns ``(value, hit)``.  The *leader* (first caller to miss) runs
        ``builder`` outside the lock and counts a miss; *followers* arriving
        during the build wait on its event, record their wait in the
        ``cache_singleflight_wait_seconds`` histogram and count a hit — they
        were served without paying for a build.  A builder that raises
        releases the followers, and the first of them retries as the new
        leader, so one failed build never wedges the key.
        """
        while True:
            with self._lock:
                value = self._entries.get(key, _MISSING)
                if value is not _MISSING:
                    self._entries.move_to_end(key)
                    self._count("hits")
                    return value, True  # type: ignore[return-value]
                event = self._building.get(key)
                if event is None:
                    self._building[key] = threading.Event()
                    break  # this caller is the leader
            # Follower: wait out the leader's build, then re-check the cache.
            waited_from = time.perf_counter()
            event.wait()
            self.metrics.histogram(
                "cache_singleflight_wait_seconds",
                "Time spent waiting on another caller's in-flight cache build",
                labels=("cache",),
            ).observe(time.perf_counter() - waited_from, cache=self.name)
        self._count("misses")
        try:
            value = builder()
        except BaseException:
            with self._lock:
                pending = self._building.pop(key, None)
            if pending is not None:
                pending.set()
            raise
        with self._lock:
            self._store_locked(key, value)
            pending = self._building.pop(key, None)
        if pending is not None:
            pending.set()
        return value, False


__all__ = ["SingleFlightCache"]
