"""Sampling profiler: folded stacks from ``sys._current_frames`` (stdlib-only).

A background daemon thread wakes at a configurable rate, snapshots every
live thread's Python stack, and accumulates them as *folded stacks* — the
semicolon-joined ``file:function`` chains (root first) that flamegraph
tooling's ``collapse`` format expects, one ``stack count`` line each:

    cli.py:main;scheduler.py:run;executor.py:step_block 412

The profiler is refcounted: :meth:`SamplingProfiler.start` spawns the
sampler on the first acquisition and :meth:`~SamplingProfiler.stop` joins
it on the last, so overlapping windows (an HTTP ``GET /profile?seconds=N``
racing a scheduler hot-path window) compose without a coordinator.  Hot
paths wrap themselves in :meth:`~SamplingProfiler.window`, which is a
no-op unless the profiler has been *armed* (``an5d serve --profile``,
``bench_sweep --check``'s overhead gate, or :func:`arm_profiler`) — an
unarmed window costs one attribute read, keeping the default-path overhead
inside the existing <=5% instrumentation budget.

Counts are cumulative; readers that want a bounded interval snapshot the
counts before and diff after (:meth:`~SamplingProfiler.snapshot` /
:func:`folded_diff`), which is what the ``/profile`` endpoint does.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry

#: Default sampling rate; a prime off the scheduler-tick harmonics.
DEFAULT_HZ = 97.0

#: Frames deeper than this are truncated (runaway recursion protection).
MAX_STACK_DEPTH = 64

#: Distinct folded stacks kept; beyond this new stacks fold into a bucket.
MAX_DISTINCT_STACKS = 20_000

_OVERFLOW_KEY = "~overflow~"


class SamplingProfiler:
    """Refcounted background sampler producing folded-stack counts."""

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        self._hz = float(hz)
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._refs = 0
        self._armed = False
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, hz: Optional[float] = None) -> None:
        """Acquire the sampler; the first acquisition spawns the thread."""
        with self._lock:
            self._refs += 1
            if hz is not None:
                self._hz = float(hz)
            if self._thread is None:
                self._stop_event = threading.Event()
                self._thread = threading.Thread(
                    target=self._sample_loop,
                    args=(self._stop_event,),
                    name="an5d-profiler",
                    daemon=True,
                )
                self._thread.start()

    def stop(self) -> None:
        """Release the sampler; the last release stops the thread."""
        with self._lock:
            if self._refs == 0:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            thread, self._thread = self._thread, None
            self._stop_event.set()
        if thread is not None:
            thread.join(timeout=2.0)

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None

    # -- arming (hot-path windows) -----------------------------------------

    def arm(self, hz: Optional[float] = None) -> None:
        """Make :meth:`window` calls real; until then they are no-ops."""
        if hz is not None:
            self._hz = float(hz)
        self._armed = True

    def disarm(self) -> None:
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    @contextlib.contextmanager
    def window(self, name: str = "") -> Iterator[None]:
        """Sample for the duration of a hot path, if the profiler is armed.

        The ``name`` is advisory (it shows up in the stacks themselves);
        unarmed windows cost a single attribute read.
        """
        if not self._armed:
            yield
            return
        self.start()
        try:
            yield
        finally:
            self.stop()

    # -- sampling ----------------------------------------------------------

    def _sample_loop(self, stop_event: threading.Event) -> None:
        interval = 1.0 / max(1.0, self._hz)
        me = threading.get_ident()
        while not stop_event.wait(interval):
            self._sample_once(me)

    def _sample_once(self, skip_ident: int) -> None:
        frames = sys._current_frames()
        folded: List[str] = []
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                code = frame.f_code
                stack.append(
                    f"{os.path.basename(code.co_filename)}:{code.co_name}"
                )
                frame = frame.f_back
                depth += 1
            if stack:
                folded.append(";".join(reversed(stack)))
        del frames
        with self._lock:
            self._samples += 1
            for key in folded:
                if key in self._counts:
                    self._counts[key] += 1
                elif len(self._counts) < MAX_DISTINCT_STACKS:
                    self._counts[key] = 1
                else:
                    self._counts[_OVERFLOW_KEY] = (
                        self._counts.get(_OVERFLOW_KEY, 0) + 1
                    )

    # -- readout -----------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Cumulative folded-stack counts (copy; safe to diff later)."""
        with self._lock:
            return dict(self._counts)

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def folded(self, counts: Optional[Dict[str, int]] = None) -> str:
        """Render counts (default: cumulative) as collapse-format text."""
        source = self.snapshot() if counts is None else counts
        lines = sorted(source.items(), key=lambda item: (-item[1], item[0]))
        return "\n".join(f"{stack} {count}" for stack, count in lines) + (
            "\n" if lines else ""
        )

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0


def folded_diff(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Counts accumulated between two snapshots (non-positive rows dropped)."""
    delta: Dict[str, int] = {}
    for stack, count in after.items():
        gained = count - before.get(stack, 0)
        if gained > 0:
            delta[stack] = gained
    return delta


#: The process-wide profiler every hot-path window and endpoint shares.
PROFILER = SamplingProfiler()


def arm_profiler(hz: Optional[float] = None) -> SamplingProfiler:
    """Arm the process-wide profiler (hot-path windows begin sampling)."""
    PROFILER.arm(hz=hz)
    return PROFILER


def disarm_profiler() -> SamplingProfiler:
    PROFILER.disarm()
    return PROFILER


def profile_for(
    seconds: float,
    hz: float = DEFAULT_HZ,
    profiler: Optional[SamplingProfiler] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[str, int]:
    """Sample the whole process for ``seconds`` and return folded text.

    This is the ``GET /profile?seconds=N`` / ``an5d profile`` entry point:
    it acquires the shared profiler for a bounded window and returns the
    stacks accumulated *during that window only* plus the sample count, so
    concurrent windows and armed hot paths do not bleed into each other's
    totals beyond genuinely concurrent execution.
    """
    target = profiler if profiler is not None else PROFILER
    seconds = max(0.05, min(float(seconds), 300.0))
    before = target.snapshot()
    samples_before = target.samples
    target.start(hz=hz)
    try:
        time.sleep(seconds)
    finally:
        target.stop()
    window = folded_diff(before, target.snapshot())
    samples = target.samples - samples_before
    registry = metrics if metrics is not None else get_registry()
    registry.counter(
        "profile_windows_total", "Completed profiling windows"
    ).inc()
    return target.folded(window), samples


__all__ = [
    "DEFAULT_HZ",
    "PROFILER",
    "SamplingProfiler",
    "arm_profiler",
    "disarm_profiler",
    "folded_diff",
    "profile_for",
]
