"""Thread-safe metrics registry (counters, gauges, fixed-bucket histograms).

Design points:

* **stdlib only** — a ``threading.Lock`` per metric, plain dicts underneath;
  no background threads, no allocation on the hot path beyond a dict lookup.
* **labels** are declared at registration and passed as keyword arguments to
  ``inc``/``set``/``observe``; each label-value combination is one series.
* **histograms** use fixed bucket edges chosen at registration; quantiles
  (p50/p95/p99) are estimated by linear interpolation inside the bucket that
  holds the requested rank, which is exact to one bucket width — the same
  estimate Prometheus' ``histogram_quantile`` would produce from the scrape.
* **registries are injectable**: every instrumented component accepts a
  ``metrics=`` argument and falls back to the process-wide default
  (:func:`get_registry`), mirroring the cluster layer's injectable clocks —
  tests hand in a fresh registry and assert exact counts.
* rendering follows the Prometheus text exposition format, and
  :func:`parse_prometheus` reads it back (``an5d top``, CI smoke checks).
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond to half a minute.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default size buckets (counts): for batch sizes and queue depths.
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _label_key(names: Tuple[str, ...], labels: Mapping[str, object]) -> Tuple[str, ...]:
    extra = sorted(set(labels) - set(names))
    if extra:
        raise ValueError(f"unknown label(s): {', '.join(extra)}")
    return tuple(str(labels.get(name, "")) for name in names)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_exemplar(exemplar: Optional[Tuple[str, float]]) -> str:
    """OpenMetrics exemplar suffix (`` # {trace_id="..."} value``), or ``""``.

    No timestamp field — same policy as the rest of the wire surface.
    """
    if exemplar is None:
        return ""
    trace_id, value = exemplar
    return f' # {{trace_id="{_escape(trace_id)}"}} {_format_value(value)}'


class _Metric:
    """Base: one named metric holding one series per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()

    def _header(self) -> List[str]:
        return [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labels, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(self.labels, labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            series = sorted(self._values.items())
        if not series and not self.labels:
            series = [((), 0.0)]
        for values, count in series:
            lines.append(
                f"{self.name}{_format_labels(self.labels, values)} {_format_value(count)}"
            )
        return lines

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {",".join(k) if k else "": v for k, v in self._values.items()}


class Gauge(_Metric):
    """A value that goes up and down (queue depth, in-flight requests)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(self.labels, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(self.labels, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(self.labels, labels), 0.0)

    render = Counter.render
    snapshot = Counter.snapshot


class Histogram(_Metric):
    """Fixed-bucket histogram with interpolated quantile readouts."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        edges = tuple(sorted(float(edge) for edge in buckets))
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        self.edges = edges
        # Per series: [bucket counts... , +Inf count], total count, sum.
        self._series: Dict[Tuple[str, ...], List[object]] = {}
        # Per series: bucket index -> (trace id, observed value) — the most
        # recent OpenMetrics exemplar for that bucket, so a scrape links a
        # bad p99 bucket straight to ``GET /trace/{id}``.
        self._exemplars: Dict[Tuple[str, ...], Dict[int, Tuple[str, float]]] = {}

    def observe(
        self, value: float, exemplar: Optional[str] = None, **labels: object
    ) -> None:
        key = _label_key(self.labels, labels)
        index = bisect.bisect_left(self.edges, float(value))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.edges) + 1), 0, 0.0]
                self._series[key] = series
            series[0][index] += 1
            series[1] += 1
            series[2] += float(value)
            if exemplar:
                self._exemplars.setdefault(key, {})[index] = (
                    str(exemplar),
                    float(value),
                )

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(_label_key(self.labels, labels))
            return int(series[1]) if series else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(self.labels, labels))
            return float(series[2]) if series else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Estimated ``q``-quantile (0..1) by in-bucket linear interpolation."""
        with self._lock:
            series = self._series.get(_label_key(self.labels, labels))
            if series is None or series[1] == 0:
                return 0.0
            counts, total = list(series[0]), int(series[1])
        return bucket_quantile(self.edges, counts, total, q)

    def summary(self, **labels: object) -> Dict[str, float]:
        """The p50/p95/p99 readout plus count and sum."""
        return {
            "count": self.count(**labels),
            "sum": round(self.sum(**labels), 6),
            "p50": round(self.quantile(0.50, **labels), 6),
            "p95": round(self.quantile(0.95, **labels), 6),
            "p99": round(self.quantile(0.99, **labels), 6),
        }

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (key, list(series[0]), int(series[1]), float(series[2]))
                for key, series in self._series.items()
            )
            exemplars = {key: dict(value) for key, value in self._exemplars.items()}
        names = self.labels + ("le",)
        for values, counts, total, total_sum in items:
            series_exemplars = exemplars.get(values, {})
            cumulative = 0
            for index, (edge, count) in enumerate(zip(self.edges, counts)):
                cumulative += count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(names, values + (_format_value(edge),))}"
                    f" {cumulative}"
                    + _format_exemplar(series_exemplars.get(index))
                )
            lines.append(
                f"{self.name}_bucket{_format_labels(names, values + ('+Inf',))} {total}"
                + _format_exemplar(series_exemplars.get(len(self.edges)))
            )
            base = _format_labels(self.labels, values)
            lines.append(f"{self.name}_sum{base} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{base} {total}")
        return lines

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            keys = list(self._series)
        return {
            ",".join(key) if key else "": self.summary(**dict(zip(self.labels, key)))
            for key in keys
        }


def bucket_quantile(
    edges: Sequence[float], counts: Sequence[int], total: int, q: float
) -> float:
    """Quantile estimate from cumulative-bucket data (shared with ``top``).

    ``counts`` holds per-bucket (non-cumulative) counts, with the final entry
    covering values above the last edge; the estimate interpolates linearly
    inside the bucket that contains rank ``q * total`` and clamps the
    overflow bucket to its lower edge (there is no upper bound to lerp to).
    """
    if total <= 0:
        return 0.0
    rank = max(0.0, min(1.0, q)) * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if index >= len(edges):  # overflow bucket: no upper edge
                return float(edges[-1])
            lower = float(edges[index - 1]) if index > 0 else 0.0
            upper = float(edges[index])
            fraction = (rank - previous) / count
            return lower + (upper - lower) * fraction
    return float(edges[-1])


class _NullMetric:
    """No-op stand-in: accepts every call, records nothing.

    Used by the overhead benchmark to measure the instrumented code paths
    with metrics compiled out, and available to embedders who want zero
    bookkeeping.
    """

    def inc(self, *args: object, **kwargs: object) -> None:
        pass

    dec = set = observe = inc

    def value(self, *args: object, **labels: object) -> float:
        return 0.0

    def count(self, *args: object, **labels: object) -> int:
        return 0

    sum = quantile = value

    def summary(self, **labels: object) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


class MetricsRegistry:
    """A named collection of metrics; safe for concurrent registration.

    Registration is idempotent: asking for an existing name returns the
    existing metric (type and labels must match), so per-use objects like
    the campaign scheduler can re-register their instruments freely.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help: str, labels: Tuple[str, ...], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labels != labels:
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        "type or label set"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, tuple(labels))

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, tuple(labels), buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """JSON-able summary: counters/gauges by series, histogram quantiles."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {metric.name: metric.snapshot() for metric in metrics}


class NullRegistry(MetricsRegistry):
    """A registry whose metrics never record (overhead measurements)."""

    _NULL = _NullMetric()

    def _register(self, cls, name, help, labels, **kwargs):  # noqa: A002
        return self._NULL


#: Shared no-op metric sink (``set_registry(NULL_REGISTRY)`` disables
#: instrumentation process-wide; the overhead gate in ``bench_sweep`` uses it).
NULL_REGISTRY = NullRegistry()

_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (injectable per component)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


#: ``metric_name{label="value",...} 1.25`` — one sample line of a scrape.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: `` # {trace_id="..."} 0.0042`` — an OpenMetrics exemplar suffix on a
#: sample line (optionally with a trailing timestamp, per the spec).
_EXEMPLAR_RE = re.compile(r"\s+#\s+\{[^}]*\}\s+[^\s]+(?:\s+[^\s]+)?\s*$")


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text format into ``{name: [(labels, value), ...]}``.

    Strict on sample lines (a malformed one raises — the CI smoke check
    leans on that); ``# HELP``/``# TYPE`` comments and blanks are skipped.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            # An exemplar-bearing bucket line: strip the suffix and retry.
            stripped = _EXEMPLAR_RE.sub("", line)
            match = _SAMPLE_RE.match(stripped) if stripped != line else None
            if match is None:
                raise ValueError(f"line {number} is not a Prometheus sample: {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for name, value in _LABEL_RE.findall(raw):
                labels[name] = (
                    value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
                )
        raw_value = match.group("value")
        try:
            value = math.inf if raw_value == "+Inf" else float(raw_value)
        except ValueError:
            raise ValueError(f"line {number} has a non-numeric value: {line!r}") from None
        out.setdefault(match.group("name"), []).append((labels, value))
    return out


def scrape_quantile(
    samples: Dict[str, List[Tuple[Dict[str, str], float]]],
    name: str,
    q: float,
    match: Optional[Mapping[str, str]] = None,
) -> float:
    """Quantile of a scraped histogram, merged over matching label sets.

    ``match`` filters series by label equality (ignoring ``le``); bucket
    counts are summed across the surviving series before estimating, which
    is how ``an5d top`` folds per-route latencies into one instance p99.
    """
    buckets: Dict[float, float] = {}
    for labels, value in samples.get(f"{name}_bucket", []):
        if match and any(labels.get(k) != v for k, v in match.items()):
            continue
        edge = math.inf if labels.get("le") == "+Inf" else float(labels.get("le", "inf"))
        buckets[edge] = buckets.get(edge, 0.0) + value
    edges = sorted(edge for edge in buckets if edge != math.inf)
    if not edges:
        return 0.0
    cumulative = [buckets[edge] for edge in edges]
    total = buckets.get(math.inf, cumulative[-1])
    counts: List[int] = []
    previous = 0.0
    for value in cumulative:
        counts.append(int(value - previous))
        previous = value
    counts.append(int(max(0.0, total - previous)))  # overflow bucket
    return bucket_quantile(edges, counts, int(total), q)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SIZE_BUCKETS",
    "bucket_quantile",
    "get_registry",
    "parse_prometheus",
    "scrape_quantile",
    "set_registry",
]
