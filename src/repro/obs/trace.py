"""Trace/span context, wire propagation and the local span store.

The clock policy matches PR 6's skew-immune design: **no timestamps ever
cross the wire**.  A wire envelope may carry exactly two trace fields —
``trace_id`` (shared by every span of one request's causal chain) and
``span_id`` (the sender's current span, which becomes the receiver's
parent) — and each process measures its own spans' durations with its own
monotonic clock.  Spans therefore order by parent links, not by comparing
clocks across machines.

Span recording is process-wide: every span lands in :data:`SPANS`, a
bounded in-memory store served by ``GET /trace/{trace_id}``.  In the
in-process cluster topologies (:class:`~repro.cluster.local.LocalCluster`,
the test harness) all instances share the process, so any instance's
``/trace`` endpoint returns the *complete* tree — submit, fan-out,
assignment, run and commit.  Across real processes each instance serves
its local fragment of the trace (linked by the shared ``trace_id``).
"""

from __future__ import annotations

import contextlib
import contextvars
import re
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional

#: Ids are hex strings (no dashes): 32 chars for traces, 16 for spans.
_ID_RE = re.compile(r"^[0-9a-f]{8,32}$")

#: The only fields a wire trace envelope may carry — no timestamps, ever.
WIRE_FIELDS = ("trace_id", "span_id")


@dataclass(frozen=True)
class TraceContext:
    """The propagated half of a span: which trace, which (parent) span."""

    trace_id: str
    span_id: str


_current: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def current_trace() -> Optional[TraceContext]:
    """The active span's context in this thread (None outside any span)."""
    return _current.get()


def context_to_wire(context: TraceContext) -> Dict[str, str]:
    """The explicit envelope fields a request carries (and nothing else)."""
    return {"trace_id": context.trace_id, "span_id": context.span_id}


def context_from_wire(data: object) -> TraceContext:
    """Strict decode of a wire trace envelope.

    Unknown fields are rejected — in particular anything that smells like a
    timestamp — so the no-clocks-on-the-wire invariant is enforced at the
    same boundary as the other strict decoders.
    """
    if not isinstance(data, Mapping):
        raise ValueError("trace envelope must be a JSON object")
    unknown = sorted(set(data) - set(WIRE_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown trace field(s): {', '.join(unknown)} "
            "(trace envelopes carry only trace_id/span_id — no timestamps)"
        )
    values = {}
    for field in WIRE_FIELDS:
        value = data.get(field)
        if not isinstance(value, str) or not _ID_RE.match(value):
            raise ValueError(f"trace field {field!r} must be a lowercase hex id")
        values[field] = value
    return TraceContext(trace_id=values["trace_id"], span_id=values["span_id"])


class SpanStore:
    """Bounded in-memory span records, grouped by trace id.

    Oldest traces are evicted first once ``max_traces`` is reached; a trace
    caps at ``max_spans`` spans (beyond that, spans are counted but
    dropped), so a polling-heavy workload cannot grow memory without bound.
    """

    def __init__(self, max_traces: int = 256, max_spans: int = 512) -> None:
        self.max_traces = int(max_traces)
        self.max_spans = int(max_spans)
        self._traces: Dict[str, List[Dict[str, object]]] = {}
        self._dropped: Dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, span_record: Dict[str, object]) -> None:
        trace_id = str(span_record["trace_id"])
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                while len(self._traces) >= self.max_traces:
                    evicted = next(iter(self._traces))
                    del self._traces[evicted]
                    self._dropped.pop(evicted, None)
                spans = []
                self._traces[trace_id] = spans
            if len(spans) >= self.max_spans:
                self._dropped[trace_id] = self._dropped.get(trace_id, 0) + 1
                return
            spans.append(span_record)

    def spans(self, trace_id: str) -> Optional[List[Dict[str, object]]]:
        with self._lock:
            spans = self._traces.get(trace_id)
            return [dict(span) for span in spans] if spans is not None else None

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._dropped.clear()

    def tree(self, trace_id: str) -> Optional[Dict[str, object]]:
        """The span tree payload ``GET /trace/{trace_id}`` serves.

        Spans are returned flat (recording order) *and* nested under
        ``roots``; a span whose parent was recorded by another process (or
        evicted) becomes a root here — its parent link still names the
        remote span, so fragments from several instances can be stitched.
        """
        spans = self.spans(trace_id)
        if spans is None:
            return None
        by_id = {str(span["span_id"]): dict(span) for span in spans}
        for span_view in by_id.values():
            span_view["children"] = []
        roots: List[Dict[str, object]] = []
        for span in spans:
            view = by_id[str(span["span_id"])]
            parent = span.get("parent_span_id")
            if parent is not None and str(parent) in by_id:
                by_id[str(parent)]["children"].append(view)
            else:
                roots.append(view)
        with self._lock:
            dropped = self._dropped.get(trace_id, 0)
        return {
            "trace_id": trace_id,
            "spans": spans,
            "roots": roots,
            "dropped": dropped,
        }


#: The process-wide span sink (shared across in-process cluster instances).
SPANS = SpanStore()


@contextlib.contextmanager
def span(
    name: str,
    parent: Optional[TraceContext] = None,
    store: Optional[SpanStore] = None,
    **attrs: object,
) -> Iterator[TraceContext]:
    """Record one span; yields its context (what a wire envelope would carry).

    The parent is, in order: the explicit ``parent`` argument (a decoded
    wire context or a stored submission trace), else the calling thread's
    current span, else none — in which case a fresh trace starts here.
    Durations are measured with the local monotonic clock and recorded
    locally; nothing here ever produces a wall-clock timestamp for a peer.
    """
    parent = parent or _current.get()
    context = TraceContext(
        trace_id=parent.trace_id if parent else new_trace_id(),
        span_id=new_span_id(),
    )
    token = _current.set(context)
    start = time.perf_counter()
    status = "ok"
    try:
        yield context
    except BaseException as error:
        status = f"error:{type(error).__name__}"
        raise
    finally:
        _current.reset(token)
        record: Dict[str, object] = {
            "name": name,
            "trace_id": context.trace_id,
            "span_id": context.span_id,
            "parent_span_id": parent.span_id if parent else None,
            "duration_s": round(time.perf_counter() - start, 6),
            "status": status,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        (store or SPANS).record(record)


__all__ = [
    "SPANS",
    "SpanStore",
    "TraceContext",
    "WIRE_FIELDS",
    "context_from_wire",
    "context_to_wire",
    "current_trace",
    "new_span_id",
    "new_trace_id",
    "span",
]
