"""Structured JSONL event logging with one process-wide sink.

Events are small JSON objects — ``{"ts": ..., "event": ..., **fields}`` —
kept in a bounded in-memory ring (for tests and the ``/healthz`` style
introspection) and, when a path is configured (``an5d serve --event-log``
or the ``AN5D_EVENT_LOG`` environment variable), appended to a JSONL file
one line per event.  The file is the incident-time surface: ``grep`` it by
``"event"`` or ``"error_class"`` (see the README's Observability section).

Timestamps here are *local* (this process' wall clock, never sent to a
peer), so the no-timestamps-on-the-wire policy is untouched.

:func:`record_suppressed` is the satellite-1 contract: every retry loop
that deliberately swallows an exception routes it through here, which
increments ``errors_swallowed_total{site,error_class}`` and emits an
``error_suppressed`` event — a swallowed error is never silent again.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, get_registry


class EventLog:
    """Thread-safe event sink: bounded ring buffer plus optional JSONL file."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        capacity: int = 1000,
    ) -> None:
        self._ring: Deque[Dict[str, object]] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._path: Optional[Path] = None
        if path:
            self.configure(path)

    def configure(self, path: Optional[Union[str, Path]]) -> None:
        """Start (or stop, with ``None``) mirroring events to a JSONL file."""
        with self._lock:
            self._path = Path(path) if path else None
            if self._path is not None:
                self._path.parent.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Optional[Path]:
        with self._lock:
            return self._path

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns the record that was written."""
        record: Dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        with self._lock:
            self._ring.append(record)
            path = self._path
        if path is not None:
            try:
                with path.open("a") as handle:
                    handle.write(line + "\n")
            except OSError:
                pass  # observability must never take the workload down
        return record

    def tail(self, n: int = 50, event: Optional[str] = None) -> List[Dict[str, object]]:
        """The most recent ``n`` events (optionally of one kind), oldest first."""
        with self._lock:
            records = list(self._ring)
        if event is not None:
            records = [record for record in records if record.get("event") == event]
        return records[-n:]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


#: The process-wide sink; honours ``AN5D_EVENT_LOG`` at import.
EVENTS = EventLog(path=os.environ.get("AN5D_EVENT_LOG") or None)


def emit_event(event: str, **fields: object) -> Dict[str, object]:
    """Emit one structured event on the process-wide sink."""
    return EVENTS.emit(event, **fields)


def record_suppressed(
    site: str,
    error: BaseException,
    metrics: Optional[MetricsRegistry] = None,
    **fields: object,
) -> None:
    """Account for a deliberately swallowed exception (never let it be silent).

    Increments ``errors_swallowed_total{site,error_class}`` on the given
    registry (default: the process-wide one) and emits an
    ``error_suppressed`` event carrying the site, error class and message.
    """
    error_class = type(error).__name__
    registry = metrics if metrics is not None else get_registry()
    registry.counter(
        "errors_swallowed_total",
        "Errors swallowed by retry/supervision loops, by site and class",
        labels=("site", "error_class"),
    ).inc(site=site, error_class=error_class)
    emit_event(
        "error_suppressed",
        site=site,
        error_class=error_class,
        detail=str(error)[:500],
        **fields,
    )


__all__ = ["EVENTS", "EventLog", "emit_event", "record_suppressed"]
