"""Structured JSONL event logging with one process-wide sink.

Events are small JSON objects — ``{"ts": ..., "event": ..., **fields}`` —
kept in a bounded in-memory ring (for tests and the ``/healthz`` style
introspection) and, when a path is configured (``an5d serve --event-log``
or the ``AN5D_EVENT_LOG`` environment variable), appended to a JSONL file
one line per event.  The file is the incident-time surface: ``grep`` it by
``"event"`` or ``"error_class"`` (see the README's Observability section).

Two delivery paths besides the ring:

* **File mirror** — size-capped and rotated in place (``events.jsonl`` →
  ``events.jsonl.1`` … ``.N``, newest suffix lowest), so a week-long
  campaign cannot grow the log unbounded (``an5d serve
  --event-log-max-bytes``).
* **Subscribers** — :meth:`EventLog.subscribe` hands out a bounded
  :class:`EventSubscription` queue that ``GET /events/stream`` and
  ``GET /campaigns/{id}/stream`` drain.  ``emit`` never blocks on a
  subscriber: when a queue is full the event is *dropped for that
  subscriber only* and counted in ``stream_dropped_total{reason}`` — a
  slow or dead reader can never wedge the worker.

Timestamps here are *local* (this process' wall clock, never sent to a
peer), so the no-timestamps-on-the-wire policy is untouched.

:func:`record_suppressed` is the satellite-1 contract: every retry loop
that deliberately swallows an exception routes it through here, which
increments ``errors_swallowed_total{site,error_class}`` and emits an
``error_suppressed`` event — a swallowed error is never silent again.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, get_registry

#: Default per-subscriber queue depth; deep enough for a burst of job
#: completions, small enough that a dead reader costs bounded memory.
DEFAULT_QUEUE_DEPTH = 512

#: Rotated generations kept beside the live file (``.1`` is the newest).
DEFAULT_KEEP_ROTATED = 3


def _drop_counter(registry: Optional[MetricsRegistry] = None):
    return (registry if registry is not None else get_registry()).counter(
        "stream_dropped_total",
        "Events dropped instead of blocking, by reason",
        labels=("reason",),
    )


class EventSubscription:
    """One subscriber's bounded view of the event stream.

    Iterating yields event records as they arrive; iteration ends when the
    subscription is closed.  ``get`` exposes the timeout-aware single-event
    read the streaming handlers use to interleave keep-alives.
    """

    _CLOSE = object()

    def __init__(
        self,
        log: "EventLog",
        maxsize: int = DEFAULT_QUEUE_DEPTH,
        events: Optional[frozenset] = None,
        predicate: Optional[Callable[[Dict[str, object]], bool]] = None,
    ) -> None:
        self._log = log
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max(1, int(maxsize)))
        self._events = events
        self._predicate = predicate
        self._closed = threading.Event()
        self.dropped = 0

    def _offer(self, record: Dict[str, object]) -> bool:
        """Deliver without blocking; returns False when the event was dropped."""
        if self._closed.is_set():
            return True
        if self._events is not None and record.get("event") not in self._events:
            return True
        if self._predicate is not None and not self._predicate(record):
            return True
        try:
            self._queue.put_nowait(record)
            return True
        except queue.Full:
            self.dropped += 1
            return False

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, object]]:
        """Next event, or ``None`` on timeout or once the stream is closed."""
        if self._closed.is_set() and self._queue.empty():
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is self._CLOSE:
            return None
        return item  # type: ignore[return-value]

    def close(self) -> None:
        """Detach from the log; pending events are discarded on next read."""
        if not self._closed.is_set():
            self._closed.set()
            self._log._unsubscribe(self)
            try:
                self._queue.put_nowait(self._CLOSE)
            except queue.Full:
                pass  # a reader blocked in get() will see _closed on timeout

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __iter__(self) -> Iterator[Dict[str, object]]:
        while True:
            record = self.get(timeout=1.0)
            if record is not None:
                yield record
            elif self._closed.is_set():
                return

    def __enter__(self) -> "EventSubscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class EventLog:
    """Thread-safe event sink: bounded ring, optional JSONL file, fan-out."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        capacity: int = 1000,
        max_bytes: Optional[int] = None,
        keep_rotated: int = DEFAULT_KEEP_ROTATED,
    ) -> None:
        self._ring: Deque[Dict[str, object]] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._file_lock = threading.Lock()
        self._path: Optional[Path] = None
        self._max_bytes: Optional[int] = None
        self._keep_rotated = int(keep_rotated)
        self._subscribers: List[EventSubscription] = []
        if path:
            self.configure(path, max_bytes=max_bytes, keep_rotated=keep_rotated)

    def configure(
        self,
        path: Optional[Union[str, Path]],
        max_bytes: Optional[int] = None,
        keep_rotated: int = DEFAULT_KEEP_ROTATED,
    ) -> None:
        """Start (or stop, with ``None``) mirroring events to a JSONL file.

        ``max_bytes`` caps the live file: once an append pushes it past the
        cap it is rotated to ``<path>.1`` (existing generations shift up,
        the oldest beyond ``keep_rotated`` is deleted).
        """
        with self._file_lock:
            self._path = Path(path) if path else None
            self._max_bytes = int(max_bytes) if max_bytes else None
            self._keep_rotated = max(1, int(keep_rotated))
            if self._path is not None:
                self._path.parent.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Optional[Path]:
        with self._file_lock:
            return self._path

    # -- subscribers -------------------------------------------------------

    def subscribe(
        self,
        maxsize: int = DEFAULT_QUEUE_DEPTH,
        events: Optional[Union[str, List[str], frozenset]] = None,
        predicate: Optional[Callable[[Dict[str, object]], bool]] = None,
    ) -> EventSubscription:
        """Attach a bounded push subscriber (optionally filtered by kind).

        ``events`` restricts delivery to the named event kinds; ``predicate``
        is an arbitrary record filter evaluated on the emitting thread (keep
        it cheap).  Close the subscription (or use it as a context manager)
        to detach.
        """
        if isinstance(events, str):
            events = frozenset((events,))
        elif events is not None:
            events = frozenset(events)
        subscription = EventSubscription(
            self, maxsize=maxsize, events=events, predicate=predicate
        )
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def _unsubscribe(self, subscription: EventSubscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # -- emission ----------------------------------------------------------

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns the record that was written."""
        record: Dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        with self._lock:
            self._ring.append(record)
            subscribers = list(self._subscribers)
        dropped = 0
        for subscription in subscribers:
            if not subscription._offer(record):
                dropped += 1
        if dropped:
            _drop_counter().inc(dropped, reason="slow_subscriber")
        self._write_line(line)
        return record

    def _write_line(self, line: str) -> None:
        with self._file_lock:
            path, max_bytes = self._path, self._max_bytes
            if path is None:
                return
            try:
                with path.open("a") as handle:
                    handle.write(line + "\n")
                    size = handle.tell()
                if max_bytes is not None and size >= max_bytes:
                    self._rotate_locked(path)
            except OSError:
                pass  # observability must never take the workload down

    def _rotate_locked(self, path: Path) -> None:
        """Shift ``path`` → ``.1`` → ``.2`` …, dropping beyond keep_rotated."""
        oldest = path.with_name(path.name + f".{self._keep_rotated}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self._keep_rotated - 1, 0, -1):
            source = path.with_name(path.name + f".{index}")
            if source.exists():
                source.rename(path.with_name(path.name + f".{index + 1}"))
        path.rename(path.with_name(path.name + ".1"))

    def tail(self, n: int = 50, event: Optional[str] = None) -> List[Dict[str, object]]:
        """The most recent ``n`` events (optionally of one kind), oldest first."""
        with self._lock:
            records = list(self._ring)
        if event is not None:
            records = [record for record in records if record.get("event") == event]
        return records[-n:]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


#: The process-wide sink; honours ``AN5D_EVENT_LOG`` at import.
EVENTS = EventLog(path=os.environ.get("AN5D_EVENT_LOG") or None)


def emit_event(event: str, **fields: object) -> Dict[str, object]:
    """Emit one structured event on the process-wide sink."""
    return EVENTS.emit(event, **fields)


def record_suppressed(
    site: str,
    error: BaseException,
    metrics: Optional[MetricsRegistry] = None,
    **fields: object,
) -> None:
    """Account for a deliberately swallowed exception (never let it be silent).

    Increments ``errors_swallowed_total{site,error_class}`` on the given
    registry (default: the process-wide one) and emits an
    ``error_suppressed`` event carrying the site, error class and message.
    """
    error_class = type(error).__name__
    registry = metrics if metrics is not None else get_registry()
    registry.counter(
        "errors_swallowed_total",
        "Errors swallowed by retry/supervision loops, by site and class",
        labels=("site", "error_class"),
    ).inc(site=site, error_class=error_class)
    emit_event(
        "error_suppressed",
        site=site,
        error_class=error_class,
        detail=str(error)[:500],
        **fields,
    )


__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "EVENTS",
    "EventLog",
    "EventSubscription",
    "emit_event",
    "record_suppressed",
]
