"""Command-line interface: the ``an5d`` tool.

Subcommands
-----------

``an5d list``
    List the benchmark stencils of Table 3.
``an5d compile <benchmark-or-file> [--bT 4 --bS 256 --hS 512]``
    Generate CUDA kernel + host code and print (or save) it.
``an5d tune <benchmark> [--gpu V100 --dtype float]``
    Run the model-guided autotuner and report the chosen configuration.
``an5d exhaustive <benchmark> [--gpu V100 --workers 4]``
    Sweep the entire pruned search space (optionally in parallel).
``an5d predict <benchmark> --bT 8 --bS 256``
    Print the analytic model's prediction for one configuration.
``an5d verify <benchmark> [--bT 4 --bS 32]``
    Verify the blocked execution against the NumPy reference.
``an5d compare <benchmark> [--gpu V100]``
    Compare AN5D against the baseline frameworks (one Fig. 6 group).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import api
from repro.core.config import BlockingConfig
from repro.stencils.library import BENCHMARKS, get_benchmark


def _parse_bs(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.replace("x", ",").split(",") if part)


def _add_blocking_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bT", type=int, default=4, help="temporal blocking degree")
    parser.add_argument(
        "--bS", type=_parse_bs, default=(256,), help="spatial block sizes, e.g. 256 or 32x32"
    )
    parser.add_argument("--hS", type=int, default=None, help="stream block length (optional)")
    parser.add_argument(
        "--regs", type=int, default=None, help="register limit per thread (-maxrregcount)"
    )


def _blocking_config(args: argparse.Namespace) -> BlockingConfig:
    return BlockingConfig(bT=args.bT, bS=args.bS, hS=args.hS, register_limit=args.regs)


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'name':<14} {'dims':>4} {'radius':>6} {'FLOP/cell':>10}  description")
    for name, benchmark in BENCHMARKS.items():
        print(
            f"{name:<14} {benchmark.ndim:>4} {benchmark.radius:>6} "
            f"{benchmark.paper_flops_per_cell:>10}  {benchmark.description}"
        )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    target = args.stencil
    if target in BENCHMARKS:
        source_or_pattern: str = target
        name = target
    else:
        path = Path(target)
        if not path.exists():
            print(f"error: {target!r} is neither a benchmark name nor a file", file=sys.stderr)
            return 2
        source_or_pattern = path.read_text()
        name = path.stem
    compiled = api.compile_stencil(
        source_or_pattern,
        name=name,
        dtype=args.dtype,
        config=_blocking_config(args),
    )
    output = compiled.cuda.full_source
    if args.output:
        Path(args.output).write_text(output)
        print(f"wrote {len(output.splitlines())} lines to {args.output}")
    else:
        print(output)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    result = api.tune(args.stencil, gpu=args.gpu, dtype=args.dtype, time_steps=args.time_steps)
    row = result.as_row()
    print(f"best configuration for {args.stencil} on {args.gpu} ({args.dtype}):")
    for key, value in row.items():
        print(f"  {key:>14}: {value}")
    print(f"  model accuracy: {result.model_accuracy:.2f}")
    return 0


def _cmd_exhaustive(args: argparse.Namespace) -> int:
    result = api.exhaustive(
        args.stencil,
        gpu=args.gpu,
        dtype=args.dtype,
        time_steps=args.time_steps,
        workers=args.workers,
    )
    print(
        f"exhaustive optimum for {args.stencil} on {args.gpu} ({args.dtype}), "
        f"{result.evaluated} simulated runs:"
    )
    for key, value in result.as_row().items():
        print(f"  {key:>14}: {value}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    config = _blocking_config(args)
    prediction = api.predict(args.stencil, config, gpu=args.gpu, dtype=args.dtype)
    measured = api.simulate(args.stencil, config, gpu=args.gpu, dtype=args.dtype)
    print(f"{args.stencil} on {args.gpu} ({args.dtype}), {config.describe()}:")
    print(f"  model:     {prediction.gflops:9.1f} GFLOP/s  (bottleneck: {prediction.bottleneck})")
    print(f"  simulated: {measured.gflops:9.1f} GFLOP/s  (bottleneck: {measured.bottleneck})")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    result = api.verify(
        args.stencil,
        bT=args.bT,
        bS=args.bS,
        hS=args.hS,
        time_steps=args.time_steps,
        dtype=args.dtype,
    )
    status = "OK" if result.matches else "MISMATCH"
    print(
        f"{status}: blocked execution vs reference, "
        f"max relative error {result.max_relative_error:.3e}"
    )
    return 0 if result.matches else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    config = api.sconf(args.stencil, args.dtype)
    rows = [
        ("Loop Tiling", api.baseline("loop", args.stencil, args.gpu, args.dtype).gflops),
        ("Hybrid Tiling", api.baseline("hybrid", args.stencil, args.gpu, args.dtype).gflops),
        ("STENCILGEN", api.baseline("stencilgen", args.stencil, args.gpu, args.dtype).gflops),
        ("AN5D (Sconf)", api.simulate(args.stencil, config, args.gpu, args.dtype).gflops),
    ]
    tuned = api.tune(args.stencil, gpu=args.gpu, dtype=args.dtype)
    rows.append(("AN5D (Tuned)", tuned.best.measured_gflops))
    rows.append(("AN5D (Model)", tuned.best.predicted_gflops))
    print(f"{args.stencil} on {args.gpu} ({args.dtype}):")
    for framework, gflops in rows:
        print(f"  {framework:<14} {gflops:9.1f} GFLOP/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="an5d",
        description="AN5D reproduction: stencil compilation, tuning and evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark stencils").set_defaults(func=_cmd_list)

    compile_parser = sub.add_parser("compile", help="generate CUDA code for a stencil")
    compile_parser.add_argument("stencil", help="benchmark name or path to a C source file")
    compile_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    compile_parser.add_argument("--output", "-o", help="write the generated code to a file")
    _add_blocking_arguments(compile_parser)
    compile_parser.set_defaults(func=_cmd_compile)

    tune_parser = sub.add_parser("tune", help="autotune a benchmark stencil")
    tune_parser.add_argument("stencil")
    tune_parser.add_argument("--gpu", default="V100")
    tune_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    tune_parser.add_argument("--time-steps", type=int, default=1000)
    tune_parser.set_defaults(func=_cmd_tune)

    exhaustive_parser = sub.add_parser(
        "exhaustive", help="sweep the entire pruned search space"
    )
    exhaustive_parser.add_argument("stencil")
    exhaustive_parser.add_argument("--gpu", default="V100")
    exhaustive_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    exhaustive_parser.add_argument("--time-steps", type=int, default=1000)
    exhaustive_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for the sweep"
    )
    exhaustive_parser.set_defaults(func=_cmd_exhaustive)

    predict_parser = sub.add_parser("predict", help="model + simulator prediction")
    predict_parser.add_argument("stencil")
    predict_parser.add_argument("--gpu", default="V100")
    predict_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    _add_blocking_arguments(predict_parser)
    predict_parser.set_defaults(func=_cmd_predict)

    verify_parser = sub.add_parser("verify", help="verify blocked execution vs reference")
    verify_parser.add_argument("stencil")
    verify_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    verify_parser.add_argument("--time-steps", type=int, default=8)
    _add_blocking_arguments(verify_parser)
    verify_parser.set_defaults(func=_cmd_verify)

    compare_parser = sub.add_parser("compare", help="compare against baseline frameworks")
    compare_parser.add_argument("stencil")
    compare_parser.add_argument("--gpu", default="V100")
    compare_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    compare_parser.set_defaults(func=_cmd_compare)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
