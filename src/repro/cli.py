"""Command-line interface: the ``an5d`` tool.

Subcommands
-----------

``an5d list``
    List the benchmark stencils of Table 3.
``an5d compile <benchmark-or-file> [--bT 4 --bS 256 --hS 512]``
    Generate CUDA kernel + host code and print (or save) it.
``an5d tune <benchmark> [--gpu V100 --dtype float]``
    Run the model-guided autotuner and report the chosen configuration.
``an5d exhaustive <benchmark> [--gpu V100 --workers 4]``
    Sweep the entire pruned search space (optionally in parallel).
``an5d predict <benchmark> --bT 8 --bS 256``
    Print the analytic model's prediction for one configuration.
``an5d verify <benchmark> [--bT 4 --bS 32]``
    Verify the blocked execution against the NumPy reference.
``an5d compare <benchmark> [--gpu V100]``
    Compare AN5D against the baseline frameworks (one Fig. 6 group).
``an5d campaign run|status|report|export|prune``
    Batch service: run (or resume) a campaign over the benchmark x GPU
    matrix against a persistent result store, inspect its progress, render
    leaderboards/Table-5 matrices, export diff-able JSONL/CSV artifacts,
    and prune results left behind by stale code versions.
``an5d serve [--host 127.0.0.1 --port 8000 --store campaign.sqlite]``
    Long-running HTTP front-end over the same campaign layer: submit specs
    with ``POST /campaigns``, poll ``GET /campaigns/{id}``, stream reports
    and exports.  ``POST /predict``/``POST /tune`` answer single jobs
    synchronously from a hot model cache; ``--max-queued`` and
    ``--reserve-interactive`` add admission control so sweeps cannot starve
    interactive traffic.  Results land in the shared store, so the service
    and the CLI subcommands above are interchangeable.  ``--cluster`` (plus
    ``--instance-id``/``--role``) joins the store's cluster: the instance
    registers itself, heartbeats, and accepts coordinator shard assignments.
``an5d top [--watch N | --follow | --history]``
    Cluster-wide throughput/latency view scraped from ``/metrics``;
    ``--follow`` tails the server's push event stream instead of polling,
    ``--history`` renders the store's telemetry snapshots plus the
    regression-delta report across runs and code versions.
``an5d campaign watch <id>``
    Tail one campaign's push stream: every per-job completion as it lands,
    ending with the terminal run summary.
``an5d profile [--url ... --seconds 2]``
    Sampling profiler: folded stacks (flamegraph collapse format) from a
    running service's ``GET /profile`` (or this process with ``--url ''``).
``an5d cluster up|coordinator|status|submit``
    Horizontal scale-out: boot N workers + a coordinator in one process
    (``up``), run a dedicated coordinator (``coordinator``), inspect
    membership/liveness/progress (``status``), and submit campaigns that the
    coordinator shards over live instances (``submit``).

Failures exit non-zero: ``1`` for work that ran and failed (verification
mismatch, failed campaign jobs), ``2`` for requests that could not be
carried out at all (unknown benchmarks/GPUs/reports, invalid parameters,
missing files/stores).  Error text goes to stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

import repro
from repro import api
from repro.core.config import BlockingConfig, ConfigurationError
from repro.stencils.library import BENCHMARKS, get_benchmark


def _parse_bs(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.replace("x", ",").split(",") if part)


def _add_blocking_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bT", type=int, default=4, help="temporal blocking degree")
    parser.add_argument(
        "--bS", type=_parse_bs, default=(256,), help="spatial block sizes, e.g. 256 or 32x32"
    )
    parser.add_argument("--hS", type=int, default=None, help="stream block length (optional)")
    parser.add_argument(
        "--regs", type=int, default=None, help="register limit per thread (-maxrregcount)"
    )


def _blocking_config(args: argparse.Namespace) -> BlockingConfig:
    return BlockingConfig(bT=args.bT, bS=args.bS, hS=args.hS, register_limit=args.regs)


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'name':<14} {'dims':>4} {'radius':>6} {'FLOP/cell':>10}  description")
    for name, benchmark in BENCHMARKS.items():
        print(
            f"{name:<14} {benchmark.ndim:>4} {benchmark.radius:>6} "
            f"{benchmark.paper_flops_per_cell:>10}  {benchmark.description}"
        )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    target = args.stencil
    if target in BENCHMARKS:
        source_or_pattern: str = target
        name = target
    else:
        path = Path(target)
        if not path.exists():
            print(f"error: {target!r} is neither a benchmark name nor a file", file=sys.stderr)
            return 2
        source_or_pattern = path.read_text()
        name = path.stem
    compiled = api.compile_stencil(
        source_or_pattern,
        name=name,
        dtype=args.dtype,
        config=_blocking_config(args),
    )
    output = compiled.cuda.full_source
    if args.output:
        Path(args.output).write_text(output)
        print(f"wrote {len(output.splitlines())} lines to {args.output}")
    else:
        print(output)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    result = api.tune(
        args.stencil,
        gpu=args.gpu,
        dtype=args.dtype,
        time_steps=args.time_steps,
        engine=args.engine,
    )
    row = result.as_row()
    print(f"best configuration for {args.stencil} on {args.gpu} ({args.dtype}):")
    for key, value in row.items():
        print(f"  {key:>14}: {value}")
    print(f"  model accuracy: {result.model_accuracy:.2f}")
    return 0


def _cmd_exhaustive(args: argparse.Namespace) -> int:
    from repro.model.batch import resolve_engine
    from repro.stencils.library import load_pattern

    engine = resolve_engine(args.engine, load_pattern(args.stencil, args.dtype))
    start = time.perf_counter()
    result = api.exhaustive(
        args.stencil,
        gpu=args.gpu,
        dtype=args.dtype,
        time_steps=args.time_steps,
        workers=args.workers,
        engine=engine,
    )
    elapsed = time.perf_counter() - start
    print(
        f"exhaustive optimum for {args.stencil} on {args.gpu} ({args.dtype}), "
        f"{result.evaluated} simulated runs:"
    )
    for key, value in result.as_row().items():
        print(f"  {key:>14}: {value}")
    rate = result.evaluated / elapsed if elapsed > 0 else float("inf")
    print(
        f"evaluated {result.evaluated} configs in {elapsed:.3f}s "
        f"({rate:.0f} configs/s, engine={engine})"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    config = _blocking_config(args)
    prediction = api.predict(args.stencil, config, gpu=args.gpu, dtype=args.dtype)
    measured = api.simulate(args.stencil, config, gpu=args.gpu, dtype=args.dtype)
    print(f"{args.stencil} on {args.gpu} ({args.dtype}), {config.describe()}:")
    print(f"  model:     {prediction.gflops:9.1f} GFLOP/s  (bottleneck: {prediction.bottleneck})")
    print(f"  simulated: {measured.gflops:9.1f} GFLOP/s  (bottleneck: {measured.bottleneck})")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    result = api.verify(
        args.stencil,
        bT=args.bT,
        bS=args.bS,
        hS=args.hS,
        time_steps=args.time_steps,
        dtype=args.dtype,
    )
    message = (
        f"{'OK' if result.matches else 'MISMATCH'}: blocked execution vs reference, "
        f"max relative error {result.max_relative_error:.3e}"
    )
    if result.matches:
        print(message)
        return 0
    print(message, file=sys.stderr)
    return 1


def _cmd_compare(args: argparse.Namespace) -> int:
    config = api.sconf(args.stencil, args.dtype)
    rows = [
        ("Loop Tiling", api.baseline("loop", args.stencil, args.gpu, args.dtype).gflops),
        ("Hybrid Tiling", api.baseline("hybrid", args.stencil, args.gpu, args.dtype).gflops),
        ("STENCILGEN", api.baseline("stencilgen", args.stencil, args.gpu, args.dtype).gflops),
        ("AN5D (Sconf)", api.simulate(args.stencil, config, args.gpu, args.dtype).gflops),
    ]
    tuned = api.tune(args.stencil, gpu=args.gpu, dtype=args.dtype)
    rows.append(("AN5D (Tuned)", tuned.best.measured_gflops))
    rows.append(("AN5D (Model)", tuned.best.predicted_gflops))
    print(f"{args.stencil} on {args.gpu} ({args.dtype}):")
    for framework, gflops in rows:
        print(f"  {framework:<14} {gflops:9.1f} GFLOP/s")
    return 0


# -- campaign subcommands ---------------------------------------------------------


def _parse_names(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _parse_indices(text: str) -> tuple[int, ...]:
    return tuple(int(part.strip()) for part in text.split(",") if part.strip())


def _campaign_benchmarks(text: str) -> tuple[str, ...]:
    names = _parse_names(text)
    return () if names in ((), ("all",)) else names


def _add_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-matrix flags shared by ``campaign run`` and ``cluster submit``."""
    parser.add_argument(
        "--benchmarks",
        type=_campaign_benchmarks,
        default=(),
        help="comma-separated benchmark names ('all' or omit for every Table 3 stencil)",
    )
    parser.add_argument("--gpus", type=_parse_names, default=("V100",))
    parser.add_argument("--dtypes", type=_parse_names, default=("float",))
    parser.add_argument(
        "--kinds",
        type=_parse_names,
        default=("tune",),
        help="job kinds: tune,exhaustive,verify,baseline,predict",
    )
    parser.add_argument("--time-steps", type=int, default=1000)
    parser.add_argument(
        "--interior-2d", type=_parse_bs, default=None,
        help="2-D interior grid, e.g. 512x512 (default: the paper's 16384x16384)",
    )
    parser.add_argument(
        "--interior-3d", type=_parse_bs, default=None,
        help="3-D interior grid, e.g. 48x48x48 (default: the paper's 512^3)",
    )
    parser.add_argument("--top-k", type=int, default=5)


def _campaign_spec(args: argparse.Namespace):
    from repro.campaign import CampaignSpec

    interiors = {}
    if args.interior_2d is not None:
        interiors["interior_2d"] = args.interior_2d
    if args.interior_3d is not None:
        interiors["interior_3d"] = args.interior_3d
    return CampaignSpec(
        benchmarks=args.benchmarks,
        gpus=args.gpus,
        dtypes=args.dtypes,
        kinds=args.kinds,
        time_steps=args.time_steps,
        top_k=args.top_k,
        **interiors,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    def progress(job, status):
        stream = sys.stdout if status == "ok" else sys.stderr
        print(f"  [{status}] {job.describe()}", file=stream)

    outcome = api.campaign(
        benchmarks=args.benchmarks,
        gpus=args.gpus,
        dtypes=args.dtypes,
        kinds=args.kinds,
        store=args.store,
        workers=args.workers,
        time_steps=args.time_steps,
        timeout=args.timeout,
        retries=args.retries,
        shards=args.shards,
        shard_index=args.shard,
        shard_indices=args.shard_indices,
        top_k=args.top_k,
        interior_2d=args.interior_2d,
        interior_3d=args.interior_3d,
        progress=progress if args.verbose else None,
    )
    for key, value in outcome.as_row().items():
        print(f"  {key:>14}: {value}")
    if outcome.failed:
        for failure in outcome.failures:
            print(f"error: job failed: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Run a standing differential-fuzzing campaign over generated stencils."""
    from repro.stencils.generators import fuzz_stencil, parse_fuzz_name

    if args.show is not None:
        parsed = parse_fuzz_name(args.show)
        if parsed is None:
            print(
                f"error: {args.show!r} is not a fuzz stencil name "
                "(expected fuzz-SEED-INDEX)",
                file=sys.stderr,
            )
            return 2
        stencil = fuzz_stencil(*parsed)
        print(stencil.describe())
        print()
        print(stencil.source)
        return 0

    def progress(job, status):
        stream = sys.stdout if status == "ok" else sys.stderr
        print(f"  [{status}] {job.describe()}", file=stream)

    outcome, records = api.fuzz(
        seed=args.seed,
        count=args.count,
        gpus=args.gpus,
        store=args.store,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        progress=progress if args.verbose else None,
    )
    diverged = 0
    for record in records:
        payload = record["payload"]
        passed = record["status"] == "ok" and payload.get("passed", False)
        if not passed:
            diverged += 1
        checks = payload.get("checks", [])
        verdict = "pass" if passed else ("DIVERGED" if checks else "ERROR")
        print(
            f"  {record['pattern']:<14} {record['dtype']:<6} {record['grid']:<10}"
            f" {len(checks)} checks  {verdict}"
        )
        if args.verbose or not passed:
            for check in checks:
                status = "ok" if check["passed"] else "FAIL"
                detail = f"  ({check['detail']})" if check.get("detail") else ""
                print(f"      [{status}] {check['check']}{detail}")
            if record["status"] != "ok":
                print(f"      error: {payload.get('error', record['status'])}")
    coverage = api.fuzz_coverage(args.store)
    if coverage:
        print("  coverage (family x check, from the store's fuzz rows):")
        for row in coverage:
            print(
                f"    {row['family']:<8} {row['check']:<26} "
                f"{row['passed']}/{row['runs']} passed"
            )
    for key, value in outcome.as_row().items():
        print(f"  {key:>14}: {value}")
    if outcome.failed:
        for failure in outcome.failures:
            print(f"error: job failed: {failure}", file=sys.stderr)
        return 1
    if diverged:
        print(
            f"error: {diverged} stencil(s) diverged; reproduce any of them with "
            f"'an5d fuzz --show fuzz-{args.seed}-INDEX'",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    """Consume one campaign's push stream: per-job lines as they land."""
    from repro.obs.top import stream_records

    query = f"?timeout={args.timeout}"
    if args.wait:
        query += "&wait=1"
    url = f"{args.url.rstrip('/')}/campaigns/{args.id}/stream{query}"
    finished = False
    failed = False
    for record in stream_records(url, timeout=max(args.timeout, 30.0)):
        event = record.get("event")
        if event == "stream_open":
            print(
                f"streaming campaign {record.get('campaign')} "
                f"(state: {record.get('state')})"
            )
            if record.get("state") in ("done", "failed"):
                finished = True
                failed = record.get("state") == "failed"
        elif event == "campaign_run_started":
            print(
                f"  run started: {record.get('pending')} pending of "
                f"{record.get('total')} ({record.get('cached')} cached)"
            )
        elif event == "job_finished":
            status = record.get("status")
            stream = sys.stdout if status == "ok" else sys.stderr
            print(
                f"  [{status}] {record.get('job')} ({record.get('elapsed_s')}s)",
                file=stream,
            )
        elif event == "campaign_run_finished":
            finished = True
            failed = not record.get("ok", False)
            print(
                f"run finished: ok={record.get('ok')} "
                f"executed={record.get('executed')} cached={record.get('cached')} "
                f"failed={record.get('failed')} in {record.get('duration_s')}s"
            )
        elif event == "campaign_failed":
            finished = True
            failed = True
            print(
                f"error: campaign failed: "
                f"{record.get('detail') or record.get('error_class')}",
                file=sys.stderr,
            )
        sys.stdout.flush()
    if not finished:
        print("error: stream ended before the campaign finished", file=sys.stderr)
        return 1
    return 1 if failed else 0


def _cmd_campaign_prune(args: argparse.Namespace) -> int:
    """List or drop results recorded under stale code versions."""
    from repro.campaign import ResultStore

    if not Path(args.store).exists():
        print(f"error: no campaign store at {args.store!r}", file=sys.stderr)
        return 2
    current = repro.__version__
    with ResultStore(args.store) as store:
        versions = store.code_versions()
        if args.code_version is None and not args.stale:
            # Pure listing: what is in the store, and what prune would drop.
            print(f"{'code version':<16} {'results':>8}  note")
            for version, count in versions.items():
                note = "current" if version == current else "stale"
                print(f"{version:<16} {count:>8}  {note}")
            return 0
        targets = list(args.code_version or [])
        if args.stale:
            targets.extend(v for v in versions if v != current)
        targets = [v for i, v in enumerate(targets) if v not in targets[:i]]
        if not targets:
            print("nothing to prune: every result is from the current code version")
            return 0
        # Validate every target before dropping anything: a guard tripping
        # mid-loop must not leave a partial, irreversible purge behind.
        if current in targets and not args.force:
            print(
                f"error: {current!r} is the current code version; "
                "pass --force to drop current results",
                file=sys.stderr,
            )
            return 2
        for version in targets:
            if version not in versions:
                print(f"  {version}: no results")
                continue
            if args.dry_run:
                print(f"  {version}: would drop {versions[version]} result(s)")
            else:
                dropped = store.purge_code_version(version)
                print(f"  {version}: dropped {dropped} result(s)")
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore, campaign_summary

    if not Path(args.store).exists():
        print(f"error: no campaign store at {args.store!r}", file=sys.stderr)
        return 2
    with ResultStore(args.store) as store:
        print(campaign_summary(store).to_text())
        failed = store.count("failed")
    return 1 if failed else 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    if not Path(args.store).exists():
        print(f"error: no campaign store at {args.store!r}", file=sys.stderr)
        return 2
    options = {}
    if args.report == "leaderboard":
        options = {"gpu": args.gpu, "dtype": args.dtype, "top": args.top}
    elif args.report == "table5":
        options = {"value": args.value}
    table = api.campaign_report(args.store, report=args.report, **options)
    if args.output:
        path = table.save(args.output)
        print(f"wrote {len(table.rows)} rows to {path}")
    else:
        print(table.to_text())
    return 0


def _cmd_campaign_export(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore

    if not Path(args.store).exists():
        print(f"error: no campaign store at {args.store!r}", file=sys.stderr)
        return 2
    with ResultStore(args.store) as store:
        filters = {"kind": args.kind, "ok_only": not args.all}
        destination = Path(args.output)
        if destination.suffix in (".jsonl", ".json"):
            records = store.export_records(**filters)
            exporter = store.export_jsonl if destination.suffix == ".jsonl" else store.export_json
            path = exporter(destination, records=records)
            count = len(records)
        else:
            table = store.to_table(**filters)
            path = table.save(destination)
            count = len(table.rows)
    print(f"exported {count} result(s) to {path}")
    return 0


def _add_campaign_parsers(sub: argparse._SubParsersAction) -> None:
    campaign = sub.add_parser(
        "campaign", help="batch campaigns over the benchmark x GPU matrix"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    run_parser = campaign_sub.add_parser("run", help="run or resume a campaign")
    _add_matrix_arguments(run_parser)
    run_parser.add_argument("--store", default="campaign.sqlite")
    run_parser.add_argument("--workers", type=int, default=1)
    run_parser.add_argument("--timeout", type=float, default=None, help="per-job seconds")
    run_parser.add_argument("--retries", type=int, default=1)
    run_parser.add_argument("--shards", type=int, default=1)
    run_parser.add_argument("--shard", type=int, default=0, help="this worker's shard index")
    run_parser.add_argument(
        "--shard-indices", type=_parse_indices, default=None,
        help="own several shard indices of the partition, e.g. 0,2 (overrides --shard)",
    )
    run_parser.add_argument("--verbose", "-v", action="store_true")
    run_parser.set_defaults(func=_cmd_campaign_run)

    status_parser = campaign_sub.add_parser("status", help="summarise the result store")
    status_parser.add_argument("--store", default="campaign.sqlite")
    status_parser.set_defaults(func=_cmd_campaign_status)

    report_parser = campaign_sub.add_parser("report", help="render a report from the store")
    report_parser.add_argument("--store", default="campaign.sqlite")
    report_parser.add_argument(
        "--report", choices=("table5", "leaderboard", "accuracy", "summary"), default="table5"
    )
    report_parser.add_argument("--value", default="tuned_gflops", help="table5 cell field")
    report_parser.add_argument("--gpu", default=None)
    report_parser.add_argument("--dtype", default=None)
    report_parser.add_argument("--top", type=int, default=10)
    report_parser.add_argument("--output", "-o", help="save as .csv/.json/.jsonl/.md/.txt")
    report_parser.set_defaults(func=_cmd_campaign_report)

    export_parser = campaign_sub.add_parser("export", help="export raw results")
    export_parser.add_argument("--store", default="campaign.sqlite")
    export_parser.add_argument("--output", "-o", required=True)
    export_parser.add_argument("--kind", default=None, help="only one job kind")
    export_parser.add_argument(
        "--all", action="store_true", help="include failed results, not just ok"
    )
    export_parser.set_defaults(func=_cmd_campaign_export)

    watch_parser = campaign_sub.add_parser(
        "watch", help="tail one campaign's push stream (per-job completions)"
    )
    watch_parser.add_argument("id", help="campaign id (from POST /campaigns)")
    watch_parser.add_argument(
        "--url", default="http://127.0.0.1:8000", help="the serving instance"
    )
    watch_parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="stream lifetime cap in seconds (server-side)",
    )
    watch_parser.add_argument(
        "--wait", action="store_true",
        help="subscribe even before the id is known (stream ahead of submission)",
    )
    watch_parser.set_defaults(func=_cmd_campaign_watch)

    prune_parser = campaign_sub.add_parser(
        "prune", help="list or drop results from stale code versions"
    )
    prune_parser.add_argument("--store", default="campaign.sqlite")
    prune_parser.add_argument(
        "--code-version", action="append", default=None,
        help="drop results recorded under this code version (repeatable)",
    )
    prune_parser.add_argument(
        "--stale", action="store_true",
        help="drop results from every version except the current one",
    )
    prune_parser.add_argument(
        "--dry-run", action="store_true", help="report what would be dropped"
    )
    prune_parser.add_argument(
        "--force", action="store_true",
        help="allow dropping results of the current code version",
    )
    prune_parser.set_defaults(func=_cmd_campaign_prune)


def _cluster_config(args: argparse.Namespace, role: str):
    from repro.cluster import ClusterConfig, generate_instance_id

    return ClusterConfig(
        instance_id=args.instance_id or generate_instance_id(),
        role=role,
        heartbeat_interval=args.heartbeat_interval,
        liveness_timeout=args.liveness_timeout,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import CampaignServer, WorkerSettings

    event_log = getattr(args, "event_log", None)
    if event_log:
        from repro.obs import EVENTS

        EVENTS.configure(
            event_log,
            max_bytes=getattr(args, "event_log_max_bytes", None),
            keep_rotated=getattr(args, "event_log_keep", 3),
        )
    if getattr(args, "profile", False):
        from repro.obs import arm_profiler

        arm_profiler(hz=getattr(args, "profile_hz", None))
    role = getattr(args, "role", "worker")
    coordinator_url = getattr(args, "coordinator_url", None)
    cluster = None
    if coordinator_url is not None:
        # Wire-native worker: no filesystem access to the store — results
        # commit to the coordinator over HTTP, journaled locally while it
        # is unreachable.  Implies cluster membership in the worker role.
        if role != "worker":
            print(
                "error: --coordinator-url is a worker-only mode "
                "(coordinators need direct store access)",
                file=sys.stderr,
            )
            return 2
        cluster = _cluster_config(args, "worker")
        store = _wire_store(args, coordinator_url)
    else:
        if getattr(args, "cluster", False) or role != "worker":
            cluster = _cluster_config(args, role)
        store = args.store
    server = CampaignServer(
        host=args.host,
        port=args.port,
        store=store,
        settings=WorkerSettings(
            workers=args.workers,
            concurrency=args.concurrency,
            timeout=args.timeout,
            retries=args.retries,
            max_queued=getattr(args, "max_queued", None),
            reserve_interactive=getattr(args, "reserve_interactive", 0),
        ),
        quiet=not args.verbose,
        cluster=cluster,
        advertise_host=getattr(args, "advertise_host", None),
        telemetry_interval=getattr(args, "telemetry_interval", None),
        telemetry_keep=getattr(args, "telemetry_keep", 1000),
    )
    shown_store = server.app.store.path if coordinator_url is not None else args.store
    print(f"an5d campaign service on {server.url} (store: {shown_store})")
    if cluster is not None:
        print(f"cluster member {cluster.instance_id} (role: {cluster.role})")
    print("endpoints: POST /campaigns  GET /campaigns/{id}[/report|/export]  GET /healthz")
    print("fast path: POST /predict  POST /tune  (synchronous, hot-cached)")
    if cluster is not None and cluster.coordinates:
        print("cluster:   POST /cluster/campaigns  GET /cluster/status|/cluster/instances")
    sys.stdout.flush()
    try:
        server.run()
    finally:
        server.stop()
    return 0


def _wire_store(args: argparse.Namespace, coordinator_url: str):
    """Build the wire-native store an ``an5d serve --coordinator-url`` uses."""
    from repro.cluster.remote import RemoteStore

    journal = getattr(args, "journal", None)
    if journal is None:
        journal = f"an5d-worker-{os.getpid()}.journal.jsonl"
    return RemoteStore(
        coordinator_url,
        journal=journal,
        flush_interval=getattr(args, "flush_interval", 0.2),
        backoff_cap_s=getattr(args, "backoff_cap", 2.0),
    )


def _add_cluster_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instance-id", default=None,
        help="stable cluster instance id (default: generated)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=2.0,
        help="seconds between registry heartbeats",
    )
    parser.add_argument(
        "--liveness-timeout", type=float, default=10.0,
        help="heartbeat age beyond which an instance counts as dead",
    )
    parser.add_argument(
        "--advertise-host", default=None,
        help="address peers should dial (required sense when binding 0.0.0.0)",
    )


def _add_serve_parser(sub: argparse._SubParsersAction) -> None:
    serve_parser = sub.add_parser(
        "serve", help="serve campaigns over HTTP against a shared result store"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8000, help="0 = ephemeral port")
    serve_parser.add_argument("--store", default="campaign.sqlite")
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="multiprocessing fan-out for scalar-simulator jobs",
    )
    serve_parser.add_argument(
        "--concurrency", type=int, default=2,
        help="campaigns the async worker overlaps",
    )
    serve_parser.add_argument("--timeout", type=float, default=None, help="per-job seconds")
    serve_parser.add_argument("--retries", type=int, default=1)
    serve_parser.add_argument(
        "--max-queued", type=int, default=None,
        help="admission control: reject campaign submissions beyond this "
        "many queued-or-running campaigns with 429 + Retry-After",
    )
    serve_parser.add_argument(
        "--reserve-interactive", type=int, default=0,
        help="concurrency slots reserved for small campaigns so an "
        "exhaustive sweep cannot monopolize the worker",
    )
    serve_parser.add_argument(
        "--cluster", action="store_true",
        help="join the store's cluster: register, heartbeat, accept shard assignments",
    )
    serve_parser.add_argument(
        "--role", choices=("worker", "coordinator", "both"), default="worker",
        help="cluster role (a non-worker role implies --cluster)",
    )
    serve_parser.add_argument(
        "--coordinator-url", default=None,
        help="wire-native worker: commit results to this coordinator over "
        "HTTP instead of opening --store (implies --cluster, worker role)",
    )
    serve_parser.add_argument(
        "--journal", default=None,
        help="wire-native spill journal path (default: an5d-worker-<pid>."
        "journal.jsonl); drained on reconnect, replayed after a crash",
    )
    serve_parser.add_argument(
        "--flush-interval", type=float, default=0.2,
        help="seconds between wire-commit journal flushes",
    )
    serve_parser.add_argument(
        "--backoff-cap", type=float, default=2.0,
        help="max seconds between flush retries while the coordinator is down",
    )
    serve_parser.add_argument(
        "--event-log", default=None,
        help="append structured JSONL events to this file (also honours the "
        "AN5D_EVENT_LOG environment variable)",
    )
    serve_parser.add_argument(
        "--event-log-max-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the event-log file once it exceeds BYTES "
        "(<path>.1 ... <path>.N, oldest deleted)",
    )
    serve_parser.add_argument(
        "--event-log-keep", type=int, default=3, metavar="N",
        help="rotated event-log generations to keep (default: 3)",
    )
    serve_parser.add_argument(
        "--telemetry-interval", type=float, default=None, metavar="SECS",
        help="persist a metrics snapshot into the store's telemetry table "
        "every SECS seconds (surfaced by GET /telemetry/history and "
        "'an5d top --history')",
    )
    serve_parser.add_argument(
        "--telemetry-keep", type=int, default=1000, metavar="N",
        help="telemetry snapshots to retain (default: 1000)",
    )
    serve_parser.add_argument(
        "--profile", action="store_true",
        help="arm the sampling profiler: scheduler/engine hot paths record "
        "folded stacks, ready for GET /profile and 'an5d profile'",
    )
    serve_parser.add_argument(
        "--profile-hz", type=float, default=None,
        help="profiler sampling rate when armed (default: 97 Hz)",
    )
    _add_cluster_serve_arguments(serve_parser)
    serve_parser.add_argument("--verbose", "-v", action="store_true", help="log requests")
    serve_parser.set_defaults(func=_cmd_serve)


def _cmd_top_history(args: argparse.Namespace) -> int:
    import json

    from repro.obs.top import render_history

    store_path = getattr(args, "store", None)
    if store_path:
        # Offline mode: read the telemetry table straight from the store —
        # the post-run regression view needs no live server.
        from repro.campaign import ResultStore

        store = ResultStore(store_path)
        try:
            rows = store.telemetry_rows(limit=args.limit)
        finally:
            store.close()
        print(render_history(rows))
        return 0
    import urllib.request

    url = f"{args.url.rstrip('/')}/telemetry/history?limit={args.limit}"
    with urllib.request.urlopen(url, timeout=args.timeout) as response:
        payload = json.loads(response.read())
    print(
        render_history(
            payload.get("snapshots", []),
            payload.get("deltas"),
            payload.get("code_versions"),
        )
    )
    return 0


def _cmd_top_follow(args: argparse.Namespace) -> int:
    from repro.obs.top import collect, render, stream_records

    url = args.url.rstrip("/")
    rows = collect(url, timeout=args.timeout)
    print(render(rows))
    kinds = "job_finished,campaign_run_started,campaign_run_finished,campaign_failed"
    stream_url = f"{url}/events/stream?event={kinds}"
    print(f"following {stream_url} (ctrl-c to stop)")
    sys.stdout.flush()
    try:
        for record in stream_records(stream_url, timeout=max(args.timeout, 30.0)):
            event = record.get("event")
            if event == "job_finished":
                print(
                    f"  [{record.get('status')}] {record.get('job')} "
                    f"({record.get('elapsed_s')}s)"
                )
            elif event == "campaign_run_started":
                print(
                    f"  campaign {record.get('campaign', '?')}: "
                    f"{record.get('pending')} pending of {record.get('total')} "
                    f"({record.get('cached')} cached)"
                )
            else:  # terminal campaign events: refresh the cluster table
                print(f"  {event}: {record.get('campaign', '?')}")
                previous, rows = rows, collect(url, timeout=args.timeout)
                print(render(rows, previous=previous))
            sys.stdout.flush()
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        pass
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.top import collect, render

    if args.history:
        return _cmd_top_history(args)
    if args.follow:
        return _cmd_top_follow(args)
    url = args.url.rstrip("/")
    rows = collect(url, timeout=args.timeout)
    print(render(rows))
    if not args.watch:
        return 0
    refreshed = 0
    try:
        while args.iterations <= 0 or refreshed < args.iterations:
            refreshed += 1
            _time.sleep(args.watch)
            previous, rows = rows, collect(url, timeout=args.timeout)
            # Clear + home, like top(1); rates come from the scrape deltas.
            print("\033[2J\033[H", end="")
            print(render(rows, previous=previous, interval_s=args.watch))
            sys.stdout.flush()
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        pass
    return 0


def _add_top_parser(sub: argparse._SubParsersAction) -> None:
    top_parser = sub.add_parser(
        "top",
        help="cluster-wide throughput/queue/latency view scraped from /metrics",
    )
    top_parser.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="any cluster member (or solo server); instances are discovered "
        "from its /cluster/instances",
    )
    top_parser.add_argument(
        "--watch", type=float, default=0.0, metavar="SECS",
        help="refresh every SECS seconds (0 = one-shot)",
    )
    top_parser.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N refreshes in --watch mode (0 = until interrupted)",
    )
    top_parser.add_argument("--timeout", type=float, default=5.0, help="scrape timeout")
    top_parser.add_argument(
        "--follow", action="store_true",
        help="push mode: render once, then tail the server's event stream "
        "(per-job completions as they land) instead of polling",
    )
    top_parser.add_argument(
        "--history", action="store_true",
        help="render the persisted telemetry snapshots and the "
        "regression-delta report across runs and code versions",
    )
    top_parser.add_argument(
        "--store", default=None,
        help="with --history: read the telemetry table from this store "
        "file directly instead of a live server",
    )
    top_parser.add_argument(
        "--limit", type=int, default=50,
        help="with --history: newest snapshots to show (default: 50)",
    )
    top_parser.set_defaults(func=_cmd_top)


def _cmd_profile(args: argparse.Namespace) -> int:
    """Sample a running service (or this process) into folded stacks."""
    if args.url:
        import urllib.request

        url = (
            f"{args.url.rstrip('/')}/profile?seconds={args.seconds}"
            + (f"&hz={args.hz}" if args.hz else "")
        )
        with urllib.request.urlopen(url, timeout=args.seconds + 30.0) as response:
            body = response.read().decode("utf-8")
            samples = response.headers.get("X-Profile-Samples", "?")
    else:
        from repro.obs import profile_for

        body, samples = profile_for(
            args.seconds, **({"hz": args.hz} if args.hz else {})
        )
        if body and not body.endswith("\n"):
            body += "\n"
    if args.output:
        Path(args.output).write_text(body, encoding="utf-8")
        print(f"{samples} samples over {args.seconds}s -> {args.output}")
    else:
        sys.stdout.write(body)
        print(f"# {samples} samples over {args.seconds}s", file=sys.stderr)
    return 0


def _add_profile_parser(sub: argparse._SubParsersAction) -> None:
    profile_parser = sub.add_parser(
        "profile",
        help="sampling profiler: folded stacks (flamegraph collapse format)",
    )
    profile_parser.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="service to sample via GET /profile ('' samples this process)",
    )
    profile_parser.add_argument(
        "--seconds", type=float, default=2.0, help="sampling window length"
    )
    profile_parser.add_argument(
        "--hz", type=float, default=None, help="sampling rate (default: 97 Hz)"
    )
    profile_parser.add_argument(
        "--output", "-o", default=None,
        help="write folded stacks here (pipe into flamegraph.pl)",
    )
    profile_parser.set_defaults(func=_cmd_profile)


# -- cluster subcommands ----------------------------------------------------------


def _cmd_cluster_up(args: argparse.Namespace) -> int:
    import time as _time

    cluster = api.cluster_up(
        store=args.store,
        instances=args.instances,
        host=args.host,
        workers=args.workers,
        concurrency=args.concurrency,
        timeout=args.timeout,
        retries=args.retries,
        standbys=args.standbys,
        wire_workers=args.wire_workers,
        workdir=args.workdir,
    )
    try:
        print(f"an5d cluster on {cluster.url} (store: {args.store})")
        for standby in cluster.standbys:
            print(f"  standby {standby.app.cluster.instance_id} on {standby.url}")
        for worker in cluster.workers:
            kind = "wire worker" if args.wire_workers else "worker"
            print(f"  {kind} {worker.app.cluster.instance_id} on {worker.url}")
        print(
            f"submit: an5d cluster submit --url {cluster.url} ...   "
            f"status: an5d cluster status --url {cluster.url}"
        )
        sys.stdout.flush()
        try:
            while True:
                _time.sleep(1.0)
        except KeyboardInterrupt:  # pragma: no cover — interactive only
            pass
    finally:
        cluster.stop()
    return 0


def _print_cluster_status(payload: dict) -> None:
    print(f"{'instance':<28} {'role':<12} {'live':<5} {'age_s':>7}  url")
    for instance in payload.get("instances", ()):
        print(
            f"{instance['instance_id']:<28} {instance['role']:<12} "
            f"{str(instance['live']).lower():<5} {instance['heartbeat_age_s']:>7}  "
            f"{instance['url']}"
        )
    submissions = payload.get("submissions", ())
    if not submissions:
        print("no submissions")
        return
    for submission in submissions:
        jobs = submission["jobs"]
        print(
            f"submission {submission['id']}: {submission['state']} "
            f"({jobs['done']}/{jobs['total']} done, {jobs['failed']} failed, "
            f"{jobs['pending']} pending; {submission['shards']} shard(s))"
        )
        for iid, slice_ in submission.get("instances", {}).items():
            progress = slice_["progress"]
            indices = "+".join(str(i) for i in slice_["shard_indices"])
            print(
                f"  {iid:<26} shards {indices:<8} "
                f"{progress['done']}/{progress['total']} done, "
                f"{progress['failed']} failed, {progress['pending']} pending"
            )


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterClient, ClusterError

    if args.url:
        try:
            payload = ClusterClient().cluster_status(args.url.rstrip("/"))
        except ClusterError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        from repro.campaign import ResultStore
        from repro.cluster import ClusterCoordinator, InstanceRegistry

        if not Path(args.store).exists():
            print(f"error: no campaign store at {args.store!r}", file=sys.stderr)
            return 2
        with ResultStore(args.store) as store:
            registry = InstanceRegistry(store, liveness_timeout=args.liveness_timeout)
            payload = ClusterCoordinator(store, registry).status()
    _print_cluster_status(payload)
    return 0


def _cmd_cluster_submit(args: argparse.Namespace) -> int:
    import time as _time

    from repro.cluster import ClusterClient, ClusterError

    spec = _campaign_spec(args)
    # The coordinator forwards shards inline before answering, and each
    # wedged peer may cost it several seconds — be patient, not transient.
    client = ClusterClient(timeout=60.0)
    base = args.url.rstrip("/")
    try:
        submitted = client.submit(base, spec)
    except ClusterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"submitted {submitted['id']}: {submitted['describe']}")
    jobs = submitted["jobs"]
    print(f"  state: {submitted['state']}  jobs: {jobs['total']}  shards: {submitted['shards']}")
    if not args.wait:
        return 0
    deadline = _time.monotonic() + args.poll_timeout
    status = submitted
    while _time.monotonic() < deadline:
        try:
            status = client.submission_status(base, submitted["id"])
        except ClusterError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if status["state"] in ("done", "failed"):
            break
        _time.sleep(0.2)
    jobs = status["jobs"]
    print(
        f"  final: {status['state']}  done: {jobs['done']}/{jobs['total']}  "
        f"failed: {jobs['failed']}  pending: {jobs['pending']}"
    )
    if status["state"] != "done":
        return 1
    return 0


def _add_cluster_parsers(sub: argparse._SubParsersAction) -> None:
    cluster = sub.add_parser(
        "cluster", help="many serve instances cooperating on one store"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    up_parser = cluster_sub.add_parser(
        "up", help="boot N workers + a coordinator in one process"
    )
    up_parser.add_argument("--instances", type=int, default=2)
    up_parser.add_argument("--host", default="127.0.0.1")
    up_parser.add_argument("--store", default="campaign.sqlite")
    up_parser.add_argument("--workers", type=int, default=1)
    up_parser.add_argument("--concurrency", type=int, default=2)
    up_parser.add_argument("--timeout", type=float, default=None)
    up_parser.add_argument("--retries", type=int, default=1)
    up_parser.add_argument(
        "--standbys", type=int, default=0,
        help="extra coordinator instances contending on the failover lease",
    )
    up_parser.add_argument(
        "--wire-workers", action="store_true",
        help="workers get no store access: they commit results over HTTP "
        "with a local journal (the fault-tolerant topology)",
    )
    up_parser.add_argument(
        "--workdir", default=None,
        help="directory for wire-worker journals (default: the store's)",
    )
    up_parser.set_defaults(func=_cmd_cluster_up)

    coordinator_parser = cluster_sub.add_parser(
        "coordinator", help="run a dedicated coordinator instance"
    )
    coordinator_parser.add_argument("--host", default="127.0.0.1")
    coordinator_parser.add_argument("--port", type=int, default=8000)
    coordinator_parser.add_argument("--store", default="campaign.sqlite")
    coordinator_parser.add_argument("--workers", type=int, default=1)
    coordinator_parser.add_argument("--concurrency", type=int, default=2)
    coordinator_parser.add_argument("--timeout", type=float, default=None)
    coordinator_parser.add_argument("--retries", type=int, default=1)
    _add_cluster_serve_arguments(coordinator_parser)
    coordinator_parser.add_argument("--verbose", "-v", action="store_true")
    coordinator_parser.set_defaults(func=_cmd_serve, cluster=True, role="coordinator")

    status_parser = cluster_sub.add_parser(
        "status", help="instances, liveness and submission progress"
    )
    status_parser.add_argument("--url", default=None, help="any cluster member's base URL")
    status_parser.add_argument("--store", default="campaign.sqlite")
    status_parser.add_argument("--liveness-timeout", type=float, default=10.0)
    status_parser.set_defaults(func=_cmd_cluster_status)

    submit_parser = cluster_sub.add_parser(
        "submit", help="submit a campaign to the coordinator"
    )
    submit_parser.add_argument("--url", required=True, help="the coordinator's base URL")
    _add_matrix_arguments(submit_parser)
    submit_parser.add_argument(
        "--wait", action="store_true", help="poll until the campaign settles"
    )
    submit_parser.add_argument(
        "--poll-timeout", type=float, default=600.0, help="seconds to wait with --wait"
    )
    submit_parser.set_defaults(func=_cmd_cluster_submit)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="an5d",
        description="AN5D reproduction: stencil compilation, tuning and evaluation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark stencils").set_defaults(func=_cmd_list)

    compile_parser = sub.add_parser("compile", help="generate CUDA code for a stencil")
    compile_parser.add_argument("stencil", help="benchmark name or path to a C source file")
    compile_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    compile_parser.add_argument("--output", "-o", help="write the generated code to a file")
    _add_blocking_arguments(compile_parser)
    compile_parser.set_defaults(func=_cmd_compile)

    engine_help = (
        "model evaluation engine: 'batch' sweeps the whole space as arrays, "
        "'scalar' walks one configuration at a time, 'auto' picks batch for "
        "2-D/3-D stencils"
    )

    tune_parser = sub.add_parser("tune", help="autotune a benchmark stencil")
    tune_parser.add_argument("stencil")
    tune_parser.add_argument("--gpu", default="V100")
    tune_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    tune_parser.add_argument("--time-steps", type=int, default=1000)
    tune_parser.add_argument(
        "--engine", choices=("auto", "batch", "scalar"), default="auto", help=engine_help
    )
    tune_parser.set_defaults(func=_cmd_tune)

    exhaustive_parser = sub.add_parser(
        "exhaustive", help="sweep the entire pruned search space"
    )
    exhaustive_parser.add_argument("stencil")
    exhaustive_parser.add_argument("--gpu", default="V100")
    exhaustive_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    exhaustive_parser.add_argument("--time-steps", type=int, default=1000)
    exhaustive_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (scalar engine only)"
    )
    exhaustive_parser.add_argument(
        "--engine", choices=("auto", "batch", "scalar"), default="auto", help=engine_help
    )
    exhaustive_parser.set_defaults(func=_cmd_exhaustive)

    predict_parser = sub.add_parser("predict", help="model + simulator prediction")
    predict_parser.add_argument("stencil")
    predict_parser.add_argument("--gpu", default="V100")
    predict_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    _add_blocking_arguments(predict_parser)
    predict_parser.set_defaults(func=_cmd_predict)

    verify_parser = sub.add_parser("verify", help="verify blocked execution vs reference")
    verify_parser.add_argument("stencil")
    verify_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    verify_parser.add_argument("--time-steps", type=int, default=8)
    _add_blocking_arguments(verify_parser)
    verify_parser.set_defaults(func=_cmd_verify)

    compare_parser = sub.add_parser("compare", help="compare against baseline frameworks")
    compare_parser.add_argument("stencil")
    compare_parser.add_argument("--gpu", default="V100")
    compare_parser.add_argument("--dtype", choices=("float", "double"), default="float")
    compare_parser.set_defaults(func=_cmd_compare)

    fuzz_parser = sub.add_parser(
        "fuzz", help="differential fuzzing over seeded random stencils"
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed; fixes every generated stencil"
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=20, help="number of stencils to draw from the seed"
    )
    fuzz_parser.add_argument("--gpus", type=_parse_names, default=("V100",))
    fuzz_parser.add_argument("--store", default="campaign.sqlite")
    fuzz_parser.add_argument("--workers", type=int, default=1)
    fuzz_parser.add_argument("--timeout", type=float, default=None, help="per-job seconds")
    fuzz_parser.add_argument("--retries", type=int, default=1)
    fuzz_parser.add_argument(
        "--show",
        metavar="NAME",
        default=None,
        help="print the generated C source for a fuzz-SEED-INDEX name and exit",
    )
    fuzz_parser.add_argument("--verbose", "-v", action="store_true")
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    _add_campaign_parsers(sub)
    _add_serve_parser(sub)
    _add_top_parser(sub)
    _add_profile_parser(sub)
    _add_cluster_parsers(sub)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away; exit quietly without the
        # interpreter's "Exception ignored" noise on shutdown.
        sys.stderr.close()
        return 1
    except (KeyError, ValueError, ConfigurationError, OSError) as error:
        # A request that could not be carried out (unknown benchmark/GPU,
        # invalid configuration, empty search space, unreadable store, ...)
        # exits 2 with the diagnostic on stderr instead of a traceback on
        # stdout; work that ran and failed returns 1 from its own handler.
        message = error.args[0] if error.args and isinstance(error.args[0], str) else error
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
