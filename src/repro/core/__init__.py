"""AN5D core: the paper's primary contribution.

This package implements the N.5D blocking execution model (Section 4.1), the
low-level optimizations (Section 4.2) and the kernel-plan construction that
code generation consumes (Section 4.3):

* :mod:`repro.core.config` — the ``(bT, bS, hS, ...)`` blocking configuration,
* :mod:`repro.core.execution_model` — thread-block geometry, halos, compute
  regions, streaming division and thread classification,
* :mod:`repro.core.register_alloc` — fixed vs shifting register allocation,
* :mod:`repro.core.shared_memory` — double-buffered shared-memory planning,
* :mod:`repro.core.associative` — partial-summation decomposition,
* :mod:`repro.core.plan` / :mod:`repro.core.transform` — the kernel plan.
"""

from repro.core.config import BlockingConfig, ConfigurationError
from repro.core.execution_model import (
    BlockGeometry,
    DimensionCoverage,
    ExecutionModel,
    ThreadCategory,
)
from repro.core.register_alloc import (
    FixedRegisterAllocation,
    RegisterAllocation,
    ShiftingRegisterAllocation,
)
from repro.core.shared_memory import SharedMemoryPlan
from repro.core.associative import PartialSumStep, decompose_partial_sums
from repro.core.plan import KernelPlan, MacroCall, StreamPhase
from repro.core.transform import an5d_transform

__all__ = [
    "BlockGeometry",
    "BlockingConfig",
    "ConfigurationError",
    "DimensionCoverage",
    "ExecutionModel",
    "FixedRegisterAllocation",
    "KernelPlan",
    "MacroCall",
    "PartialSumStep",
    "RegisterAllocation",
    "SharedMemoryPlan",
    "ShiftingRegisterAllocation",
    "StreamPhase",
    "ThreadCategory",
    "an5d_transform",
    "decompose_partial_sums",
]
