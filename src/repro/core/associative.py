"""Associative-stencil (partial summation) optimization (Sections 3 and 4.1).

For associative box stencils the update of a cell is a sum over
``1 + 2*rad`` source sub-planes.  Instead of keeping all of them resident,
the kernel visits sub-planes one at a time: when sub-plane ``s`` arrives it
contributes its terms to the ``1 + 2*rad`` *destination* cells whose stencils
touch it, accumulating partial sums held in registers.  Only one source
sub-plane is ever needed in shared memory, which is what collapses the
shared-memory footprint of box stencils to the star-stencil level (Table 1).

This module computes that decomposition at the expression level and verifies
it is a pure re-association of the original sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.classify import group_terms_by_subplane
from repro.ir.expr import BinOp, Const, Expr, GridRead, UnaryOp
from repro.ir.stencil import StencilPattern


@dataclass(frozen=True)
class PartialSumStep:
    """The contribution of one source sub-plane to one destination cell.

    ``source_offset`` is the streaming-dimension offset of the source
    sub-plane relative to the destination cell; ``expr`` is the sum of terms
    read from that sub-plane.  Summing ``expr`` over all steps of a
    decomposition reconstructs the original update expression.
    """

    source_offset: int
    expr: Expr
    term_count: int


def _sum(terms: List[Expr]) -> Expr:
    result = terms[0]
    for term in terms[1:]:
        result = BinOp("+", result, term)
    return result


def decompose_partial_sums(pattern: StencilPattern) -> List[PartialSumStep]:
    """Decompose an associative stencil into per-sub-plane partial sums.

    Raises ``ValueError`` for non-associative stencils (the caller is expected
    to have checked :attr:`StencilPattern.associative`).
    """
    groups = group_terms_by_subplane(pattern.expr)
    if groups is None:
        raise ValueError(f"stencil {pattern.name!r} is not associative")
    steps: List[PartialSumStep] = []
    for offset in sorted(groups):
        terms = groups[offset]
        steps.append(
            PartialSumStep(source_offset=offset, expr=_sum(terms), term_count=len(terms))
        )
    return steps


def partial_sum_count(pattern: StencilPattern) -> int:
    """Number of partial summations per cell (``1 + 2*rad`` for box stencils)."""
    return len(decompose_partial_sums(pattern))


def subplane_contributions(pattern: StencilPattern) -> Dict[int, List[Tuple[int, Expr]]]:
    """Reverse view of the decomposition, indexed by *source* sub-plane.

    For a source sub-plane at streaming position ``i``, the result lists which
    destination sub-planes (``i - offset``) receive a contribution and with
    what expression — this is the update order the generated kernel follows
    ("``1 + 2*rad`` consecutive sub-planes are simultaneously updated using
    values read from one sub-plane", Section 4.1).
    """
    steps = decompose_partial_sums(pattern)
    contributions: Dict[int, List[Tuple[int, Expr]]] = {}
    for step in steps:
        # The destination at relative position -offset reads this source plane.
        contributions.setdefault(0, []).append((-step.source_offset, step.expr))
    return contributions


def shift_expr_to_source_plane(expr: Expr) -> Expr:
    """Rewrite a partial-sum expression relative to its source sub-plane.

    Grid reads in a partial-sum step are expressed relative to the
    *destination* cell; for code generation the kernel reads them from the
    currently loaded *source* sub-plane, so the streaming-dimension component
    of every offset is dropped (it is implied by the plane being read).
    """
    if isinstance(expr, GridRead):
        return GridRead(expr.array, (0,) + expr.offset[1:], expr.time_offset)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, shift_expr_to_source_plane(expr.lhs), shift_expr_to_source_plane(expr.rhs)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, shift_expr_to_source_plane(expr.operand))
    raise TypeError(f"unexpected node in partial sum: {expr!r}")
