"""The N.5D blocking execution model (Section 4.1).

Given a stencil pattern, a grid and a blocking configuration, this module
answers the geometric questions everything else depends on:

* how many thread blocks are launched and how they cover the grid,
* which thread positions are valid / redundant / boundary / out-of-bound,
* how much redundant work the streaming-dimension division introduces,
* how many sub-planes each block streams over.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.config import BlockingConfig, ConfigurationError
from repro.ir.stencil import GridSpec, StencilPattern


class ThreadCategory(enum.Enum):
    """Per-thread classification used by the performance model (Section 5)."""

    VALID = "valid"
    REDUNDANT = "redundant"
    BOUNDARY = "boundary"
    OUT_OF_BOUND = "out_of_bound"


#: Ordering used when combining per-dimension categories: the "worst" one wins.
_CATEGORY_SEVERITY = {
    ThreadCategory.VALID: 0,
    ThreadCategory.REDUNDANT: 1,
    ThreadCategory.BOUNDARY: 2,
    ThreadCategory.OUT_OF_BOUND: 3,
}


@dataclass(frozen=True)
class DimensionCoverage:
    """How the blocks of one blocked dimension cover the grid.

    ``category_counts`` accumulates, over every block of this dimension, how
    many thread positions fall into each category.
    """

    extent: int
    block_size: int
    compute_size: int
    num_blocks: int
    category_counts: Dict[ThreadCategory, int]

    @property
    def total_positions(self) -> int:
        return self.num_blocks * self.block_size


@dataclass(frozen=True)
class BlockGeometry:
    """Spatial placement of one thread block in the blocked dimensions."""

    index: Tuple[int, ...]
    origin: Tuple[int, ...]  # first compute-region cell (global coords)
    load_origin: Tuple[int, ...]  # first loaded cell (origin - halo)
    compute_size: Tuple[int, ...]
    block_size: Tuple[int, ...]


class ExecutionModel:
    """Geometry of one AN5D kernel launch."""

    def __init__(self, pattern: StencilPattern, grid: GridSpec, config: BlockingConfig) -> None:
        config.validate(pattern)
        if grid.ndim != pattern.ndim:
            raise ConfigurationError("grid dimensionality does not match the stencil")
        self.pattern = pattern
        self.grid = grid
        self.config = config
        self.radius = pattern.radius

    # -- basic quantities ---------------------------------------------------
    @property
    def blocked_extents(self) -> Tuple[int, ...]:
        """Grid extents of the blocked (non-streaming) dimensions."""
        return self.grid.interior[1:] if self.pattern.ndim > 1 else self.grid.interior

    @property
    def streaming_extent(self) -> int:
        """Grid extent of the streaming (outermost) dimension."""
        return self.grid.interior[0]

    @property
    def nthr(self) -> int:
        return self.config.nthr

    @property
    def halo_per_side(self) -> int:
        return self.config.halo_per_side(self.radius)

    @property
    def compute_sizes(self) -> Tuple[int, ...]:
        return self.config.compute_region(self.radius)

    def blocks_per_dimension(self) -> Tuple[int, ...]:
        """Number of thread blocks needed along each blocked dimension."""
        return tuple(
            math.ceil(extent / compute)
            for extent, compute in zip(self.blocked_extents, self.compute_sizes)
        )

    @property
    def ntb(self) -> int:
        """Thread blocks per streaming pass (the paper's ``ntb``)."""
        total = 1
        for count in self.blocks_per_dimension():
            total *= count
        return total

    @property
    def num_stream_blocks(self) -> int:
        """Number of divisions of the streaming dimension (``ceil(IS_N / hS_N)``)."""
        if self.config.hS is None:
            return 1
        return math.ceil(self.streaming_extent / self.config.hS)

    @property
    def total_thread_blocks(self) -> int:
        """``n'tb``: thread blocks including streaming division."""
        return self.num_stream_blocks * self.ntb

    # -- streaming ---------------------------------------------------------
    def stream_overlap_subplanes(self) -> int:
        """Redundant sub-planes between two consecutive stream blocks.

        Section 4.2.3: ``2 * sum_{T=0}^{bT-1} rad * (bT - T)``.
        """
        bT, rad = self.config.bT, self.radius
        return 2 * sum(rad * (bT - T) for T in range(bT))

    def subplanes_per_stream_block(self) -> int:
        """Sub-planes a single stream block loads (compute span + boundary
        planes + stream-block overlap when the dimension is divided)."""
        if self.config.hS is None:
            span = self.streaming_extent
        else:
            span = min(self.config.hS, self.streaming_extent)
        extra = 2 * self.radius
        if self.num_stream_blocks > 1:
            extra += self.stream_overlap_subplanes()
        return span + extra

    def total_streamed_subplanes(self) -> int:
        """Total sub-plane visits along the streaming dimension per pass,
        summed over stream blocks (includes every redundant overlap plane of
        every combined time step)."""
        base = self.streaming_extent + 2 * self.radius
        if self.num_stream_blocks <= 1:
            return base
        return base + (self.num_stream_blocks - 1) * self.stream_overlap_subplanes()

    def streamed_subplane_loads(self) -> int:
        """Sub-planes read from global memory per pass (T = 0 only).

        Stream-block overlap at T = 0 is ``bT * rad`` planes per side of each
        internal boundary; later time steps reuse on-chip data and add no
        global loads.
        """
        base = self.streaming_extent + 2 * self.radius
        if self.num_stream_blocks <= 1:
            return base
        per_boundary = 2 * self.radius * self.config.bT
        return base + (self.num_stream_blocks - 1) * per_boundary

    def streamed_subplane_compute_steps(self) -> int:
        """Sub-plane update steps per pass, summed over the bT time steps.

        Each combined time step T (1 ≤ T ≤ bT) sweeps the stream extent plus a
        per-boundary overlap of ``2 * rad * (bT - T)`` planes when the
        streaming dimension is divided.
        """
        bT, rad = self.config.bT, self.radius
        base = bT * (self.streaming_extent + 2 * rad)
        if self.num_stream_blocks <= 1:
            return base
        per_boundary = 2 * rad * sum(bT - T for T in range(1, bT + 1))
        return base + (self.num_stream_blocks - 1) * per_boundary

    # -- per-dimension coverage -----------------------------------------------
    def _classify_position(
        self, coord: int, extent: int, compute_start: int, compute_end: int
    ) -> ThreadCategory:
        if coord < -self.radius or coord >= extent + self.radius:
            return ThreadCategory.OUT_OF_BOUND
        if coord < 0 or coord >= extent:
            return ThreadCategory.BOUNDARY
        if compute_start <= coord < compute_end:
            return ThreadCategory.VALID
        return ThreadCategory.REDUNDANT

    def dimension_coverage(self, dim: int) -> DimensionCoverage:
        """Coverage statistics of blocked dimension ``dim`` (0-based among
        the blocked dimensions)."""
        extent = self.blocked_extents[dim]
        block_size = self.config.bS[dim]
        compute = self.compute_sizes[dim]
        num_blocks = self.blocks_per_dimension()[dim]
        counts = {category: 0 for category in ThreadCategory}
        for block in range(num_blocks):
            compute_start = block * compute
            compute_end = min(compute_start + compute, extent)
            load_start = compute_start - self.halo_per_side
            for offset in range(block_size):
                coord = load_start + offset
                counts[self._classify_position(coord, extent, compute_start, compute_end)] += 1
        return DimensionCoverage(
            extent=extent,
            block_size=block_size,
            compute_size=compute,
            num_blocks=num_blocks,
            category_counts=counts,
        )

    def thread_category_counts(self) -> Dict[ThreadCategory, int]:
        """Threads per category for one sub-plane across all thread blocks.

        Per-dimension categories combine multiplicatively; the overall
        category of a thread is the most severe of its per-dimension
        categories (a thread out of bounds in any dimension is out of bounds,
        etc.).
        """
        coverages = [self.dimension_coverage(d) for d in range(len(self.blocked_extents))]
        combined: Dict[ThreadCategory, int] = {category: 0 for category in ThreadCategory}

        def recurse(dim: int, count: int, severity: int) -> None:
            if dim == len(coverages):
                category = next(
                    c for c, s in _CATEGORY_SEVERITY.items() if s == severity
                )
                combined[category] += count
                return
            for category, per_dim in coverages[dim].category_counts.items():
                if per_dim == 0:
                    continue
                recurse(dim + 1, count * per_dim, max(severity, _CATEGORY_SEVERITY[category]))

        recurse(0, 1, 0)
        return combined

    # -- block enumeration -------------------------------------------------------
    def blocks(self) -> List[BlockGeometry]:
        """Enumerate every thread block's spatial placement (one stream pass)."""
        per_dim = self.blocks_per_dimension()
        geometries: List[BlockGeometry] = []

        def recurse(dim: int, index: List[int]) -> None:
            if dim == len(per_dim):
                origin = tuple(i * c for i, c in zip(index, self.compute_sizes))
                compute = tuple(
                    min(c, extent - o)
                    for c, extent, o in zip(self.compute_sizes, self.blocked_extents, origin)
                )
                geometries.append(
                    BlockGeometry(
                        index=tuple(index),
                        origin=origin,
                        load_origin=tuple(o - self.halo_per_side for o in origin),
                        compute_size=compute,
                        block_size=self.config.bS,
                    )
                )
                return
            for i in range(per_dim[dim]):
                recurse(dim + 1, index + [i])

        recurse(0, [])
        return geometries

    def stream_ranges(self) -> List[Tuple[int, int]]:
        """Compute-region ranges ``[start, stop)`` of each stream block along
        the streaming dimension."""
        if self.config.hS is None:
            return [(0, self.streaming_extent)]
        ranges = []
        start = 0
        while start < self.streaming_extent:
            stop = min(start + self.config.hS, self.streaming_extent)
            ranges.append((start, stop))
            start = stop
        return ranges

    # -- redundancy metrics --------------------------------------------------
    def redundant_compute_fraction(self) -> float:
        """Fraction of computed cells that are redundant (halo) work."""
        counts = self.thread_category_counts()
        compute_threads = counts[ThreadCategory.VALID] + counts[ThreadCategory.REDUNDANT]
        if compute_threads == 0:
            return 0.0
        return counts[ThreadCategory.REDUNDANT] / compute_threads

    def valid_region_at_step(self, step: int) -> Tuple[int, ...]:
        """Cells with valid results after combined time step ``step`` (0 < step <= bT).

        Section 4.1: the valid region shrinks by ``2 * T * rad`` per blocked
        dimension as T increases.
        """
        if not 0 <= step <= self.config.bT:
            raise ValueError("step must lie in [0, bT]")
        return tuple(max(size - 2 * step * self.radius, 0) for size in self.config.bS)

    def summary(self) -> Dict[str, object]:
        """A dictionary summary used by the CLI and examples."""
        counts = self.thread_category_counts()
        return {
            "nthr": self.nthr,
            "ntb": self.ntb,
            "stream_blocks": self.num_stream_blocks,
            "total_thread_blocks": self.total_thread_blocks,
            "halo_per_side": self.halo_per_side,
            "compute_sizes": self.compute_sizes,
            "redundant_fraction": self.redundant_compute_fraction(),
            "threads_valid": counts[ThreadCategory.VALID],
            "threads_redundant": counts[ThreadCategory.REDUNDANT],
            "threads_boundary": counts[ThreadCategory.BOUNDARY],
            "threads_out_of_bound": counts[ThreadCategory.OUT_OF_BOUND],
        }
