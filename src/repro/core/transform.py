"""The top-level AN5D transformation: stencil pattern → kernel plan."""

from __future__ import annotations

from repro.core.config import BlockingConfig
from repro.core.plan import KernelPlan, PipelineScheduler
from repro.core.register_alloc import FixedRegisterAllocation
from repro.core.shared_memory import an5d_shared_memory_plan
from repro.ir.stencil import StencilPattern


def an5d_transform(pattern: StencilPattern, config: BlockingConfig) -> KernelPlan:
    """Apply AN5D's blocking and low-level optimizations to one stencil.

    The result is a :class:`~repro.core.plan.KernelPlan`: the macro schedule
    of the three streaming phases plus the resource plans (fixed register
    allocation, double-buffered shared memory, optimization selection) that
    the CUDA generators in :mod:`repro.codegen` turn into source text.
    """
    config.validate(pattern)
    scheduler = PipelineScheduler(pattern, config)
    smem = an5d_shared_memory_plan(pattern, config)
    return KernelPlan(
        pattern=pattern,
        config=config,
        registers=FixedRegisterAllocation(config.bT, pattern.radius),
        phases=scheduler.build(),
        use_star_opt=config.use_star_optimization(pattern),
        use_associative_opt=config.use_associative_optimization(pattern),
        smem_buffers=smem.buffers,
        smem_planes_per_buffer=smem.planes_per_buffer,
    )
