"""Kernel plans: the macro schedule the code generator emits (Section 4.3.2).

A generated AN5D kernel is a sequence of LOAD / CALC / STORE macro calls
organised in three phases:

* **head** — statically unrolled start-up of the software pipeline (control
  statements would inflate register usage, so no loop is used),
* **inner** — a loop whose body covers one full register-rotation period of
  ``2*rad + 1`` streaming iterations,
* **tail** — statically unrolled drain of the pipeline with early exits for
  stream lengths that are not a multiple of the rotation period.

The schedule follows the pipeline dependency rule: the sub-plane at streaming
position ``p`` of combined time step ``T`` becomes computable right after the
sub-plane at position ``p + T * rad`` has been loaded (T = 0 denotes the
load itself), and the final time step's result for position ``p`` is stored
right after load ``p + bT * rad``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import BlockingConfig
from repro.core.register_alloc import FixedRegisterAllocation
from repro.ir.stencil import StencilPattern


@dataclass(frozen=True)
class MacroCall:
    """One LOAD / CALC / STORE macro invocation.

    ``plane`` is the streaming index the macro touches, expressed relative to
    the phase: an absolute constant in the head/tail phases and an offset from
    the loop variable ``i`` in the inner phase (``plane_is_relative``).
    """

    kind: str  # "LOAD", "CALC" or "STORE"
    time_step: int  # 0 for LOAD, 1..bT-1 for CALC, bT for STORE
    plane: int
    args: Tuple[str, ...]
    plane_is_relative: bool = False

    def render_plane(self, loop_var: str = "__h") -> str:
        if not self.plane_is_relative:
            return str(self.plane)
        if self.plane == 0:
            return loop_var
        sign = "+" if self.plane > 0 else "-"
        return f"{loop_var} {sign} {abs(self.plane)}"

    @property
    def macro_name(self) -> str:
        if self.kind == "CALC":
            return f"CALC{self.time_step}"
        return self.kind


@dataclass(frozen=True)
class StreamPhase:
    """One phase of the streaming schedule."""

    name: str  # "head", "inner", "tail"
    calls: Tuple[MacroCall, ...]
    loop_step: Optional[int] = None  # set for the inner phase

    @property
    def is_loop(self) -> bool:
        return self.loop_step is not None


@dataclass(frozen=True)
class KernelPlan:
    """Everything code generation needs for one stencil kernel."""

    pattern: StencilPattern
    config: BlockingConfig
    registers: FixedRegisterAllocation
    phases: Tuple[StreamPhase, ...]
    use_star_opt: bool
    use_associative_opt: bool
    smem_buffers: int
    smem_planes_per_buffer: int

    @property
    def head(self) -> StreamPhase:
        return self.phases[0]

    @property
    def inner(self) -> StreamPhase:
        return next(p for p in self.phases if p.name == "inner")

    @property
    def tail(self) -> StreamPhase:
        return self.phases[-1]

    @property
    def rotation_period(self) -> int:
        return 2 * self.pattern.radius + 1

    @property
    def macro_names(self) -> List[str]:
        names = ["LOAD"]
        names.extend(f"CALC{t}" for t in range(1, self.config.bT))
        names.append("STORE")
        return names

    def all_calls(self) -> List[MacroCall]:
        calls: List[MacroCall] = []
        for phase in self.phases:
            calls.extend(phase.calls)
        return calls


class PipelineScheduler:
    """Builds the head / inner / tail macro schedule for a configuration."""

    def __init__(self, pattern: StencilPattern, config: BlockingConfig) -> None:
        self.pattern = pattern
        self.config = config
        self.radius = pattern.radius
        self.period = 2 * pattern.radius + 1
        self.bT = config.bT
        self.registers = FixedRegisterAllocation(config.bT, pattern.radius)

    # -- scheduling helpers ----------------------------------------------------
    def head_length(self) -> int:
        """Number of statically unrolled loads before the inner loop starts.

        The head must cover at least the pipeline fill (``bT * rad`` loads
        before the first store) and end on a rotation-period boundary so the
        inner loop starts with a known register phase; one extra period is
        unrolled so that the first store is also unrolled statically
        (matching Fig. 5, where bT=4 / rad=1 yields a 9-load head).
        """
        fill = self.bT * self.radius + 1
        return (math.ceil(fill / self.period) + 1) * self.period

    def calls_for_load(self, load_index: int, relative: bool = False) -> List[MacroCall]:
        """All macro calls issued right after streaming load ``load_index``."""
        calls: List[MacroCall] = []
        slot = load_index % self.period
        load_args = (f"reg_0_{slot}",)
        calls.append(
            MacroCall("LOAD", 0, load_index if not relative else 0, load_args, relative)
        )
        for step in range(1, self.bT):
            plane = load_index - step * self.radius
            if plane < 0:
                continue
            args = self._calc_args(step, load_index)
            calls.append(
                MacroCall(
                    "CALC",
                    step,
                    plane if not relative else plane - load_index,
                    args,
                    relative,
                )
            )
        store_plane = load_index - self.bT * self.radius
        if store_plane >= 0:
            args = self._store_args(load_index)
            calls.append(
                MacroCall(
                    "STORE",
                    self.bT,
                    store_plane if not relative else store_plane - load_index,
                    args,
                    relative,
                )
            )
        return calls

    def _calc_args(self, step: int, load_index: int) -> Tuple[str, ...]:
        """CALC macro arguments: destination register then source registers.

        The destination belongs to time-step group ``step``; the sources are
        the ``2*rad + 1`` registers of group ``step - 1`` in rotation order
        (oldest sub-plane first), resolved for the current streaming phase.
        """
        source_group = step - 1
        rotation = self.registers.rotation(load_index)
        sources = tuple(f"reg_{source_group}_{slot}" for slot in rotation)
        dest_slot = self.registers.destination_slot(load_index - step * self.radius)
        dest = f"reg_{step}_{dest_slot}"
        return (dest,) + sources

    def _store_args(self, load_index: int) -> Tuple[str, ...]:
        """STORE macro arguments: the final time-step group in rotation order."""
        rotation = self.registers.rotation(load_index)
        group = self.bT - 1
        return tuple(f"reg_{group}_{slot}" for slot in rotation)

    # -- phase construction -------------------------------------------------------
    def build_head(self) -> StreamPhase:
        calls: List[MacroCall] = []
        for load_index in range(self.head_length()):
            calls.extend(self.calls_for_load(load_index))
        return StreamPhase("head", tuple(calls))

    def build_inner(self) -> StreamPhase:
        """One register-rotation period of the steady state.

        Planes are expressed relative to the loop variable, which tracks the
        load index of the first load in the group (Fig. 5: loads ``i``,
        ``i+1``, ``i+2`` with stores at ``i-4``, ``i-3``, ``i-2``).
        """
        base = self.head_length()
        calls: List[MacroCall] = []
        for offset in range(self.period):
            load_index = base + offset
            for call in self.calls_for_load(load_index):
                calls.append(
                    MacroCall(
                        call.kind,
                        call.time_step,
                        call.plane - base,
                        call.args,
                        plane_is_relative=True,
                    )
                )
        return StreamPhase("inner", tuple(calls), loop_step=self.period)

    def build_tail(self) -> StreamPhase:
        """Drain of the pipeline: stores for the planes still in flight.

        After the last load (stream position ``S - 1``), planes
        ``S - bT*rad .. S - 1`` of the final time step have not been stored
        yet; the tail phase finishes their computation using the constant
        boundary planes held in the T = 0 register group (Section 4.1).
        """
        calls: List[MacroCall] = []
        for extra in range(1, self.bT * self.radius + 1):
            load_index = self.head_length() + self.period + extra
            for step in range(1, self.bT):
                plane = load_index - step * self.radius
                calls.append(
                    MacroCall("CALC", step, extra, self._calc_args(step, load_index), True)
                )
            calls.append(
                MacroCall("STORE", self.bT, extra - self.bT * self.radius,
                          self._store_args(load_index), True)
            )
        return StreamPhase("tail", tuple(calls))

    def build(self) -> Tuple[StreamPhase, ...]:
        return (self.build_head(), self.build_inner(), self.build_tail())
