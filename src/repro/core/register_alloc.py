"""Register allocation strategies (Section 4.2.1, Fig. 3 (b)).

Previous N.5D implementations (STENCILGEN and friends) *shift* cell values
through registers when a new sub-plane arrives: every register is copied into
its neighbour, which costs ``1 + 2*rad`` register moves per sub-plane update
and inflates register pressure.  AN5D instead keeps each sub-plane value in a
*fixed* register and rotates the *roles* of registers from one streaming
iteration to the next — the rotation is encoded statically in the macro
argument order (Fig. 5), so at run time only one register is written per
update.

Both strategies are implemented here: the fixed one drives AN5D code
generation, the shifting one models STENCILGEN for the baseline comparison
(register movement counts and register-pressure estimates feed Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class RegisterAssignment:
    """One named register holding one sub-plane value of one time step."""

    time_step: int
    slot: int

    @property
    def name(self) -> str:
        return f"reg_{self.time_step}_{self.slot}"


class RegisterAllocation:
    """Common interface of the two allocation strategies."""

    def __init__(self, time_block: int, radius: int) -> None:
        if time_block < 1 or radius < 1:
            raise ValueError("time_block and radius must be positive")
        self.time_block = time_block
        self.radius = radius
        #: registers (sub-plane slots) needed per time step
        self.slots_per_step = 2 * radius + 1

    # -- interface ------------------------------------------------------------
    @property
    def registers_per_thread(self) -> int:
        """Sub-plane registers held per thread (excluding scratch/index regs)."""
        return self._register_count()

    def _register_count(self) -> int:
        raise NotImplementedError

    def moves_per_update(self) -> int:
        """Register data movements per sub-plane update."""
        raise NotImplementedError

    def all_registers(self) -> List[RegisterAssignment]:
        """Every named register, ordered by (time step, slot)."""
        return [
            RegisterAssignment(step, slot)
            for step in range(self.time_block + 1)
            for slot in range(self.slots_per_step)
        ]


class FixedRegisterAllocation(RegisterAllocation):
    """AN5D's fixed allocation: one store per sub-plane update.

    Registers ``reg_T_0 .. reg_T_{2*rad}`` hold the ``1 + 2*rad`` sub-planes
    of time step ``T`` that the next time step's computation reads.  When the
    stream advances, the register whose sub-plane is no longer needed is
    overwritten with the newly produced value; which physical register that is
    rotates with the streaming index, and the rotation is resolved statically
    into macro arguments.
    """

    def _register_count(self) -> int:
        # One register group per produced time step T = 0 .. bT - 1; the final
        # time step writes directly to global memory, so it needs no group.
        return self.time_block * self.slots_per_step

    def moves_per_update(self) -> int:
        return 1

    def rotation(self, iteration: int) -> Tuple[int, ...]:
        """Mapping from logical sub-plane position to physical slot.

        ``rotation(i)[k]`` is the physical slot holding the sub-plane at
        logical depth ``k`` (0 = oldest, ``2*rad`` = newest) during streaming
        iteration ``i``.  The mapping cycles with period ``2*rad + 1``.
        """
        period = self.slots_per_step
        shift = iteration % period
        return tuple((shift + k) % period for k in range(period))

    def store_argument_sequence(self, iteration: int, time_step: int) -> Tuple[str, ...]:
        """Register names passed to the STORE/CALC macro at ``iteration``.

        Reproduces the argument rotation visible in Fig. 5, e.g.
        ``STORE(i-4, reg_3_1, reg_3_2, reg_3_0)`` for bT = 4, rad = 1.
        """
        rotation = self.rotation(iteration)
        return tuple(RegisterAssignment(time_step, slot).name for slot in rotation)

    def destination_slot(self, iteration: int) -> int:
        """Physical slot overwritten by the value produced at ``iteration``."""
        return self.rotation(iteration)[-1]


class ShiftingRegisterAllocation(RegisterAllocation):
    """STENCILGEN-style shifting allocation (the prior art baseline).

    Every sub-plane update shifts all ``2*rad`` retained values down by one
    slot and writes the new value into the top slot: ``1 + 2*rad`` register
    writes per update.  Register pressure is also higher in practice because
    the shifting chains extend live ranges (modelled in
    :mod:`repro.model.registers`).
    """

    def _register_count(self) -> int:
        return self.time_block * self.slots_per_step

    def moves_per_update(self) -> int:
        return 1 + 2 * self.radius

    def rotation(self, iteration: int) -> Tuple[int, ...]:
        """Shifting keeps logical positions pinned to physical slots."""
        return tuple(range(self.slots_per_step))

    def store_argument_sequence(self, iteration: int, time_step: int) -> Tuple[str, ...]:
        return tuple(
            RegisterAssignment(time_step, slot).name for slot in range(self.slots_per_step)
        )


def data_movement_ratio(radius: int) -> float:
    """Ratio of register stores per update, shifting vs fixed (``1 + 2*rad``)."""
    shifting = ShiftingRegisterAllocation(1, radius).moves_per_update()
    fixed = FixedRegisterAllocation(1, radius).moves_per_update()
    return shifting / fixed
