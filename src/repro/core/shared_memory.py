"""Shared-memory planning (Sections 4.1–4.2.2, Table 1).

AN5D keeps *two* shared-memory buffers regardless of the temporal blocking
degree (double buffering lets the kernel skip the second block
synchronisation without ever holding more than the current and previous
sub-plane exchange).  STENCILGEN, in contrast, keeps one buffer per combined
time step, so its footprint grows linearly with ``bT``.

Footprints per thread block (Table 1)::

                          STENCILGEN                       AN5D
  diagonal-free / assoc.  nthr * bT * nword                2 * nthr * nword
  otherwise               nthr * bT * (1+2*rad) * nword    2 * nthr * (1+2*rad) * nword

Stores per cell: 1 for diagonal-access-free and associative stencils,
``1 + 2*rad`` otherwise, identical for both frameworks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BlockingConfig
from repro.ir.stencil import StencilPattern

#: Bytes in the ``nword`` unit of Table 1 (a 32-bit word).
WORD_BYTES = 4


@dataclass(frozen=True)
class SharedMemoryPlan:
    """Shared-memory layout of one generated kernel."""

    buffers: int
    planes_per_buffer: int
    words_per_cell: int
    threads_per_block: int
    stores_per_cell: int
    double_buffered: bool

    @property
    def words_per_block(self) -> int:
        return self.buffers * self.planes_per_buffer * self.threads_per_block * self.words_per_cell

    @property
    def bytes_per_block(self) -> int:
        return self.words_per_block * WORD_BYTES

    def fits(self, shared_memory_bytes: int) -> bool:
        return self.bytes_per_block <= shared_memory_bytes

    def max_blocks_per_sm(self, shared_memory_bytes: int) -> int:
        if self.bytes_per_block == 0:
            return 0
        return shared_memory_bytes // self.bytes_per_block


def an5d_shared_memory_plan(pattern: StencilPattern, config: BlockingConfig) -> SharedMemoryPlan:
    """AN5D's plan: double (or single) buffering of one exchange plane."""
    single_plane = config.use_star_optimization(pattern) or config.use_associative_optimization(
        pattern
    )
    planes = 1 if single_plane else 1 + 2 * pattern.radius
    buffers = 2 if config.double_buffer else 1
    return SharedMemoryPlan(
        buffers=buffers,
        planes_per_buffer=planes,
        words_per_cell=pattern.nword,
        threads_per_block=config.nthr,
        stores_per_cell=1 if single_plane else 1 + 2 * pattern.radius,
        double_buffered=config.double_buffer,
    )


def stencilgen_shared_memory_plan(
    pattern: StencilPattern, config: BlockingConfig
) -> SharedMemoryPlan:
    """STENCILGEN's plan: one buffer per combined time step (Table 1).

    The same stencil classification switches as AN5D are honoured so that
    forced-general comparisons (the "otherwise" row of Table 1) stay
    apples-to-apples.
    """
    single_plane = config.use_star_optimization(pattern) or config.use_associative_optimization(
        pattern
    )
    planes = 1 if single_plane else 1 + 2 * pattern.radius
    return SharedMemoryPlan(
        buffers=config.bT,
        planes_per_buffer=planes,
        words_per_cell=pattern.nword,
        threads_per_block=config.nthr,
        stores_per_cell=1 if single_plane else 1 + 2 * pattern.radius,
        double_buffered=False,
    )


def footprint_ratio(pattern: StencilPattern, config: BlockingConfig) -> float:
    """STENCILGEN-to-AN5D shared-memory footprint ratio (``bT / 2`` with
    double buffering)."""
    ours = an5d_shared_memory_plan(pattern, config).words_per_block
    theirs = stencilgen_shared_memory_plan(pattern, config).words_per_block
    if ours == 0:
        return float("inf")
    return theirs / ours


def synchronizations_per_subplane(config: BlockingConfig) -> int:
    """Block synchronisations needed per sub-plane update per time step.

    Without double buffering the kernel synchronises twice (once to wait for
    the previous time step's result, once to avoid overwriting shared memory
    that is still being read); double buffering removes the second barrier
    (Section 4.2.2).
    """
    return 1 if config.double_buffer else 2
