"""Blocking configuration for the AN5D transformation.

A configuration fixes everything the kernel generator needs to know at
compile time: the temporal blocking degree ``bT``, the spatial block sizes
``bS_i`` of the non-streaming dimensions, the streaming block length ``hS_N``
(``None`` means the streaming dimension is not divided), and the optimization
switches of Section 4.2/4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.ir.stencil import StencilPattern

#: Hardware limits of the NVIDIA GPUs the paper targets (Section 6.3).
MAX_REGISTERS_PER_THREAD = 255
MAX_THREADS_PER_BLOCK = 1024


class ConfigurationError(ValueError):
    """Raised when a blocking configuration is invalid for a stencil."""


@dataclass(frozen=True)
class BlockingConfig:
    """A full AN5D parameter set for one stencil kernel.

    Attributes
    ----------
    bT:
        Temporal blocking degree — the number of combined time steps.
    bS:
        Spatial block sizes of the blocked (non-streaming) dimensions,
        innermost dimension last.  For 2D stencils this is a single value
        (1.5D blocking); for 3D stencils two values (2.5D blocking).
    hS:
        Length of a stream block when the streaming dimension is divided
        (Section 4.2.3); ``None`` leaves the dimension undivided.
    register_limit:
        Value passed to ``-maxrregcount`` (``None`` = no limit).
    double_buffer:
        Use two shared-memory buffers to skip the second block
        synchronisation (Section 4.2.2).
    star_opt / associative_opt:
        Force-enable/disable the diagonal-access-free and associative
        stencil optimizations; ``None`` selects them automatically from the
        stencil classification.
    vectorized_smem:
        Whether shared-memory accesses may be vectorized by NVCC; AN5D
        disables this to reduce register pressure (Section 4.3.2).
    """

    bT: int
    bS: Tuple[int, ...]
    hS: Optional[int] = None
    register_limit: Optional[int] = None
    double_buffer: bool = True
    star_opt: Optional[bool] = None
    associative_opt: Optional[bool] = None
    vectorized_smem: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "bS", tuple(int(v) for v in self.bS))
        if self.bT < 1:
            raise ConfigurationError("bT must be at least 1")
        if not self.bS:
            raise ConfigurationError("at least one blocked spatial dimension is required")
        if any(v < 1 for v in self.bS):
            raise ConfigurationError("spatial block sizes must be positive")
        if self.hS is not None and self.hS < 1:
            raise ConfigurationError("hS must be positive when given")
        if self.register_limit is not None and not (
            16 <= self.register_limit <= MAX_REGISTERS_PER_THREAD
        ):
            raise ConfigurationError(
                f"register limit must lie in [16, {MAX_REGISTERS_PER_THREAD}]"
            )

    # -- derived quantities ---------------------------------------------------
    @property
    def nthr(self) -> int:
        """Threads per block: one thread per cell of the spatial block."""
        total = 1
        for v in self.bS:
            total *= v
        return total

    def halo_per_side(self, radius: int) -> int:
        """Halo width (cells) on each side of each blocked dimension."""
        return self.bT * radius

    def compute_region(self, radius: int) -> Tuple[int, ...]:
        """Non-overlapped (stored) cells per blocked dimension."""
        return tuple(v - 2 * self.bT * radius for v in self.bS)

    def with_register_limit(self, limit: Optional[int]) -> "BlockingConfig":
        return replace(self, register_limit=limit)

    def with_bT(self, bT: int) -> "BlockingConfig":
        return replace(self, bT=bT)

    # -- validation -------------------------------------------------------------
    def validate(self, pattern: StencilPattern) -> None:
        """Check the configuration against a stencil pattern.

        Raises :class:`ConfigurationError` when the configuration cannot
        possibly produce a correct or launchable kernel.
        """
        expected_blocked = pattern.ndim - 1
        if len(self.bS) != expected_blocked:
            raise ConfigurationError(
                f"{pattern.ndim}D stencil needs {expected_blocked} blocked dimension(s), "
                f"got bS of length {len(self.bS)}"
            )
        if self.nthr > MAX_THREADS_PER_BLOCK:
            raise ConfigurationError(
                f"thread block of {self.nthr} threads exceeds the {MAX_THREADS_PER_BLOCK} limit"
            )
        radius = pattern.radius
        for size, region in zip(self.bS, self.compute_region(radius)):
            if region <= 0:
                raise ConfigurationError(
                    f"block size {size} leaves no compute region for bT={self.bT}, rad={radius}"
                )

    def is_valid(self, pattern: StencilPattern) -> bool:
        try:
            self.validate(pattern)
        except ConfigurationError:
            return False
        return True

    # -- optimization selection ----------------------------------------------
    def use_star_optimization(self, pattern: StencilPattern) -> bool:
        """Diagonal-access-free optimization: registers replace shared memory
        for the upper/lower sub-planes (Section 4.1)."""
        if self.star_opt is not None:
            return self.star_opt
        return pattern.diagonal_access_free

    def use_associative_optimization(self, pattern: StencilPattern) -> bool:
        """Associative (partial-summation) optimization for box-like stencils."""
        if self.associative_opt is not None:
            return self.associative_opt
        return pattern.associative and not pattern.diagonal_access_free

    def describe(self) -> str:
        hs = str(self.hS) if self.hS is not None else "full"
        regs = str(self.register_limit) if self.register_limit is not None else "-"
        bs = "x".join(str(v) for v in self.bS)
        return f"bT={self.bT} bS={bs} hS={hs} regs={regs}"


def sconf_configuration(pattern: StencilPattern) -> BlockingConfig:
    """The paper's ``Sconf`` configuration (Section 6.3).

    Same parameters as STENCILGEN: ``bT = 4``, ``hS_N = 128``, ``bS = 32``
    for 2D and ``128`` per blocked dimension... — concretely the paper uses
    ``bS = 32`` (2D) / ``128`` (two blocked dims for 3D is 32x32 threads with
    128-wide tiles); we follow the published numbers: 2D: bS = (128,),
    3D: bS = (32, 32), with associative optimization disabled for 2D and no
    stream division for 3D.
    """
    if pattern.ndim == 2:
        return BlockingConfig(bT=4, bS=(128,), hS=128, associative_opt=False)
    return BlockingConfig(bT=4, bS=(32, 32), hS=None)
