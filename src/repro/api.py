"""High-level public API of the AN5D reproduction.

Typical use::

    from repro import api

    compiled = api.compile_stencil(C_SOURCE, name="heat2d", bT=4, bS=(256,))
    print(compiled.cuda.kernel_source)

    result = api.tune("j2d5pt", gpu="V100")           # model-guided tuning
    print(result.as_row())

    check = api.verify("j2d5pt", bT=4, bS=(32,), grid=(96, 96), time_steps=12)
    assert check.matches
"""

from __future__ import annotations

from pathlib import Path
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines import (
    BaselineResult,
    HybridTilingBaseline,
    LoopTilingBaseline,
    StencilGenBaseline,
)
from repro.codegen import CudaSourcePackage, generate_cuda
from repro.core.config import BlockingConfig, sconf_configuration
from repro.core.execution_model import ExecutionModel
from repro.core.plan import KernelPlan
from repro.core.transform import an5d_transform
from repro.frontend.stencil_detect import DetectedStencil, parse_stencil
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.model.roofline import PerformancePrediction, predict_performance
from repro.sim.executor import BlockedStencilExecutor, VerificationResult, verify_blocking
from repro.sim.timing import SimulatedMeasurement, simulate_performance
from repro.stencils.library import BENCHMARKS, get_benchmark, load_pattern
from repro.stencils.reference import make_initial_grid, run_reference
from repro.tuning.autotuner import AutoTuner, TuningResult
from repro.tuning.exhaustive import ExhaustiveResult, exhaustive_search

PatternLike = Union[str, StencilPattern]


def _resolve_pattern(pattern: PatternLike, dtype: str = "float") -> StencilPattern:
    """Accept either a benchmark name or an already-built pattern."""
    if isinstance(pattern, StencilPattern):
        return pattern
    return load_pattern(pattern, dtype)


def _resolve_grid(
    pattern: StencilPattern,
    grid: Union[GridSpec, Sequence[int], None],
    time_steps: int,
) -> GridSpec:
    if isinstance(grid, GridSpec):
        return grid
    if grid is None:
        name = pattern.name
        if name in BENCHMARKS:
            return get_benchmark(name).default_grid(time_steps)
        interior = (512, 512) if pattern.ndim == 2 else (256, 256, 256)
        return GridSpec(interior, time_steps)
    return GridSpec(tuple(grid), time_steps)


@dataclass(frozen=True)
class CompiledStencil:
    """The result of compiling one stencil with one configuration."""

    pattern: StencilPattern
    config: BlockingConfig
    plan: KernelPlan
    cuda: CudaSourcePackage

    @property
    def kernel_source(self) -> str:
        return self.cuda.kernel_source

    @property
    def host_source(self) -> str:
        return self.cuda.host_source


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def parse(source: str, name: str = "stencil", dtype: Optional[str] = None) -> DetectedStencil:
    """Parse C stencil source and detect its pattern."""
    return parse_stencil(source, name=name, dtype=dtype)


def compile_stencil(
    source_or_pattern: Union[str, StencilPattern],
    name: str = "stencil",
    dtype: Optional[str] = None,
    bT: int = 4,
    bS: Sequence[int] = (256,),
    hS: Optional[int] = None,
    register_limit: Optional[int] = None,
    config: Optional[BlockingConfig] = None,
) -> CompiledStencil:
    """Compile a stencil (C source, benchmark name or pattern) to CUDA.

    ``config`` overrides the individual blocking parameters when given.
    """
    if isinstance(source_or_pattern, StencilPattern):
        pattern = source_or_pattern
    elif source_or_pattern in BENCHMARKS:
        pattern = load_pattern(source_or_pattern, dtype or "float")
    else:
        pattern = parse_stencil(source_or_pattern, name=name, dtype=dtype).pattern
    if config is None:
        config = BlockingConfig(bT=bT, bS=tuple(bS), hS=hS, register_limit=register_limit)
    plan = an5d_transform(pattern, config)
    return CompiledStencil(pattern=pattern, config=config, plan=plan, cuda=generate_cuda(plan))


# ---------------------------------------------------------------------------
# Performance model / simulation / tuning
# ---------------------------------------------------------------------------


def predict(
    pattern: PatternLike,
    config: BlockingConfig,
    gpu: Union[str, GpuSpec] = "V100",
    dtype: str = "float",
    grid: Union[GridSpec, Sequence[int], None] = None,
    time_steps: int = 1000,
) -> PerformancePrediction:
    """Analytic performance prediction (Section 5 model)."""
    resolved = _resolve_pattern(pattern, dtype)
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    return predict_performance(resolved, _resolve_grid(resolved, grid, time_steps), config, spec)


def simulate(
    pattern: PatternLike,
    config: BlockingConfig,
    gpu: Union[str, GpuSpec] = "V100",
    dtype: str = "float",
    grid: Union[GridSpec, Sequence[int], None] = None,
    time_steps: int = 1000,
) -> SimulatedMeasurement:
    """Simulated "measured" performance (timing simulator)."""
    resolved = _resolve_pattern(pattern, dtype)
    return simulate_performance(
        resolved, _resolve_grid(resolved, grid, time_steps), config, gpu
    )


def tune(
    pattern: PatternLike,
    gpu: Union[str, GpuSpec] = "V100",
    dtype: str = "float",
    grid: Union[GridSpec, Sequence[int], None] = None,
    time_steps: int = 1000,
    top_k: int = 5,
    engine: str = "auto",
) -> TuningResult:
    """Model-guided autotuning (Section 6.3).

    ``engine`` picks the stage-1 ranking implementation: ``"batch"`` (the
    vectorized model engine, chosen by ``"auto"`` for 2-D/3-D stencils) or
    ``"scalar"``; both rank identically.
    """
    resolved = _resolve_pattern(pattern, dtype)
    tuner = AutoTuner(gpu, top_k=top_k, engine=engine)
    return tuner.tune(resolved, _resolve_grid(resolved, grid, time_steps))


def exhaustive(
    pattern: PatternLike,
    gpu: Union[str, GpuSpec] = "V100",
    dtype: str = "float",
    grid: Union[GridSpec, Sequence[int], None] = None,
    time_steps: int = 1000,
    workers: int = 1,
    engine: str = "auto",
) -> ExhaustiveResult:
    """Exhaustive simulated sweep of the full (pruned) search space.

    ``engine="batch"`` (the ``"auto"`` choice for 2-D/3-D stencils)
    evaluates the whole space in one vectorized pass; ``engine="scalar"``
    walks it per configuration, with ``workers`` > 1 fanning that sweep out
    over a ``multiprocessing`` pool.  Every engine returns the identical
    best configuration and GFLOPS.
    """
    resolved = _resolve_pattern(pattern, dtype)
    return exhaustive_search(
        resolved,
        _resolve_grid(resolved, grid, time_steps),
        gpu,
        workers=workers,
        engine=engine,
    )


def sconf(pattern: PatternLike, dtype: str = "float") -> BlockingConfig:
    """The paper's Sconf configuration (STENCILGEN-compatible parameters)."""
    return sconf_configuration(_resolve_pattern(pattern, dtype))


# ---------------------------------------------------------------------------
# Correctness
# ---------------------------------------------------------------------------


def run(
    pattern: PatternLike,
    config: BlockingConfig,
    grid: Union[GridSpec, Sequence[int]],
    time_steps: int = 8,
    dtype: str = "float",
    initial: Optional[np.ndarray] = None,
    seed: int = 0,
) -> np.ndarray:
    """Run the blocked (N.5D) execution functionally on NumPy arrays."""
    resolved = _resolve_pattern(pattern, dtype)
    spec = _resolve_grid(resolved, grid, time_steps)
    if initial is None:
        initial = make_initial_grid(resolved, spec, seed)
    return BlockedStencilExecutor(resolved, spec, config).run(initial)


def reference(
    pattern: PatternLike,
    grid: Union[GridSpec, Sequence[int]],
    time_steps: int = 8,
    dtype: str = "float",
    initial: Optional[np.ndarray] = None,
    seed: int = 0,
) -> np.ndarray:
    """Run the naive reference executor."""
    resolved = _resolve_pattern(pattern, dtype)
    spec = _resolve_grid(resolved, grid, time_steps)
    return run_reference(resolved, spec, initial=initial, seed=seed)


def verify(
    pattern: PatternLike,
    bT: int = 4,
    bS: Sequence[int] = (32,),
    hS: Optional[int] = None,
    grid: Union[GridSpec, Sequence[int], None] = None,
    time_steps: int = 8,
    dtype: str = "float",
    seed: int = 0,
) -> VerificationResult:
    """Verify the blocked schedule against the reference executor."""
    resolved = _resolve_pattern(pattern, dtype)
    if grid is None:
        grid = (96, 96) if resolved.ndim == 2 else (32, 48, 48)
    spec = _resolve_grid(resolved, grid, time_steps)
    config = BlockingConfig(bT=bT, bS=tuple(bS), hS=hS)
    return verify_blocking(resolved, spec, config, seed=seed)


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def baseline(
    framework: str,
    pattern: PatternLike,
    gpu: Union[str, GpuSpec] = "V100",
    dtype: str = "float",
    grid: Union[GridSpec, Sequence[int], None] = None,
    time_steps: int = 1000,
) -> BaselineResult:
    """Simulate one of the comparison frameworks on a stencil."""
    resolved = _resolve_pattern(pattern, dtype)
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    grid_spec = _resolve_grid(resolved, grid, time_steps)
    key = framework.strip().lower().replace(" ", "_").replace("-", "_")
    if key in ("stencilgen", "sg"):
        return StencilGenBaseline(spec).simulate(resolved, grid_spec)
    if key in ("hybrid", "hybrid_tiling", "hexagonal"):
        return HybridTilingBaseline(spec).simulate(resolved, grid_spec)
    if key in ("loop", "loop_tiling", "ppcg"):
        return LoopTilingBaseline(spec).simulate(resolved, grid_spec)
    raise ValueError(f"unknown baseline framework {framework!r}")


# ---------------------------------------------------------------------------
# Campaigns (batch service over the benchmark x GPU matrix)
# ---------------------------------------------------------------------------


def campaign(
    benchmarks: Optional[Sequence[str]] = None,
    gpus: Sequence[str] = ("V100",),
    dtypes: Sequence[str] = ("float",),
    kinds: Sequence[str] = ("tune",),
    store: Union[str, Path, "ResultStore"] = "campaign.sqlite",
    workers: int = 1,
    time_steps: int = 1000,
    timeout: Optional[float] = None,
    retries: int = 1,
    shards: int = 1,
    shard_index: int = 0,
    shard_indices: Optional[Sequence[int]] = None,
    top_k: int = 5,
    interior_2d: Optional[Sequence[int]] = None,
    interior_3d: Optional[Sequence[int]] = None,
    progress=None,
) -> "CampaignOutcome":
    """Run (or resume) a campaign over the benchmark x GPU x dtype matrix.

    Jobs whose results are already in the ``store`` are not re-run; each new
    result is committed the moment it finishes, so an interrupted campaign
    resumes where it stopped.  ``benchmarks=None`` means all of Table 3;
    ``interior_2d``/``interior_3d`` override the paper's evaluation grids
    (``None`` keeps them).  ``shard_indices`` lets one invocation own
    several shards of the ``shards``-way partition (the cluster
    coordinator's re-assignment shape); it overrides ``shard_index``.
    """
    from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore
    from repro.campaign.scheduler import ShardPlan

    interiors = {}
    if interior_2d is not None:
        interiors["interior_2d"] = tuple(interior_2d)
    if interior_3d is not None:
        interiors["interior_3d"] = tuple(interior_3d)
    spec = CampaignSpec(
        benchmarks=tuple(benchmarks or ()),
        gpus=tuple(gpus),
        dtypes=tuple(dtypes),
        kinds=tuple(kinds),
        time_steps=time_steps,
        top_k=top_k,
        **interiors,
    )
    if shard_indices is not None:
        plan = ShardPlan(shards, tuple(shard_indices))
    else:
        plan = ShardPlan(shards, (shard_index,))
    owns_store = not isinstance(store, ResultStore)
    result_store = ResultStore(store) if owns_store else store
    try:
        scheduler = CampaignScheduler(
            spec,
            result_store,
            workers=workers,
            timeout=timeout,
            retries=retries,
            plan=plan,
        )
        return scheduler.run(progress=progress)
    finally:
        if owns_store:
            result_store.close()


def fuzz(
    seed: int = 0,
    count: int = 20,
    gpus: Sequence[str] = ("V100",),
    store: Union[str, Path, "ResultStore"] = "campaign.sqlite",
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
) -> Tuple["CampaignOutcome", List[Dict[str, object]]]:
    """Run a standing differential-fuzzing campaign over generated stencils.

    ``count`` seeded random stencils are drawn from ``seed`` (each program is
    reproducible from its ``fuzz-{seed}-{index}`` name alone) and every one
    is run through the differential oracles: frontend round trip, compiled
    kernel vs. interpreter, blocked executor vs. reference, batch model vs.
    scalar model.  Pass/divergence records are committed to the
    content-addressed ``store`` — re-running the same seed is answered
    entirely warm, and exports stay byte-identical across cold runs.

    Returns the campaign outcome plus the deterministic export records of
    every fuzz job, in seed order.
    """
    from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore

    spec = CampaignSpec(
        gpus=tuple(gpus), kinds=("fuzz",), fuzz_seed=seed, fuzz_count=count
    )
    owns_store = not isinstance(store, ResultStore)
    result_store = ResultStore(store) if owns_store else store
    try:
        scheduler = CampaignScheduler(
            spec, result_store, workers=workers, timeout=timeout, retries=retries
        )
        outcome = scheduler.run(progress=progress)
        records = []
        for job in spec.expand():
            stored = result_store.lookup(job)
            if stored is not None:
                records.append(stored.export_record())
        # Refresh the per-family/per-check coverage counters from the rows
        # now in the store (idempotent: warm re-runs rewrite the same
        # numbers, and the write never touches the exported namespace).
        fuzz_coverage(result_store)
        return outcome, records
    finally:
        if owns_store:
            result_store.close()


def fuzz_coverage(
    store: Union[str, Path, "ResultStore"],
) -> List[Dict[str, object]]:
    """Recompute and persist per-family/per-check fuzz coverage counters.

    The counters are a *derived aggregate*: recomputed wholesale from the
    store's fuzz rows (the stencil family is re-derived from each job's
    reproducible ``fuzz-{seed}-{index}`` name), then written with
    :meth:`~repro.campaign.store.ResultStore.replace_coverage` — so the
    numbers never drift from the results they summarise, and re-running a
    warm seed is a no-op.  Returns the refreshed coverage rows.
    """
    from repro.campaign import ResultStore
    from repro.stencils.generators import fuzz_stencil, parse_fuzz_name

    owns_store = not isinstance(store, ResultStore)
    result_store = ResultStore(store) if owns_store else store
    try:
        entries: Dict[Tuple[str, str], Tuple[int, int]] = {}
        for record in result_store.export_records(ok_only=False, kind="fuzz"):
            parsed = parse_fuzz_name(str(record["pattern"]))
            if parsed is None:
                continue
            family = fuzz_stencil(*parsed).family
            payload = record.get("payload") or {}
            for check in payload.get("checks", ()):
                key = (family, str(check.get("check", "?")))
                runs, passed = entries.get(key, (0, 0))
                entries[key] = (runs + 1, passed + (1 if check.get("passed") else 0))
        result_store.replace_coverage(entries)
        return result_store.coverage_rows()
    finally:
        if owns_store:
            result_store.close()


def campaign_report(
    store: Union[str, Path, "ResultStore"],
    report: str = "table5",
    **options,
) -> "ResultTable":
    """Render a report (``table5``/``leaderboard``/``accuracy``/``summary``)
    from a campaign store."""
    from repro.campaign import ResultStore
    from repro.campaign.report import REPORTS

    try:
        builder = REPORTS[report]
    except KeyError:
        raise ValueError(
            f"unknown report {report!r}; available: {', '.join(REPORTS)}"
        ) from None
    owns_store = not isinstance(store, ResultStore)
    result_store = ResultStore(store) if owns_store else store
    try:
        return builder(result_store, **options)
    finally:
        if owns_store:
            result_store.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    store: Union[str, Path, "ResultStore"] = "campaign.sqlite",
    workers: int = 1,
    concurrency: int = 2,
    timeout: Optional[float] = None,
    retries: int = 1,
    block: bool = True,
    quiet: bool = True,
    cluster: Optional["ClusterConfig"] = None,
    advertise_host: Optional[str] = None,
    coordinator_url: Optional[str] = None,
    journal: Optional[Union[str, Path]] = None,
    max_queued: Optional[int] = None,
    reserve_interactive: int = 0,
    telemetry_interval: Optional[float] = None,
    telemetry_keep: int = 1000,
) -> "CampaignServer":
    """Serve the campaign layer over HTTP (the ``an5d serve`` entry point).

    Submit :class:`~repro.campaign.jobs.CampaignSpec` JSON to
    ``POST /campaigns``, poll ``GET /campaigns/{id}``, and fetch reports and
    deterministic JSONL exports — all against one shared result store, so
    the service resumes warm after a restart.  ``POST /predict`` and
    ``POST /tune`` answer single jobs synchronously from the hot model
    cache, bypassing the campaign queue entirely.

    ``workers`` is the multiprocessing fan-out for scalar-simulator jobs;
    ``concurrency`` is how many campaigns the async worker overlaps.
    ``max_queued`` enables admission control (campaign submissions beyond
    that many queued-or-running campaigns get 429 + ``Retry-After``);
    ``reserve_interactive`` holds that many concurrency slots back from
    heavy campaigns so small interactive ones never wait behind a sweep.
    With ``block=False`` the server runs in a background thread and is
    returned (callers stop it with
    :meth:`~repro.service.CampaignServer.stop`); ``port=0`` picks an
    ephemeral port.

    Pass a :class:`~repro.cluster.registry.ClusterConfig` to make the
    instance a cluster member: it registers itself (with heartbeats) in the
    store's instance registry and accepts coordinator shard assignments; in
    the coordinator role it also accepts whole campaigns on
    ``POST /cluster/campaigns`` and supervises shard re-assignment.

    ``coordinator_url`` makes the instance **wire-native**: instead of
    opening the store it commits results to that coordinator over HTTP
    (``POST /results/commit``), spilling to the local ``journal`` file
    whenever the coordinator is unreachable and draining it on reconnect.
    Requires a worker-role ``cluster`` config; ``store`` is ignored.

    ``telemetry_interval`` (seconds) turns on telemetry history: the
    instance periodically persists its metrics snapshot into the store's
    timestamped telemetry table (pruned to the newest ``telemetry_keep``
    rows), surfaced by ``GET /telemetry/history`` and ``an5d top --history``.
    """
    from repro.service import CampaignServer, WorkerSettings

    if coordinator_url is not None:
        from repro.cluster.remote import RemoteStore

        store = RemoteStore(coordinator_url, journal=journal)
    server = CampaignServer(
        host=host,
        port=port,
        store=store,
        settings=WorkerSettings(
            workers=workers,
            concurrency=concurrency,
            timeout=timeout,
            retries=retries,
            max_queued=max_queued,
            reserve_interactive=reserve_interactive,
        ),
        quiet=quiet,
        cluster=cluster,
        advertise_host=advertise_host,
        telemetry_interval=telemetry_interval,
        telemetry_keep=telemetry_keep,
    )
    if not block:
        server.start()
        return server
    try:
        server.run()
    finally:
        server.stop()
    return server


def cluster_up(
    store: Union[str, Path, "ResultStore"] = "campaign.sqlite",
    instances: int = 2,
    host: str = "127.0.0.1",
    workers: int = 1,
    concurrency: int = 2,
    timeout: Optional[float] = None,
    retries: int = 1,
    standbys: int = 0,
    wire_workers: bool = False,
    workdir: Optional[Union[str, Path]] = None,
) -> "LocalCluster":
    """Boot N worker instances plus a coordinator on one store, in-process.

    Returns the started :class:`~repro.cluster.local.LocalCluster`; submit
    campaigns to ``cluster.url`` (``POST /cluster/campaigns``) and stop it
    with ``cluster.stop()``.  Every member is a real HTTP server on an
    ephemeral port, so the topology matches a multi-process deployment —
    minus the process isolation (this is the ``an5d cluster up`` fast path;
    CI's cluster smoke boots separate processes).

    ``standbys`` adds lease-contending coordinator instances (failover);
    ``wire_workers=True`` gives workers no store access at all — they commit
    over HTTP with journals under ``workdir`` (defaults to the store's
    directory).
    """
    from repro.cluster import LocalCluster
    from repro.service import WorkerSettings

    if wire_workers and workdir is None:
        store_path = store if not hasattr(store, "path") else store.path
        workdir = Path(str(store_path)).parent if str(store_path) != ":memory:" else Path(".")
    return LocalCluster(
        store=store,
        instances=instances,
        host=host,
        settings=WorkerSettings(
            workers=workers, concurrency=concurrency, timeout=timeout, retries=retries
        ),
        standbys=standbys,
        wire_workers=wire_workers,
        workdir=workdir,
    ).start()


def execution_summary(
    pattern: PatternLike,
    config: BlockingConfig,
    grid: Union[GridSpec, Sequence[int], None] = None,
    time_steps: int = 1000,
    dtype: str = "float",
) -> dict:
    """Geometry summary of one kernel launch (threads, blocks, halo, ...)."""
    resolved = _resolve_pattern(pattern, dtype)
    spec = _resolve_grid(resolved, grid, time_steps)
    return ExecutionModel(resolved, spec, config).summary()
