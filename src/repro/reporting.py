"""Result formatting and export.

The benchmark harness and the CLI produce tabular results (Table 5 rows,
Fig. 6 columns, bT sweeps).  This module gives them a common in-memory
representation with text, Markdown, CSV and JSON renderings plus a simple
ASCII bar chart for figure-like series, so results can be archived or diffed
against the paper without any plotting dependencies.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence


@dataclass
class ResultTable:
    """An ordered table of benchmark results."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> "ResultTable":
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values, got {len(values)}"
            )
        self.rows.append(tuple(values))
        return self

    def add_dict(self, record: Mapping[str, object]) -> "ResultTable":
        return self.add_row(*[record[h] for h in self.headers])

    @classmethod
    def from_records(
        cls,
        title: str,
        records: Iterable[Mapping[str, object]],
        headers: Sequence[str] | None = None,
    ) -> "ResultTable":
        """Build a table from mapping records with a stable column order.

        When ``headers`` is omitted, columns appear in first-seen key order
        across the records (so identical record streams always produce
        identical, diff-able tables).  Missing keys become ``None`` cells.
        """
        records = list(records)
        if headers is None:
            seen: List[str] = []
            for record in records:
                for key in record:
                    if key not in seen:
                        seen.append(key)
            headers = seen
        table = cls(title, list(headers))
        for record in records:
            table.add_row(*[record.get(h) for h in headers])
        return table

    # -- renderings -----------------------------------------------------------
    def to_text(self) -> str:
        rows = [["-" if v is None else str(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(self.headers))))
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join("-" if v is None else str(v) for v in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        # None cells render as empty fields, never the literal string "None".
        writer.writerows([["" if v is None else v for v in row] for row in self.rows])
        return buffer.getvalue()

    def to_json(self) -> str:
        return json.dumps({"title": self.title, "rows": self.to_records()}, indent=2)

    def to_jsonl(self) -> str:
        """One JSON object per row, keys in header order — diff-able exports."""
        return "\n".join(
            json.dumps(record, separators=(",", ":")) for record in self.to_records()
        )

    def to_records(self) -> List[dict]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_payload(self) -> dict:
        """JSON-safe wire encoding (title/headers/rows) of the table."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ResultTable":
        """Rebuild a table from :meth:`to_payload` output (e.g. service JSON)."""
        table = cls(str(payload["title"]), list(payload["headers"]))  # type: ignore[arg-type]
        for row in payload["rows"]:  # type: ignore[union-attr]
            table.add_row(*row)
        return table

    # -- persistence --------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Save in the format implied by the file suffix (.csv/.json/.md/.txt)."""
        path = Path(path)
        renderers = {
            ".csv": self.to_csv,
            ".json": self.to_json,
            ".jsonl": self.to_jsonl,
            ".md": self.to_markdown,
            ".txt": self.to_text,
        }
        renderer = renderers.get(path.suffix)
        if renderer is None:
            raise ValueError(f"unsupported result format {path.suffix!r}")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(renderer() + "\n")
        return path


def bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 40, unit: str = ""
) -> str:
    """Render an ASCII horizontal bar chart (the poor man's Fig. 6 panel)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(no data)"
    scale = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * (int(width * value / scale) if scale > 0 else 0)
        lines.append(f"{label.ljust(label_width)}  {value:10.1f} {unit} {bar}")
    return "\n".join(lines)


def series_table(title: str, x_name: str, series: Mapping[str, Mapping[object, float]]) -> ResultTable:
    """Build a table from one or more named series sharing an x axis."""
    x_values: List[object] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    headers = [x_name, *series.keys()]
    table = ResultTable(title, headers)
    for x in x_values:
        table.add_row(x, *[series[name].get(x, "") for name in series])
    return table
