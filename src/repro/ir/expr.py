"""Expression tree for stencil right-hand sides.

The expression language is deliberately small: constants, neighbour reads of
the stencil grid, binary arithmetic, unary negation and a handful of math
calls (``sqrt``, ``fabs``, ``exp``).  This is exactly the subset AN5D's
frontend accepts (single-statement, single-store stencil updates), and keeping
the language small is what makes FLOP accounting, associativity analysis and
code generation tractable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence, Tuple

Offset = Tuple[int, ...]

_SUPPORTED_CALLS = {"sqrt", "sqrtf", "fabs", "fabsf", "exp", "expf", "min", "max", "fmin", "fmax"}

_CALL_IMPL: Mapping[str, Callable[..., float]] = {
    "sqrt": math.sqrt,
    "sqrtf": math.sqrt,
    "fabs": abs,
    "fabsf": abs,
    "exp": math.exp,
    "expf": math.exp,
    "min": min,
    "max": max,
    "fmin": min,
    "fmax": max,
}


class Expr:
    """Base class for expression nodes.

    Nodes are immutable value objects; equality and hashing are structural so
    that expressions can be used as dictionary keys (e.g. by the common
    sub-expression numbering in the code generator).
    """

    def children(self) -> Sequence["Expr"]:
        return ()

    # -- operator sugar ----------------------------------------------------
    def __add__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("+", self, _as_expr(other))

    def __radd__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("+", _as_expr(other), self)

    def __sub__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("-", self, _as_expr(other))

    def __rsub__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("-", _as_expr(other), self)

    def __mul__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("*", self, _as_expr(other))

    def __rmul__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("*", _as_expr(other), self)

    def __truediv__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("/", self, _as_expr(other))

    def __rtruediv__(self, other: "Expr | float | int") -> "BinOp":
        return BinOp("/", _as_expr(other), self)

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)


def _as_expr(value: "Expr | float | int") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot convert {value!r} to an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A compile-time floating-point constant (a stencil coefficient)."""

    value: float

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class GridRead(Expr):
    """A read from the stencil grid at a fixed spatial offset.

    ``array`` names the grid, ``offset`` is the per-spatial-dimension offset
    from the cell being updated (ordered outermost-to-innermost, i.e. the
    streaming dimension first for 3D stencils), and ``time_offset`` is the
    offset from the *previous* time step (0 for the usual Jacobi pattern).
    """

    array: str
    offset: Offset
    time_offset: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", tuple(int(o) for o in self.offset))

    @property
    def ndim(self) -> int:
        return len(self.offset)

    def __repr__(self) -> str:
        return f"GridRead({self.array!r}, {self.offset})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation: ``+``, ``-``, ``*`` or ``/``."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in {"+", "-", "*", "/"}:
            raise ValueError(f"unsupported binary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary negation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.operand,)


@dataclass(frozen=True)
class Call(Expr):
    """A call to a supported math function."""

    name: str
    args: Tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name not in _SUPPORTED_CALLS:
            raise ValueError(f"unsupported call {self.name!r}")
        object.__setattr__(self, "args", tuple(self.args))

    def children(self) -> Sequence[Expr]:
        return self.args


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield every node of ``expr`` in pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def grid_reads(expr: Expr) -> list[GridRead]:
    """Return all :class:`GridRead` leaves in left-to-right order."""
    return [node for node in walk(expr) if isinstance(node, GridRead)]


def count_operations(expr: Expr) -> dict[str, int]:
    """Count raw arithmetic operations by operator symbol.

    The result maps ``"+"``, ``"-"``, ``"*"``, ``"/"``, ``"neg"`` and call
    names to their number of occurrences.  FMA merging is handled separately
    in :mod:`repro.ir.flops`.
    """
    counts: dict[str, int] = {}
    for node in walk(expr):
        if isinstance(node, BinOp):
            counts[node.op] = counts.get(node.op, 0) + 1
        elif isinstance(node, UnaryOp):
            counts["neg"] = counts.get("neg", 0) + 1
        elif isinstance(node, Call):
            counts[node.name] = counts.get(node.name, 0) + 1
    return counts


def substitute(expr: Expr, mapping: Mapping[GridRead, Expr]) -> Expr:
    """Return ``expr`` with grid reads replaced according to ``mapping``."""
    if isinstance(expr, GridRead):
        return mapping.get(expr, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.lhs, mapping), substitute(expr.rhs, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, Call):
        return Call(expr.name, tuple(substitute(a, mapping) for a in expr.args))
    raise TypeError(f"unknown expression node {expr!r}")


def evaluate(expr: Expr, reader: Callable[[GridRead], float]) -> float:
    """Evaluate ``expr`` numerically, resolving grid reads through ``reader``.

    Used by the NumPy reference executor and by unit tests that check the
    associative partial-summation rewrite preserves values.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, GridRead):
        return float(reader(expr))
    if isinstance(expr, BinOp):
        lhs = evaluate(expr.lhs, reader)
        rhs = evaluate(expr.rhs, reader)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        return lhs / rhs
    if isinstance(expr, UnaryOp):
        return -evaluate(expr.operand, reader)
    if isinstance(expr, Call):
        args = [evaluate(a, reader) for a in expr.args]
        return float(_CALL_IMPL[expr.name](*args))
    raise TypeError(f"unknown expression node {expr!r}")


def simplify(expr: Expr) -> Expr:
    """Fold constant sub-expressions and strip arithmetic identities.

    The frontend produces expressions with literal coefficients already in
    place, so only a light cleanup is needed: constant folding, ``x * 1``,
    ``x + 0`` and double negation removal.
    """
    if isinstance(expr, (Const, GridRead)):
        return expr
    if isinstance(expr, UnaryOp):
        inner = simplify(expr.operand)
        if isinstance(inner, Const):
            return Const(-inner.value)
        if isinstance(inner, UnaryOp):
            return inner.operand
        return UnaryOp("-", inner)
    if isinstance(expr, Call):
        args = tuple(simplify(a) for a in expr.args)
        if all(isinstance(a, Const) for a in args):
            return Const(float(_CALL_IMPL[expr.name](*[a.value for a in args])))
        return Call(expr.name, args)
    if isinstance(expr, BinOp):
        lhs = simplify(expr.lhs)
        rhs = simplify(expr.rhs)
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            return Const(evaluate(BinOp(expr.op, lhs, rhs), lambda _: 0.0))
        if expr.op == "+":
            if isinstance(lhs, Const) and lhs.value == 0.0:
                return rhs
            if isinstance(rhs, Const) and rhs.value == 0.0:
                return lhs
        if expr.op == "-" and isinstance(rhs, Const) and rhs.value == 0.0:
            return lhs
        if expr.op == "*":
            if isinstance(lhs, Const) and lhs.value == 1.0:
                return rhs
            if isinstance(rhs, Const) and rhs.value == 1.0:
                return lhs
        if expr.op == "/" and isinstance(rhs, Const) and rhs.value == 1.0:
            return lhs
        return BinOp(expr.op, lhs, rhs)
    raise TypeError(f"unknown expression node {expr!r}")
