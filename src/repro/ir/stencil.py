"""The :class:`StencilPattern` — AN5D's view of one stencil update.

A pattern captures everything the rest of the framework needs: the update
expression, the set of neighbour offsets it touches, the stencil radius and
shape classification, the data type, and the grid it applies to.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Sequence, Tuple

from repro.ir import classify
from repro.ir.expr import Expr, GridRead, Offset, grid_reads

_DTYPE_BYTES = {"float": 4, "double": 8}

#: Monotonically increasing identity tokens for pattern-keyed caches: deep
#: expression trees make structural hashing both costly and recursion-bound,
#: so caches key on this token (holding a reference to the pattern) instead.
_PATTERN_TOKENS = itertools.count()


@dataclass(frozen=True)
class GridSpec:
    """Shape of the stencil's iteration space.

    ``interior`` is the number of updated cells along each spatial dimension
    (the paper's :math:`I_{S_i}`), ordered outermost-to-innermost — i.e. the
    streaming dimension first.  The stored arrays additionally carry a
    boundary ring of ``radius`` constant cells on every side.
    """

    interior: Tuple[int, ...]
    time_steps: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "interior", tuple(int(v) for v in self.interior))
        if any(v <= 0 for v in self.interior):
            raise ValueError("grid dimensions must be positive")
        if self.time_steps < 0:
            raise ValueError("time_steps must be non-negative")

    @property
    def ndim(self) -> int:
        return len(self.interior)

    @property
    def cells(self) -> int:
        total = 1
        for v in self.interior:
            total *= v
        return total

    def padded(self, radius: int) -> Tuple[int, ...]:
        """Array shape including the constant boundary ring."""
        return tuple(v + 2 * radius for v in self.interior)


@dataclass(frozen=True)
class AccessInfo:
    """Aggregated information about one neighbour offset of the stencil."""

    offset: Offset
    count: int

    @property
    def is_center(self) -> bool:
        return all(o == 0 for o in self.offset)

    @property
    def is_axis_aligned(self) -> bool:
        return sum(1 for o in self.offset if o != 0) <= 1


@dataclass(frozen=True)
class StencilPattern:
    """A single-statement, single-array Jacobi-style stencil update.

    This is the unit AN5D transforms.  The pattern reads a set of neighbours
    of ``array`` from time step ``t`` and writes ``array`` at time step
    ``t + 1`` (double buffered through ``% 2`` in the original C source).
    """

    name: str
    ndim: int
    expr: Expr
    dtype: str = "float"
    array: str = "A"
    source: str | None = None

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise ValueError(f"unsupported stencil dimensionality {self.ndim}")
        if self.dtype not in _DTYPE_BYTES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        reads = grid_reads(self.expr)
        if not reads:
            raise ValueError("stencil expression contains no grid reads")
        for read in reads:
            if read.ndim != self.ndim:
                raise ValueError(
                    f"grid read {read} has {read.ndim} spatial dims, expected {self.ndim}"
                )
            if read.time_offset != 0:
                raise ValueError("only reads from the previous time step are supported")

    # -- identity ----------------------------------------------------------
    @cached_property
    def cache_key(self) -> int:
        """A process-unique token for keying pattern-derived caches.

        Structural hashing of deep expression trees is O(nodes) per lookup
        and recursion-bound; caches that hold a reference to the pattern can
        key on this token instead.
        """
        return next(_PATTERN_TOKENS)

    # -- geometric properties ---------------------------------------------
    @cached_property
    def reads(self) -> list[GridRead]:
        return grid_reads(self.expr)

    @cached_property
    def offsets(self) -> list[Offset]:
        """Distinct neighbour offsets, sorted lexicographically."""
        return sorted({read.offset for read in self.reads})

    @cached_property
    def accesses(self) -> list[AccessInfo]:
        counts: Dict[Offset, int] = {}
        for read in self.reads:
            counts[read.offset] = counts.get(read.offset, 0) + 1
        return [AccessInfo(offset, counts[offset]) for offset in sorted(counts)]

    @cached_property
    def radius(self) -> int:
        """The stencil radius ``rad``: the largest absolute offset component."""
        return max(abs(component) for offset in self.offsets for component in offset)

    @property
    def word_bytes(self) -> int:
        return _DTYPE_BYTES[self.dtype]

    @property
    def nword(self) -> int:
        """Number of 4-byte words per cell value (the paper's ``nword``)."""
        return _DTYPE_BYTES[self.dtype] // 4

    # -- classification -----------------------------------------------------
    @cached_property
    def shape(self) -> "classify.StencilShape":
        return classify.classify_shape(self.offsets)

    @property
    def is_star(self) -> bool:
        return self.shape is classify.StencilShape.STAR

    @property
    def is_box(self) -> bool:
        return self.shape is classify.StencilShape.BOX

    @cached_property
    def diagonal_access_free(self) -> bool:
        return classify.is_diagonal_access_free(self.offsets)

    @cached_property
    def associative(self) -> bool:
        return classify.is_associative(self.expr)

    @cached_property
    def has_division(self) -> bool:
        return classify.uses_division(self.expr)

    @cached_property
    def has_sqrt(self) -> bool:
        return classify.uses_sqrt(self.expr)

    @cached_property
    def streaming_offsets(self) -> list[int]:
        """Distinct offsets along the streaming (outermost spatial) dimension."""
        return sorted({offset[0] for offset in self.offsets})

    def offsets_on_subplane(self, streaming_offset: int) -> list[Offset]:
        """Offsets whose streaming-dimension component equals ``streaming_offset``."""
        return [o for o in self.offsets if o[0] == streaming_offset]

    def describe(self) -> str:
        """A short human-readable description used by the CLI."""
        return (
            f"{self.name}: {self.ndim}D {self.shape.name.lower()} stencil, "
            f"radius {self.radius}, {len(self.offsets)} points, dtype {self.dtype}"
        )
