"""Stencil shape and algebraic-structure classification.

AN5D keys three optimizations off these predicates:

* **diagonal-access-free** (star) stencils skip shared memory for the upper
  and lower sub-planes entirely (Section 4.1),
* **associative** stencils are decomposed into per-sub-plane partial
  summations so only one sub-plane needs to be resident at a time,
* everything else pays the full ``1 + 2*rad`` shared-memory stores per cell
  (Table 1).
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable, Sequence

from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, Offset, UnaryOp, walk


class StencilShape(enum.Enum):
    """Geometric classification of the access pattern."""

    STAR = "star"
    BOX = "box"
    GENERAL = "general"


def classify_shape(offsets: Iterable[Offset]) -> StencilShape:
    """Classify the neighbour offsets as star, box or general.

    A star stencil only accesses neighbours that differ from the centre in at
    most one dimension.  A box stencil accesses the full ``(2*rad + 1)^d``
    cube.  Anything else (e.g. a star with a few diagonal points) is general.
    """
    offsets = list(offsets)
    if not offsets:
        raise ValueError("cannot classify an empty access set")
    ndim = len(offsets[0])
    radius = max(abs(c) for offset in offsets for c in offset)
    if all(sum(1 for c in offset if c != 0) <= 1 for offset in offsets):
        return StencilShape.STAR
    full_box = set(itertools.product(range(-radius, radius + 1), repeat=ndim))
    if set(offsets) == full_box:
        return StencilShape.BOX
    return StencilShape.GENERAL


def is_diagonal_access_free(offsets: Iterable[Offset]) -> bool:
    """True when no access involves more than one non-zero offset component."""
    return classify_shape(offsets) is StencilShape.STAR


def uses_division(expr: Expr) -> bool:
    """True when the update expression contains a division.

    The paper singles these stencils out (j2d5pt, j2d9pt, j2d9pt-gol,
    j3d27pt): with ``--use_fast_math`` single-precision division becomes a
    multiplication, but NVCC generates inefficient code for double-precision
    division, which the timing simulator reproduces.
    """
    return any(isinstance(node, BinOp) and node.op == "/" for node in walk(expr))


def uses_sqrt(expr: Expr) -> bool:
    """True when the update expression contains a square root (gradient2d)."""
    return any(isinstance(node, Call) and node.name in ("sqrt", "sqrtf") for node in walk(expr))


def _is_single_read_term(expr: Expr) -> bool:
    """A term that references at most one grid read (products of a read and
    constants, possibly negated)."""
    reads = [node for node in walk(expr) if isinstance(node, GridRead)]
    if len(reads) > 1:
        return False
    # Within the term, only multiplication by constants / negation is allowed
    # for the partial-summation rewrite to be a pure re-association.
    for node in walk(expr):
        if isinstance(node, BinOp) and node.op not in ("*",):
            return False
        if isinstance(node, Call):
            return False
    return True


def sum_terms(expr: Expr) -> list[Expr] | None:
    """Flatten a top-level sum into its terms, or ``None`` if not a sum.

    Handles an optional trailing division by a constant (the Jacobi
    ``(...)/c0`` idiom): the divisor is distributed over the terms so that the
    result is still a plain sum.
    """
    # Peel a trailing division by a constant.
    divisor = 1.0
    node = expr
    while isinstance(node, BinOp) and node.op == "/" and isinstance(node.rhs, Const):
        divisor *= node.rhs.value
        node = node.lhs

    terms: list[Expr] = []

    def collect(e: Expr, sign: int) -> bool:
        if isinstance(e, BinOp) and e.op == "+":
            return collect(e.lhs, sign) and collect(e.rhs, sign)
        if isinstance(e, BinOp) and e.op == "-":
            return collect(e.lhs, sign) and collect(e.rhs, -sign)
        if isinstance(e, UnaryOp) and e.op == "-":
            return collect(e.operand, -sign)
        term = e if sign > 0 else UnaryOp("-", e)
        terms.append(term)
        return True

    if not collect(node, 1):
        return None
    if divisor != 1.0:
        terms = [BinOp("*", t, Const(1.0 / divisor)) for t in terms]
    return terms


def is_associative(expr: Expr) -> bool:
    """True when the update is a sum of single-read terms.

    Such stencils can be computed by partial summation: the contribution of
    each sub-plane is accumulated independently, so the kernel never needs
    more than one source sub-plane resident in shared memory at a time.
    """
    terms = sum_terms(expr)
    if terms is None:
        return False
    if not any(isinstance(n, GridRead) for t in terms for n in walk(t)):
        return False
    return all(_is_single_read_term(term) for term in terms)


def group_terms_by_subplane(expr: Expr) -> dict[int, list[Expr]] | None:
    """Group the terms of an associative stencil by streaming-dimension offset.

    Returns ``None`` when the stencil is not associative.  The keys are the
    streaming offsets (``-rad .. +rad``); the values are the terms whose grid
    read lives on that sub-plane.  Terms without a grid read (pure constants)
    are attached to sub-plane 0.
    """
    terms = sum_terms(expr)
    if terms is None or not all(_is_single_read_term(t) for t in terms):
        return None
    groups: dict[int, list[Expr]] = {}
    for term in terms:
        reads = [n for n in walk(term) if isinstance(n, GridRead)]
        key = reads[0].offset[0] if reads else 0
        groups.setdefault(key, []).append(term)
    return groups


def access_set_is_symmetric(offsets: Sequence[Offset]) -> bool:
    """True when the offset set is symmetric around the centre.

    All the paper's benchmarks are symmetric; the property-based tests use
    this to validate the synthetic stencil generators.
    """
    offset_set = set(offsets)
    return all(tuple(-c for c in offset) in offset_set for offset in offset_set)
