"""Floating-point operation accounting (Section 5 of the paper).

The performance model needs two things from each stencil:

* the number of floating-point operations per updated cell, after the
  transformations NVCC applies under ``--use_fast_math`` (division by a
  constant becomes a multiplication; multiply–add chains fuse into FMAs), and
* the ALU utilisation efficiency
  ``effALU = (2*FMA + MUL + ADD + OTHER) / (2*(FMA + MUL + ADD + OTHER))``,
  which discounts peak throughput when not every operation is an FMA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, UnaryOp, walk


@dataclass(frozen=True)
class FlopCount:
    """Operation mix for one cell update."""

    fma: int = 0
    mul: int = 0
    add: int = 0
    div: int = 0
    other: int = 0

    @property
    def total(self) -> int:
        """Total floating-point operations, counting an FMA as two."""
        return 2 * self.fma + self.mul + self.add + self.div + self.other

    @property
    def instruction_count(self) -> int:
        """Total issued instructions (an FMA is a single instruction)."""
        return self.fma + self.mul + self.add + self.div + self.other

    def merged(self, other: "FlopCount") -> "FlopCount":
        return FlopCount(
            fma=self.fma + other.fma,
            mul=self.mul + other.mul,
            add=self.add + other.add,
            div=self.div + other.div,
            other=self.other + other.other,
        )


def _count_raw(expr: Expr, fast_math: bool) -> tuple[int, int, int, int]:
    """Return (adds, muls, divs, others) before FMA fusion."""
    adds = muls = divs = others = 0
    for node in walk(expr):
        if isinstance(node, BinOp):
            if node.op in ("+", "-"):
                adds += 1
            elif node.op == "*":
                muls += 1
            elif node.op == "/":
                if fast_math and isinstance(node.rhs, Const):
                    # --use_fast_math turns division by a constant into a
                    # multiplication by its reciprocal.
                    muls += 1
                else:
                    divs += 1
        elif isinstance(node, UnaryOp):
            # Negation folds into the consuming instruction on NVIDIA GPUs.
            continue
        elif isinstance(node, Call):
            if node.name in ("min", "max", "fmin", "fmax", "fabs", "fabsf"):
                others += 1
            else:
                # sqrt / exp: counted as a single "other" operation, matching
                # how the paper counts gradient2d at 19 FLOP/cell.
                others += 1
    return adds, muls, divs, others


def count_flops(expr: Expr, fast_math: bool = True) -> FlopCount:
    """Count the operation mix of ``expr`` after FMA fusion.

    The fusion model follows the paper: in a sum-of-products every
    multiplication except one is paired with an addition into an FMA.  More
    precisely ``fma = min(adds, muls)`` with the leftovers kept as plain adds
    or muls.  This reproduces the paper's Table 3 FLOP/cell figures, e.g.
    star2d1r: 4 muls on neighbours + 1 on the centre + 4 adds = 4 FMA + 1 MUL
    = 9 FLOPs.
    """
    adds, muls, divs, others = _count_raw(expr, fast_math)
    fma = min(adds, muls)
    return FlopCount(fma=fma, mul=muls - fma, add=adds - fma, div=divs, other=others)


def flops_per_cell(expr: Expr, fast_math: bool = True) -> int:
    """Total FLOPs per cell update (the paper's Table 3 ``FLOP/Cell``)."""
    return count_flops(expr, fast_math).total


def alu_efficiency(count: FlopCount) -> float:
    """ALU utilisation efficiency ``effALU`` from Section 5.

    Peak device throughput assumes every issued instruction is an FMA (2
    FLOPs); a mix with plain adds/muls can reach at most this fraction of
    peak.
    """
    issued = count.fma + count.mul + count.add + count.div + count.other
    if issued == 0:
        return 1.0
    return count.total / (2.0 * issued)


def reads_per_cell(expr: Expr) -> int:
    """Number of grid reads in the expression (with multiplicity)."""
    return sum(1 for node in walk(expr) if isinstance(node, GridRead))
