"""Stencil intermediate representation.

The IR is the common currency of the framework: the C frontend lowers parsed
loop nests into a :class:`~repro.ir.stencil.StencilPattern`, the AN5D core
transforms consume it, the performance model reads its operation counts, and
the code generator walks its expression tree to emit CUDA.
"""

from repro.ir.expr import (
    BinOp,
    Call,
    Const,
    Expr,
    GridRead,
    UnaryOp,
    count_operations,
    evaluate,
    grid_reads,
    simplify,
    substitute,
)
from repro.ir.stencil import AccessInfo, GridSpec, StencilPattern
from repro.ir.classify import (
    StencilShape,
    classify_shape,
    is_associative,
    is_diagonal_access_free,
    uses_division,
    uses_sqrt,
)
from repro.ir.flops import FlopCount, alu_efficiency, count_flops

__all__ = [
    "AccessInfo",
    "BinOp",
    "Call",
    "Const",
    "Expr",
    "FlopCount",
    "GridRead",
    "GridSpec",
    "StencilPattern",
    "StencilShape",
    "UnaryOp",
    "alu_efficiency",
    "classify_shape",
    "count_flops",
    "count_operations",
    "evaluate",
    "grid_reads",
    "is_associative",
    "is_diagonal_access_free",
    "simplify",
    "substitute",
    "uses_division",
    "uses_sqrt",
]
