"""Compiled evaluation of stencil expressions.

The interpreters in :mod:`repro.stencils.reference` and
:mod:`repro.sim.executor` re-walk the expression tree for every evaluated
region, paying a Python dispatch per node and allocating a fresh temporary
array per operation.  This module lowers a :class:`StencilPattern` expression
*once* into a single Python function — generated as source text and passed
through :func:`compile` — whose body is a flat sequence of NumPy ufunc calls
with ``out=`` targets, so a whole region update runs with

* zero per-node Python dispatch (one generated function call per region),
* zero per-node temporaries (a small pool of reusable scratch buffers sized
  by a register-allocation pass over the tree),
* shifted *views* of the source array instead of copies for every grid read.

Constants are folded at compile time using dtype-typed NumPy scalars, which
keeps the compiled kernel bit-identical to the interpreter (both perform the
exact same sequence of dtype-homogeneous ufunc operations).

On hosts with a C toolchain a second, *native* backend goes further: the same
expression is lowered to a single-pass C loop nest, built with ``cc -O3
-ffp-contract=off`` (no fast-math, no FMA contraction, so every operation
rounds exactly like the matching NumPy ufunc) and loaded through ``ctypes``.
One pass over the region replaces the engine's 10-30 elementwise passes,
which is worth another ~5x on top of the fused NumPy engine.  The native
backend is an accelerator only — results are bit-identical across all three
engines, and hosts without a compiler silently use the NumPy engine.

Kernels share one call convention::

    kernel(src, region, out)

``region`` is a tuple of slices selecting the *target* cells inside ``src``;
a grid read at offset ``o`` becomes the view ``src[region shifted by o]``.
``out`` receives the result and must not alias ``src``.  Compiled kernels are
cached per ``(pattern, dtype, mode)``; an interpreter-backed kernel with the
same interface serves as fallback (or can be requested explicitly, e.g. by
the equivalence tests or via ``REPRO_INTERPRET=1``).
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, UnaryOp, walk
from repro.ir.stencil import StencilPattern

_NUMPY_DTYPES = {"float": np.float32, "double": np.float64}

_BINOP_UFUNC = {"+": "np.add", "-": "np.subtract", "*": "np.multiply", "/": "np.divide"}

_CALL_UFUNC = {
    "sqrt": "np.sqrt",
    "sqrtf": "np.sqrt",
    "fabs": "np.abs",
    "fabsf": "np.abs",
    "exp": "np.exp",
    "expf": "np.exp",
    "min": "np.minimum",
    "max": "np.maximum",
    "fmin": "np.minimum",
    "fmax": "np.maximum",
}

_UNARY_CALLS = {"np.sqrt", "np.abs", "np.exp"}

_CALL_NUMPY: Dict[str, Callable] = {
    "sqrt": np.sqrt,
    "sqrtf": np.sqrt,
    "fabs": np.abs,
    "fabsf": np.abs,
    "exp": np.exp,
    "expf": np.exp,
    "min": np.minimum,
    "max": np.maximum,
    "fmin": np.minimum,
    "fmax": np.maximum,
}

Region = Tuple[slice, ...]

#: Caps for the kernel-layer caches: a long-lived process compiling kernels
#: for many transient patterns (or region shapes) must not grow memory
#: monotonically.  Hitting a cap drops the whole cache — correctness is
#: unaffected, the next call just rebuilds.
_KERNEL_CACHE_MAX = 1024
_SCRATCH_SHAPES_MAX = 256


class CompileError(ValueError):
    """Raised when an expression cannot be lowered to a fused kernel."""


def numpy_dtype(dtype: str) -> type:
    try:
        return _NUMPY_DTYPES[dtype]
    except KeyError:
        raise CompileError(f"unsupported dtype {dtype!r}") from None


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


class _CodeGen:
    """Lowers one expression tree to flat three-address NumPy source.

    Grid reads become shifted views, arithmetic becomes ufunc calls writing
    into scratch buffers handed out by a free-list (so the buffer count is
    the tree's peak number of live array temporaries, not its node count).
    """

    def __init__(self, ndim: int, np_dtype: type) -> None:
        self.ndim = ndim
        self.np_dtype = np_dtype
        self.lines: List[str] = []
        self.consts: List[object] = []
        self.const_names: Dict[object, str] = {}
        self.num_buffers = 0
        self._free: List[int] = []

    # -- scratch buffer free-list -------------------------------------------
    def _alloc(self) -> int:
        if self._free:
            return self._free.pop()
        index = self.num_buffers
        self.num_buffers += 1
        return index

    def _release(self, buffer: Optional[int]) -> None:
        if buffer is not None:
            self._free.append(buffer)

    # -- terms ---------------------------------------------------------------
    def _const_term(self, value) -> str:
        key = repr(value)
        name = self.const_names.get(key)
        if name is None:
            name = f"c{len(self.consts)}"
            self.consts.append(value)
            self.const_names[key] = name
        return name

    def _view_term(self, offset: Tuple[int, ...]) -> str:
        if len(offset) != self.ndim:
            raise CompileError(f"grid read {offset} does not match ndim {self.ndim}")
        parts = []
        for dim, off in enumerate(offset):
            lo = f"s{dim}{off:+d}" if off else f"s{dim}"
            hi = f"e{dim}{off:+d}" if off else f"e{dim}"
            parts.append(f"{lo}:{hi}")
        return f"src[{', '.join(parts)}]"

    # -- lowering ------------------------------------------------------------
    def emit(self, expr: Expr, root_out: Optional[str] = None):
        """Lower ``expr``; returns ``(term, scalar_value, buffer_index)``.

        ``scalar_value`` is the folded NumPy scalar when the subtree is
        constant (``term`` then names the registered constant), otherwise
        ``None``.  ``buffer_index`` identifies a scratch buffer owned by the
        result, or ``None`` for views/constants.  When ``root_out`` is given
        the result is stored there instead of a scratch buffer.
        """
        if isinstance(expr, Const):
            value = self.np_dtype(expr.value)
            if root_out is not None:
                self.lines.append(f"{root_out}[...] = {self._const_term(value)}")
                return root_out, None, None
            return self._const_term(value), value, None

        if isinstance(expr, GridRead):
            term = self._view_term(expr.offset)
            if root_out is not None:
                self.lines.append(f"np.copyto({root_out}, {term})")
                return root_out, None, None
            return term, None, None

        if isinstance(expr, BinOp):
            lhs_term, lhs_val, lhs_buf = self.emit(expr.lhs)
            rhs_term, rhs_val, rhs_buf = self.emit(expr.rhs)
            if lhs_val is not None and rhs_val is not None:
                return self._fold_binop(expr.op, lhs_val, rhs_val, root_out)
            ufunc = _BINOP_UFUNC[expr.op]
            return self._emit_op(f"{ufunc}({lhs_term}, {rhs_term}", (lhs_buf, rhs_buf), root_out)

        if isinstance(expr, UnaryOp):
            term, value, buffer = self.emit(expr.operand)
            if value is not None:
                return self._fold_scalar(-value, root_out)
            return self._emit_op(f"np.negative({term}", (buffer,), root_out)

        if isinstance(expr, Call):
            ufunc = _CALL_UFUNC.get(expr.name)
            if ufunc is None:
                raise CompileError(f"unsupported call {expr.name!r}")
            expected = 1 if ufunc in _UNARY_CALLS else 2
            if len(expr.args) != expected:
                raise CompileError(
                    f"call {expr.name!r} expects {expected} argument(s), got {len(expr.args)}"
                )
            lowered = [self.emit(arg) for arg in expr.args]
            if all(value is not None for _, value, _ in lowered):
                folded = _CALL_NUMPY[expr.name](*[value for _, value, _ in lowered])
                return self._fold_scalar(self.np_dtype(folded), root_out)
            terms = ", ".join(term for term, _, _ in lowered)
            buffers = tuple(buffer for _, _, buffer in lowered)
            return self._emit_op(f"{ufunc}({terms}", buffers, root_out)

        raise CompileError(f"unknown expression node {expr!r}")

    def _fold_binop(self, op: str, lhs, rhs, root_out: Optional[str]):
        with np.errstate(all="ignore"):
            if op == "+":
                value = lhs + rhs
            elif op == "-":
                value = lhs - rhs
            elif op == "*":
                value = lhs * rhs
            else:
                value = lhs / rhs
        return self._fold_scalar(self.np_dtype(value), root_out)

    def _fold_scalar(self, value, root_out: Optional[str]):
        if root_out is not None:
            self.lines.append(f"{root_out}[...] = {self._const_term(value)}")
            return root_out, None, None
        return self._const_term(value), value, None

    def _emit_op(self, call_prefix: str, operand_buffers: Tuple[Optional[int], ...], root_out):
        if root_out is not None:
            self.lines.append(f"{call_prefix}, out={root_out})")
            for buffer in operand_buffers:
                self._release(buffer)
            return root_out, None, None
        # Reuse an operand's scratch buffer in place when one is available
        # (elementwise ufuncs permit out aliasing an input).
        target = next((b for b in operand_buffers if b is not None), None)
        if target is None:
            target = self._alloc()
        for buffer in operand_buffers:
            if buffer is not None and buffer != target:
                self._release(buffer)
        term = f"t{target}"
        self.lines.append(f"{call_prefix}, out={term})")
        return term, None, target


def generate_kernel_source(pattern: StencilPattern, np_dtype: type) -> Tuple[str, List[object], int]:
    """Generate the fused kernel's Python source for ``pattern``.

    Returns ``(source, constants, num_scratch_buffers)``.
    """
    gen = _CodeGen(pattern.ndim, np_dtype)
    gen.emit(pattern.expr, root_out="out")
    header = ["def _stencil_kernel(src, region, out, scratch):"]
    for dim in range(pattern.ndim):
        header.append(f"    s{dim} = region[{dim}].start; e{dim} = region[{dim}].stop")
    for index in range(gen.num_buffers):
        header.append(f"    t{index} = scratch[{index}]")
    body = [f"    {line}" for line in gen.lines]
    return "\n".join(header + body) + "\n", gen.consts, gen.num_buffers


# ---------------------------------------------------------------------------
# Kernel objects
# ---------------------------------------------------------------------------


class CompiledKernel:
    """A fused, scratch-reusing region evaluator for one (pattern, dtype)."""

    mode = "compiled"

    def __init__(self, pattern: StencilPattern, dtype: str) -> None:
        self.pattern = pattern
        self.dtype = dtype
        self.np_dtype = numpy_dtype(dtype)
        source, consts, num_scratch = generate_kernel_source(pattern, self.np_dtype)
        self.source = source
        self.num_scratch = num_scratch
        namespace: Dict[str, object] = {"np": np}
        namespace.update({f"c{i}": value for i, value in enumerate(consts)})
        code = compile(source, f"<stencil-kernel:{pattern.name}:{dtype}>", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own generated source
        self._fn = namespace["_stencil_kernel"]
        # Scratch buffers are keyed by region shape and reused across calls
        # (across tiles, time steps and kernel launches).
        self._scratch: Dict[Tuple[int, ...], List[np.ndarray]] = {}

    def scratch_for(self, shape: Tuple[int, ...]) -> List[np.ndarray]:
        buffers = self._scratch.get(shape)
        if buffers is None:
            buffers = [np.empty(shape, dtype=self.np_dtype) for _ in range(self.num_scratch)]
            if len(self._scratch) >= _SCRATCH_SHAPES_MAX:
                self._scratch.clear()
            self._scratch[shape] = buffers
        return buffers

    def __call__(self, src: np.ndarray, region: Region, out: np.ndarray) -> np.ndarray:
        shape = tuple(s.stop - s.start for s in region)
        self._fn(src, region, out, self.scratch_for(shape))
        return out


class InterpretedKernel:
    """Tree-walking fallback with the same call convention as CompiledKernel."""

    mode = "interpreter"
    num_scratch = 0

    def __init__(self, pattern: StencilPattern, dtype: str) -> None:
        self.pattern = pattern
        self.dtype = dtype
        self.np_dtype = numpy_dtype(dtype)
        self.source = None

    def _eval(self, expr: Expr, src: np.ndarray, region: Region) -> np.ndarray:
        if isinstance(expr, Const):
            return np.asarray(expr.value, dtype=self.np_dtype)
        if isinstance(expr, GridRead):
            slices = tuple(
                slice(s.start + off, s.stop + off) for s, off in zip(region, expr.offset)
            )
            return src[slices]
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs, src, region)
            rhs = self._eval(expr.rhs, src, region)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        if isinstance(expr, UnaryOp):
            return -self._eval(expr.operand, src, region)
        if isinstance(expr, Call):
            args = [self._eval(a, src, region) for a in expr.args]
            return _CALL_NUMPY[expr.name](*args)
        raise TypeError(f"unknown expression node {expr!r}")

    def __call__(self, src: np.ndarray, region: Region, out: np.ndarray) -> np.ndarray:
        out[...] = self._eval(self.pattern.expr, src, region)
        return out


# ---------------------------------------------------------------------------
# Native (C) backend
# ---------------------------------------------------------------------------

#: Calls whose C library implementation is bit-identical to the NumPy ufunc
#: (sqrt is correctly rounded by IEEE 754; fabs is a sign-bit operation).
#: exp/min/max are excluded — libm's exp differs from NumPy's SIMD exp in the
#: last ulp, and fmin/fmax disagree with np.minimum/np.maximum on NaNs.
_NATIVE_SAFE_CALLS = {"sqrt", "sqrtf", "fabs", "fabsf"}

_C_TYPES = {"float": "float", "double": "double"}

_NATIVE_BUILD_DIR: Optional[str] = None
_NATIVE_COMPILER: Optional[str] = ""  # "" = not probed yet, None = unavailable
_NATIVE_COUNTER = 0

#: Built C entry points shared by generated source text: structurally equal
#: patterns generate identical source, so each distinct kernel is compiled by
#: the toolchain at most once per process.
_NATIVE_FN_CACHE: Dict[Tuple[str, int], object] = {}


def _native_compiler() -> Optional[str]:
    """The C compiler to use for native kernels, or None when unavailable."""
    global _NATIVE_COMPILER
    if os.environ.get("REPRO_NO_NATIVE", "0") == "1":
        return None
    if _NATIVE_COMPILER == "":
        _NATIVE_COMPILER = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    return _NATIVE_COMPILER


def _native_build_dir() -> str:
    global _NATIVE_BUILD_DIR
    if _NATIVE_BUILD_DIR is None:
        _NATIVE_BUILD_DIR = tempfile.mkdtemp(prefix="repro_native_kernels_")
        atexit.register(shutil.rmtree, _NATIVE_BUILD_DIR, ignore_errors=True)
    return _NATIVE_BUILD_DIR


def native_supported(pattern: StencilPattern) -> bool:
    """Whether the native backend can reproduce the NumPy engine bit-exactly."""
    if pattern.dtype not in _C_TYPES:
        return False
    for node in walk(pattern.expr):
        if isinstance(node, Call) and node.name not in _NATIVE_SAFE_CALLS:
            return False
    return True


class _CExprGen:
    """Lowers the expression tree to a flat sequence of C assignments."""

    def __init__(self, np_dtype: type, ctype: str) -> None:
        self.np_dtype = np_dtype
        self.ctype = ctype
        self.suffix = "f" if ctype == "float" else ""
        self.reads: Dict[Tuple[int, ...], str] = {}
        self.lines: List[str] = []
        self._temps = 0

    def _literal(self, value) -> str:
        value = float(value)
        if value != value:
            return f"({self.ctype})NAN"
        if value in (float("inf"), float("-inf")):
            sign = "-" if value < 0 else ""
            return f"({sign}({self.ctype})INFINITY)"
        return value.hex() + self.suffix

    def _temp(self, rhs: str) -> str:
        name = f"v{self._temps}"
        self._temps += 1
        self.lines.append(f"const {self.ctype} {name} = {rhs};")
        return name

    def emit(self, expr: Expr):
        """Returns ``(term, scalar_value)``; scalar subtrees fold exactly as
        the NumPy engine does (same dtype-typed scalar arithmetic)."""
        if isinstance(expr, Const):
            value = self.np_dtype(expr.value)
            return self._literal(value), value
        if isinstance(expr, GridRead):
            name = self.reads.setdefault(expr.offset, f"r{len(self.reads)}")
            return f"{name}[k]", None
        if isinstance(expr, BinOp):
            lhs, lval = self.emit(expr.lhs)
            rhs, rval = self.emit(expr.rhs)
            if lval is not None and rval is not None:
                with np.errstate(all="ignore"):
                    if expr.op == "+":
                        folded = lval + rval
                    elif expr.op == "-":
                        folded = lval - rval
                    elif expr.op == "*":
                        folded = lval * rval
                    else:
                        folded = lval / rval
                value = self.np_dtype(folded)
                return self._literal(value), value
            return self._temp(f"{lhs} {expr.op} {rhs}"), None
        if isinstance(expr, UnaryOp):
            term, value = self.emit(expr.operand)
            if value is not None:
                value = self.np_dtype(-value)
                return self._literal(value), value
            return self._temp(f"-{term}"), None
        if isinstance(expr, Call):
            if expr.name not in _NATIVE_SAFE_CALLS or len(expr.args) != 1:
                raise CompileError(f"call {expr.name!r} not supported by the native backend")
            term, value = self.emit(expr.args[0])
            fn = "sqrt" if expr.name.startswith("sqrt") else "fabs"
            if value is not None:
                value = self.np_dtype(_CALL_NUMPY[expr.name](value))
                return self._literal(value), value
            return self._temp(f"{fn}{self.suffix}({term})"), None
        raise CompileError(f"unknown expression node {expr!r}")


def generate_native_source(pattern: StencilPattern, dtype: str) -> str:
    """Generate the single-pass C translation unit for ``pattern``.

    The loop nest iterates the region in ``src`` coordinates with the last
    dimension contiguous in both ``src`` and ``out`` (the wrapper checks
    this); per-read row pointers are hoisted so the inner loop is a plain
    stride-1 sweep the compiler can vectorize.
    """
    ctype = _C_TYPES[dtype]
    gen = _CExprGen(_NUMPY_DTYPES[dtype], ctype)
    result, value = gen.emit(pattern.expr)
    ndim = pattern.ndim
    outer = ndim - 1

    params = ["const {0}* restrict src".format(ctype), "{0}* restrict out".format(ctype)]
    params += [f"ptrdiff_t s{d}" for d in range(outer)]
    params += [f"ptrdiff_t o{d}" for d in range(outer)]
    params += [f"ptrdiff_t l{d}, ptrdiff_t h{d}" for d in range(ndim)]

    lines = ["#include <math.h>", "#include <stddef.h>", ""]
    lines.append(f"void kern({', '.join(params)})")
    lines.append("{")
    indent = "    "
    for d in range(outer):
        lines.append(f"{indent}for (ptrdiff_t i{d} = l{d}; i{d} < h{d}; ++i{d}) {{")
        indent += "    "
    for offset, name in gen.reads.items():
        terms = [f"(i{d} + ({offset[d]}))*s{d}" for d in range(outer)]
        terms.append(f"({offset[outer]})")
        lines.append(f"{indent}const {ctype}* {name} = src + {' + '.join(terms)};")
    out_terms = [f"(i{d} - l{d})*o{d}" for d in range(outer)]
    out_terms.append(f"(-l{outer})")
    lines.append(f"{indent}{ctype}* orow = out + {' + '.join(out_terms)};")
    lines.append(f"{indent}for (ptrdiff_t k = l{outer}; k < h{outer}; ++k) {{")
    body_indent = indent + "    "
    for line in gen.lines:
        lines.append(body_indent + line)
    lines.append(f"{body_indent}orow[k] = {result};")
    lines.append(f"{indent}}}")
    for d in range(outer):
        indent = indent[:-4]
        lines.append(f"{indent}}}")
    lines.append("}")
    return "\n".join(lines) + "\n"


class NativeKernel:
    """A single-pass C kernel, built at first use with the host toolchain."""

    mode = "native"
    num_scratch = 0

    def __init__(self, pattern: StencilPattern, dtype: str) -> None:
        compiler = _native_compiler()
        if compiler is None:
            raise CompileError("no C compiler available for the native backend")
        if not native_supported(pattern):
            raise CompileError(
                f"pattern {pattern.name!r} uses operations the native backend cannot "
                "reproduce bit-exactly"
            )
        self.pattern = pattern
        self.dtype = dtype
        self.np_dtype = numpy_dtype(dtype)
        self.itemsize = np.dtype(self.np_dtype).itemsize
        self.ndim = pattern.ndim
        self.source = generate_native_source(pattern, dtype)
        cache_key = (self.source, self.ndim)
        fn = _NATIVE_FN_CACHE.get(cache_key)
        if fn is None:
            fn = self._build(compiler)
            _NATIVE_FN_CACHE[cache_key] = fn
        self._fn = fn
        self._fallback: Optional[CompiledKernel] = None

    def _build(self, compiler: str):
        global _NATIVE_COUNTER
        build_dir = _native_build_dir()
        stem = os.path.join(build_dir, f"kernel_{os.getpid()}_{_NATIVE_COUNTER}")
        _NATIVE_COUNTER += 1
        c_path, so_path = stem + ".c", stem + ".so"
        with open(c_path, "w") as handle:
            handle.write(self.source)
        base_cmd = [compiler, "-O3", "-ffp-contract=off", "-fno-math-errno", "-fPIC", "-shared"]
        for extra in (["-march=native"], []):
            result = subprocess.run(
                base_cmd + extra + ["-o", so_path, c_path],
                capture_output=True,
                text=True,
            )
            if result.returncode == 0:
                break
        else:
            raise CompileError(f"native kernel build failed: {result.stderr.strip()[:500]}")
        lib = ctypes.CDLL(so_path)
        fn = lib.kern
        fn.restype = None
        fn.argtypes = [ctypes.c_void_p, ctypes.c_void_p] + [ctypes.c_ssize_t] * (
            2 * (self.ndim - 1) + 2 * self.ndim
        )
        return fn

    def __call__(self, src: np.ndarray, region: Region, out: np.ndarray) -> np.ndarray:
        itemsize = self.itemsize
        if (
            src.dtype != self.np_dtype
            or out.dtype != self.np_dtype
            or src.strides[-1] != itemsize
            or out.strides[-1] != itemsize
        ):
            # Wrong dtype or non-contiguous last dimension: delegate to the
            # NumPy engine rather than reinterpreting raw bits.
            if self._fallback is None:
                self._fallback = CompiledKernel(self.pattern, self.dtype)
            return self._fallback(src, region, out)
        args = [src.ctypes.data, out.ctypes.data]
        args += [stride // itemsize for stride in src.strides[:-1]]
        args += [stride // itemsize for stride in out.strides[:-1]]
        for s in region:
            args.append(s.start)
            args.append(s.stop)
        self._fn(*args)
        return out


#: Elements a kernel must process before "auto" mode pays the toolchain cost
#: of a native build.  Small runs (unit tests, verification grids) stay on
#: the NumPy engine; sustained workloads promote and amortize the compile.
NATIVE_PROMOTION_ELEMENTS = 4_000_000


class AutoKernel:
    """Tiered kernel: fused NumPy engine first, native C once it pays off.

    All engines are bit-identical, so promotion mid-run is invisible except
    in throughput.
    """

    def __init__(self, pattern: StencilPattern, dtype: str) -> None:
        self.pattern = pattern
        self.dtype = dtype
        try:
            self._active = CompiledKernel(pattern, dtype)
        except CompileError:
            self._active = InterpretedKernel(pattern, dtype)
        self._elements = 0
        self._can_promote = (
            isinstance(self._active, CompiledKernel)
            and _native_compiler() is not None
            and native_supported(pattern)
        )

    @property
    def mode(self) -> str:
        return f"auto:{self._active.mode}"

    @property
    def np_dtype(self) -> type:
        return self._active.np_dtype

    @property
    def source(self):
        return self._active.source

    def __call__(self, src: np.ndarray, region: Region, out: np.ndarray) -> np.ndarray:
        if self._can_promote:
            count = 1
            for s in region:
                count *= s.stop - s.start
            self._elements += count
            if self._elements >= NATIVE_PROMOTION_ELEMENTS:
                self._can_promote = False
                try:
                    self._active = NativeKernel(self.pattern, self.dtype)
                except CompileError:
                    pass
        return self._active(src, region, out)


StencilKernel = Callable[[np.ndarray, Region, np.ndarray], np.ndarray]

# Keyed by (pattern.cache_key, dtype, mode); kernels hold a strong reference
# to their pattern, so tokens can never be confused across pattern instances.
_KERNEL_CACHE: Dict[Tuple[int, str, str], StencilKernel] = {}


def _resolve_mode(mode: str) -> str:
    if mode not in ("auto", "native", "compiled", "interpreter"):
        raise ValueError(f"unknown kernel mode {mode!r}")
    if mode == "auto" and os.environ.get("REPRO_INTERPRET", "0") == "1":
        return "interpreter"
    return mode


def compile_pattern(
    pattern: StencilPattern, dtype: Optional[str] = None, mode: str = "auto"
) -> StencilKernel:
    """Build (or fetch from cache) the region kernel for ``pattern``.

    ``mode`` selects ``"native"`` (single-pass C kernel; raises
    :class:`CompileError` when no toolchain is available), ``"compiled"``
    (the fused NumPy engine; raise on failure), ``"interpreter"`` (force the
    tree-walking fallback), or ``"auto"`` (tiered: the NumPy engine promotes
    itself to a native kernel once enough work has flowed through; honours
    ``REPRO_INTERPRET=1`` and ``REPRO_NO_NATIVE=1``).  All engines produce
    bit-identical results.
    """
    dtype = dtype or pattern.dtype
    mode = _resolve_mode(mode)
    key = (pattern.cache_key, dtype, mode)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is not None:
        return kernel
    if mode == "interpreter":
        kernel = InterpretedKernel(pattern, dtype)
    elif mode == "compiled":
        kernel = CompiledKernel(pattern, dtype)
    elif mode == "native":
        kernel = NativeKernel(pattern, dtype)
    else:
        kernel = AutoKernel(pattern, dtype)
    if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
        _KERNEL_CACHE.clear()
    _KERNEL_CACHE[key] = kernel
    return kernel


def clear_kernel_cache() -> None:
    """Drop all cached kernels (and with them their scratch buffers)."""
    _KERNEL_CACHE.clear()
