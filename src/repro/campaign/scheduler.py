"""Sharded campaign scheduler.

Expands a :class:`~repro.campaign.jobs.CampaignSpec` into jobs, drops the
ones the store already answers (content-addressed dedupe), and runs the rest
— inline, or fanned out over a ``multiprocessing`` pool.  Every result is
committed to the store the moment it arrives, so killing a campaign loses at
most the in-flight jobs; the next run picks up exactly where it stopped.

Sharding splits one campaign across independent scheduler instances (e.g.
separate machines sharing nothing but the final store merge): each job has a
stable shard assignment derived from its content address, and a scheduler
given a :class:`ShardPlan` only ever touches the shard indices that plan
owns.  A plan may own *several* indices — that is how the cluster layer
re-assigns the shards of a dead instance to a surviving one — and the
classic ``shards``/``shard_index`` pair remains as a convenience spelling
for the single-index plan.

Model-only ``predict`` jobs never reach the pool: jobs sharing one
(pattern, grid, GPU) are grouped and served by the batched model engine in a
single in-process array pass (results identical to the per-job runner).
Forking a worker just to evaluate a closed-form model is slower than the
evaluation itself; the pool is reserved for simulator- and executor-backed
job kinds.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.campaign.jobs import (
    CampaignSpec,
    JobSpec,
    predict_batch_key,
    predict_job_batchable,
    run_job,
    run_predict_jobs,
)
from repro.campaign.store import ResultStore
from repro.obs import MetricsRegistry, PROFILER, emit_event, get_registry


@dataclass(frozen=True)
class ShardPlan:
    """Which slice of a campaign one scheduler instance owns.

    ``shards`` is the total partition count; ``indices`` are the shard
    indices this instance is responsible for.  A job belongs to shard
    ``job.shard(shards)``, so the union of all plans with distinct indices
    over the same ``shards`` covers the campaign exactly once.  The default
    plan (``1`` shard, index ``0``) owns everything.
    """

    shards: int = 1
    indices: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        try:
            shards = int(self.shards)
            indices = tuple(sorted({int(index) for index in self.indices}))
        except (TypeError, ValueError):
            raise ValueError("shard plan fields must be integers") from None
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if not indices:
            raise ValueError("shard plan must own at least one shard index")
        for index in indices:
            if not 0 <= index < shards:
                raise ValueError(f"shard_index {index} must lie in [0, {shards})")
        object.__setattr__(self, "shards", shards)
        object.__setattr__(self, "indices", indices)

    @property
    def is_full(self) -> bool:
        """True when this plan owns the entire campaign."""
        return self.shards == 1

    def owns(self, job: JobSpec) -> bool:
        return self.is_full or job.shard(self.shards) in self.indices

    def describe(self) -> str:
        return "+".join(str(index) for index in self.indices) + f"/{self.shards}"

    # -- wire format ---------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {"shards": self.shards, "shard_indices": list(self.indices)}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ShardPlan":
        if not isinstance(data, Mapping):
            raise ValueError("shard plan must be a JSON object")
        unknown = sorted(set(data) - {"shards", "shard_indices"})
        if unknown:
            raise ValueError(f"unknown shard plan field(s): {', '.join(unknown)}")
        indices = data.get("shard_indices", (0,))
        if isinstance(indices, (str, Mapping)):
            raise ValueError("shard plan field 'shard_indices' must be a JSON array")
        return cls(shards=data.get("shards", 1), indices=tuple(indices))  # type: ignore[arg-type]


class JobTimeout(Exception):
    """A job exceeded the scheduler's per-job time budget."""


def _alarm_supported() -> bool:
    return hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread()


def _execute_with_timeout(spec: JobSpec, timeout: Optional[float]) -> Dict[str, object]:
    """Run one job, enforcing the timeout with SIGALRM where available.

    Worker processes run jobs on their main thread, so the alarm-based
    timeout works both inline and inside the pool; on platforms without
    SIGALRM the job simply runs to completion.
    """
    if not timeout or not _alarm_supported():
        return run_job(spec)

    def _on_alarm(signum: int, frame: object) -> None:
        raise JobTimeout(f"job exceeded {timeout:.1f}s: {spec.describe()}")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_job(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: (job index, status, payload-or-error, elapsed seconds)
_WorkerResult = Tuple[int, str, Dict[str, object], float]


def _pool_worker(args: Tuple[int, JobSpec, Optional[float]]) -> _WorkerResult:
    index, spec, timeout = args
    start = time.perf_counter()
    try:
        payload = _execute_with_timeout(spec, timeout)
        return index, "ok", payload, time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 — every failure becomes a record
        payload = {
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(limit=8),
        }
        return index, "failed", payload, time.perf_counter() - start


@dataclass
class CampaignOutcome:
    """Summary of one scheduler run."""

    total: int
    cached: int
    executed: int
    failed: int
    retried: int
    duration_s: float
    shards: int = 1
    shard_index: int = 0
    shard_indices: Tuple[int, ...] = (0,)
    configs_evaluated: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.total if self.total else 1.0

    @property
    def configs_per_s(self) -> float:
        """Model/simulator configurations evaluated per second of campaign."""
        if self.duration_s <= 0:
            return 0.0
        return self.configs_evaluated / self.duration_s

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def as_row(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "cached": self.cached,
            "executed": self.executed,
            "failed": self.failed,
            "retried": self.retried,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "duration_s": round(self.duration_s, 3),
            "configs_per_s": round(self.configs_per_s, 1),
            "shard": "+".join(str(i) for i in self.shard_indices) + f"/{self.shards}",
        }


ProgressCallback = Callable[[JobSpec, str], None]


class CampaignScheduler:
    """Plan and run one campaign (or one slice of it) against a store.

    The slice is a :class:`ShardPlan` — supplied directly (the cluster
    coordinator's route, where a plan may own several shard indices after a
    re-assignment) or spelled as the classic ``shards``/``shard_index`` pair.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        shards: int = 1,
        shard_index: int = 0,
        plan: Optional[ShardPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        campaign_id: Optional[str] = None,
    ) -> None:
        if plan is None:
            plan = ShardPlan(shards, (shard_index,))
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.spec = spec
        self.store = store
        self.workers = max(1, workers)
        self.timeout = timeout
        self.retries = retries
        self.shard_plan = plan
        self.metrics = metrics if metrics is not None else get_registry()
        #: Campaign content address carried on every per-job lifecycle event,
        #: so ``GET /campaigns/{id}/stream`` can filter one campaign's jobs.
        self.campaign_id = campaign_id

    @property
    def shards(self) -> int:
        return self.shard_plan.shards

    @property
    def shard_index(self) -> int:
        """Lowest owned shard index (see ``shard_plan`` for the full set)."""
        return self.shard_plan.indices[0]

    # -- planning --------------------------------------------------------------
    def jobs(self) -> List[JobSpec]:
        """This plan's slice of the campaign, in deterministic order."""
        expanded = self.spec.expand()
        if self.shard_plan.is_full:
            return expanded
        return [job for job in expanded if self.shard_plan.owns(job)]

    def plan(self) -> Tuple[List[JobSpec], List[JobSpec]]:
        """Split this shard's jobs into (already answered, still pending).

        One bulk ``statuses`` lookup, not a ``has_ok`` per job: against a
        wire-native store every lookup is an HTTP round-trip, so planning a
        thousand-job campaign must not cost a thousand requests.
        """
        jobs = self.jobs()
        statuses = self.store.statuses([job.key() for job in jobs])
        cached: List[JobSpec] = []
        pending: List[JobSpec] = []
        for job in jobs:
            (cached if statuses.get(job.key()) == "ok" else pending).append(job)
        return cached, pending

    def job_keys(self) -> List[str]:
        """Content addresses of this shard's jobs (current code version)."""
        return [job.key() for job in self.jobs()]

    def progress_counts(self) -> Dict[str, int]:
        """Live per-campaign progress, read straight from the store.

        Because every result commits the moment it finishes, counting this
        campaign's job keys in the store is an exact progress measure even
        while another process (or the service worker) is running the jobs.
        """
        keys = self.job_keys()
        statuses = self.store.statuses(keys)
        done = sum(1 for status in statuses.values() if status == "ok")
        failed = len(statuses) - done
        return {
            "total": len(keys),
            "done": done,
            "failed": failed,
            "pending": len(keys) - len(statuses),
        }

    # -- execution -------------------------------------------------------------
    def _observe_job(self, job: JobSpec, status: str, elapsed_s: float) -> None:
        """Per-job accounting: one observe per *job*, never per config, so
        the instrumentation cost is invisible next to the job itself.

        Besides the metrics, every completion emits a ``job_finished``
        lifecycle event — the push-stream surface behind
        ``GET /events/stream`` and ``GET /campaigns/{id}/stream``.
        """
        self.metrics.counter(
            "jobs_completed_total", "Jobs finished, by kind and status",
            labels=("kind", "status"),
        ).inc(kind=job.kind, status=status)
        self.metrics.histogram(
            "job_execution_seconds", "Job execution time by kind", labels=("kind",)
        ).observe(elapsed_s, kind=job.kind)
        fields: Dict[str, object] = {
            "key": job.key(),
            "job": job.describe(),
            "kind": job.kind,
            "status": status,
            "elapsed_s": round(elapsed_s, 4),
            "shard": self.shard_plan.describe(),
        }
        if self.campaign_id is not None:
            fields["campaign"] = self.campaign_id
        emit_event("job_finished", **fields)

    @staticmethod
    def _payload_configs(kind: str, payload: Dict[str, object]) -> int:
        """Model/simulator configurations one ok payload accounts for."""
        if kind == "predict":
            return 1
        if kind == "exhaustive":
            return int(payload.get("evaluated", 0) or 0)
        if kind == "tune":
            # Stage 1 model-evaluates only the pruned survivors; the rest of
            # the space was dismissed by a boolean mask, not evaluated.
            return int(payload.get("pruned_to", 0) or 0)
        return 0

    def _run_predict_groups(
        self, jobs: List[JobSpec], progress: Optional[ProgressCallback]
    ) -> Tuple[List[JobSpec], int]:
        """Serve batchable predict jobs in-process; return (leftover, configs).

        Jobs are grouped by (pattern, grid, GPU) and each group is one call
        into the batched model engine.  A group that fails for any reason is
        handed back for the per-job path, which records individual errors.
        """
        groups: Dict[Tuple[object, ...], List[JobSpec]] = {}
        leftover: List[JobSpec] = []
        for job in jobs:
            if predict_job_batchable(job):
                groups.setdefault(predict_batch_key(job), []).append(job)
            else:
                leftover.append(job)
        evaluated = 0
        for group in groups.values():
            start = time.perf_counter()
            try:
                payloads = run_predict_jobs(group)
            except Exception:
                leftover.extend(group)
                continue
            elapsed = (time.perf_counter() - start) / len(group)
            for job, payload in zip(group, payloads):
                self.store.put(job, payload, status="ok", elapsed_s=elapsed)
                self._observe_job(job, "ok", elapsed)
                evaluated += 1
                if progress is not None:
                    progress(job, "ok")
        return leftover, evaluated

    def _run_batch(
        self, jobs: List[JobSpec], progress: Optional[ProgressCallback]
    ) -> Tuple[List[JobSpec], int]:
        """Run one batch, committing incrementally.

        Returns the failed jobs and how many model/simulator configurations
        the successful ones evaluated.
        """
        failed: List[JobSpec] = []
        if not jobs:
            return failed, 0
        jobs, evaluated = self._run_predict_groups(jobs, progress)
        if not jobs:
            return failed, evaluated
        if self.workers > 1 and len(jobs) > 1:
            results = self._map_parallel(jobs)
        else:
            results = map(_pool_worker, ((i, job, self.timeout) for i, job in enumerate(jobs)))
        for index, status, payload, elapsed in results:
            job = jobs[index]
            self.store.put(job, payload, status=status, elapsed_s=elapsed)
            self._observe_job(job, status, elapsed)
            if status != "ok":
                if "JobTimeout" in str(payload.get("error", "")):
                    self.metrics.counter(
                        "job_timeouts_total", "Jobs killed by the per-job time budget"
                    ).inc()
                failed.append(job)
            else:
                evaluated += self._payload_configs(job.kind, payload)
            if progress is not None:
                progress(job, status)
        return failed, evaluated

    def _map_parallel(self, jobs: List[JobSpec]):
        tasks = [(i, job, self.timeout) for i, job in enumerate(jobs)]
        try:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context("fork" if "fork" in methods else None)
            pool = context.Pool(processes=min(self.workers, len(jobs)))
        except Exception:
            # No usable pool (sandboxed fork) — run everything inline.
            yield from map(_pool_worker, tasks)
            return
        delivered: set = set()
        try:
            with pool:
                # imap_unordered streams results back as they finish, so the
                # parent commits each one immediately (resumability).
                for result in pool.imap_unordered(_pool_worker, tasks, chunksize=1):
                    delivered.add(result[0])
                    yield result
        except Exception:
            # The pool died mid-sweep (worker OOM-killed, unpicklable result):
            # finish only the jobs whose results never arrived, inline.
            yield from map(
                _pool_worker, (task for task in tasks if task[0] not in delivered)
            )

    def run(self, progress: Optional[ProgressCallback] = None) -> CampaignOutcome:
        """Run everything the store cannot already answer."""
        start = time.perf_counter()
        cached, pending = self.plan()
        total = len(cached) + len(pending)
        executed = len(pending)
        retried = 0

        started: Dict[str, object] = {
            "total": total,
            "cached": len(cached),
            "pending": len(pending),
            "shard": self.shard_plan.describe(),
        }
        if self.campaign_id is not None:
            started["campaign"] = self.campaign_id
        emit_event("campaign_run_started", **started)

        # The scheduler loop is a profiled hot path: a no-op unless the
        # process-wide profiler has been armed (an5d serve --profile).
        with PROFILER.window("scheduler.run"):
            failed, configs_evaluated = self._run_batch(pending, progress)
            for _ in range(self.retries):
                if not failed:
                    break
                retried += len(failed)
                self.metrics.counter(
                    "jobs_retried_total", "Failed jobs re-run by the retry loop"
                ).inc(len(failed))
                failed, retry_configs = self._run_batch(failed, progress)
                configs_evaluated += retry_configs

        return CampaignOutcome(
            total=total,
            cached=len(cached),
            executed=executed,
            failed=len(failed),
            retried=retried,
            duration_s=time.perf_counter() - start,
            shards=self.shards,
            shard_index=self.shard_index,
            shard_indices=self.shard_plan.indices,
            configs_evaluated=configs_evaluated,
            failures=[job.describe() for job in failed],
        )
