"""SQLite-backed, content-addressed result store.

Every campaign job commits its result under the job's deterministic key
(:meth:`repro.campaign.jobs.JobSpec.key`) the moment it finishes, so a
killed campaign loses at most the jobs that were mid-flight.  Exports are
produced in a fixed sort order with timestamps excluded, which makes the
final artifacts byte-identical whether a campaign ran straight through or
was interrupted and resumed.

Concurrency
-----------
File-backed stores are safe to share between threads and processes: the
database runs in WAL mode (readers never block the writer and vice versa)
with a generous busy timeout, and every thread gets its **own** SQLite
connection — one writer per connection, handed out lazily, never shared.
That is what lets the HTTP campaign service point request-handler threads,
the async worker and external CLI invocations at one store file.  Because
commits are single ``INSERT OR REPLACE`` statements keyed by content
address, concurrent writers can interleave in any order (including writing
the same key) without lost updates or torn rows.

``":memory:"`` stores keep a single shared connection (a private in-memory
database exists per connection, so per-thread connections would see nothing
of each other); a lock serialises its writers.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro
from repro.campaign.jobs import JobSpec
from repro.obs import MetricsRegistry, get_registry
from repro.obs.metrics import SIZE_BUCKETS
from repro.reporting import ResultTable

#: Bump when the stored payload layout changes incompatibly.  Version 2 adds
#: the cluster tables (instances / submissions / assignments); version 3 adds
#: the ``leases`` table (coordinator failover); version 4 adds the
#: ``telemetry`` table (periodic metrics snapshots — explicitly timestamped,
#: deliberately *outside* the content-addressed result namespace so exports
#: stay byte-identical) and the ``coverage`` table (per-family/per-check fuzz
#: coverage).  All side tables are created with ``IF NOT EXISTS``, so an
#: older store upgrades in place the first time a newer process opens it.
SCHEMA_VERSION = 4

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    pattern      TEXT NOT NULL,
    gpu          TEXT NOT NULL,
    dtype        TEXT NOT NULL,
    grid         TEXT NOT NULL,
    time_steps   INTEGER NOT NULL,
    code_version TEXT NOT NULL,
    status       TEXT NOT NULL,
    payload      TEXT NOT NULL,
    elapsed_s    REAL NOT NULL DEFAULT 0.0,
    created_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_lookup ON results (kind, pattern, gpu, dtype);
CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS instances (
    instance_id  TEXT PRIMARY KEY,
    host         TEXT NOT NULL,
    port         INTEGER NOT NULL,
    role         TEXT NOT NULL,
    capabilities TEXT NOT NULL,
    started_at   REAL NOT NULL,
    heartbeat_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS submissions (
    id         TEXT PRIMARY KEY,
    spec       TEXT NOT NULL,
    shards     INTEGER NOT NULL,
    state      TEXT NOT NULL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS assignments (
    submission_id TEXT NOT NULL,
    shard_index   INTEGER NOT NULL,
    instance_id   TEXT NOT NULL,
    updated_at    REAL NOT NULL,
    PRIMARY KEY (submission_id, shard_index)
);
CREATE TABLE IF NOT EXISTS leases (
    name        TEXT PRIMARY KEY,
    holder      TEXT NOT NULL,
    acquired_at REAL NOT NULL,
    expires_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS telemetry (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    instance_id  TEXT NOT NULL,
    code_version TEXT NOT NULL,
    created_at   REAL NOT NULL,
    snapshot     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_telemetry_instance
    ON telemetry (instance_id, created_at);
CREATE TABLE IF NOT EXISTS coverage (
    family     TEXT NOT NULL,
    check_name TEXT NOT NULL,
    runs       INTEGER NOT NULL DEFAULT 0,
    passed     INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (family, check_name)
);
"""

#: Fields every wire-committed result record must carry (the row, minus the
#: receiver-stamped ``created_at``).
RECORD_FIELDS = (
    "key",
    "kind",
    "pattern",
    "gpu",
    "dtype",
    "grid",
    "time_steps",
    "code_version",
    "status",
    "payload",
    "elapsed_s",
)

#: Stable export column order shared by every store export.
EXPORT_COLUMNS = (
    "key",
    "kind",
    "pattern",
    "gpu",
    "dtype",
    "grid",
    "time_steps",
    "status",
    "payload",
)


@dataclass(frozen=True)
class StoredResult:
    """One committed job result."""

    key: str
    kind: str
    pattern: str
    gpu: str
    dtype: str
    grid: str
    time_steps: int
    code_version: str
    status: str
    payload: Dict[str, object]
    elapsed_s: float
    created_at: float

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def export_record(self) -> Dict[str, object]:
        """Deterministic record (no timestamps) for diff-able exports."""
        return {
            "key": self.key,
            "kind": self.kind,
            "pattern": self.pattern,
            "gpu": self.gpu,
            "dtype": self.dtype,
            "grid": self.grid,
            "time_steps": self.time_steps,
            "status": self.status,
            "payload": self.payload,
        }


def make_record(
    spec: JobSpec,
    payload: Dict[str, object],
    status: str = "ok",
    elapsed_s: float = 0.0,
    code_version: Optional[str] = None,
) -> Dict[str, object]:
    """One wire-committable result record for a finished job.

    This is the *only* way a result row is derived from a job — the local
    :meth:`ResultStore.put` path and the wire-native commit path
    (:class:`repro.cluster.remote.RemoteStore`) both go through it, so a
    result committed over HTTP is field-for-field what a local commit would
    have written.  The record carries no timestamps: ``created_at`` is
    stamped by whichever store receives it.
    """
    version = code_version if code_version is not None else repro.__version__
    return {
        "key": spec.key(version),
        "kind": spec.kind,
        "pattern": spec.pattern,
        "gpu": spec.gpu,
        "dtype": spec.dtype,
        "grid": "x".join(str(v) for v in spec.interior),
        "time_steps": spec.time_steps,
        "code_version": version,
        "status": status,
        "payload": payload,
        "elapsed_s": float(elapsed_s),
    }


class ResultStore:
    """Content-addressed store of campaign results on one SQLite file.

    Pass ``":memory:"`` for an ephemeral in-process store (handy in tests).
    File stores may be shared freely: each thread lazily opens its own WAL
    connection (one writer per connection), and SQLite's busy timeout covers
    writer contention across threads *and* processes — multiple submitters,
    the service worker, and CLI runs can all point at one file.
    """

    #: How long a writer waits on a locked database before giving up.
    BUSY_TIMEOUT_S = 30.0

    def __init__(
        self,
        path: Union[str, Path] = "campaign.sqlite",
        timeout_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = str(path)
        self.timeout_s = self.BUSY_TIMEOUT_S if timeout_s is None else float(timeout_s)
        self.metrics = metrics if metrics is not None else get_registry()
        self._lock = threading.Lock()
        # Serialises writers on the shared in-memory connection; file stores
        # rely on WAL + busy timeout instead (their writers never share one
        # connection).
        self._write_lock = threading.Lock()
        # In-process write generations, split by scope so read-through caches
        # over *results* (reports, exports) survive the cluster tables' churn
        # (heartbeats land every couple of seconds and must not evict them).
        self._gen_lock = threading.Lock()
        self._generations: Dict[str, int] = {
            "results": 0,
            "cluster": 0,
            "telemetry": 0,
        }
        self._local = threading.local()
        self._all_connections: List[sqlite3.Connection] = []
        self._shared: Optional[sqlite3.Connection] = None
        self._closed = False
        if self.path == ":memory:":
            self._shared = self._open_connection()
        else:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            self._conn  # eagerly create the schema on the opening thread

    def _open_connection(self) -> sqlite3.Connection:
        # check_same_thread=False lets close() shut down connections that
        # were opened by (possibly finished) worker threads; each connection
        # is still *used* by exactly one thread.
        conn = sqlite3.connect(
            self.path, timeout=self.timeout_s, check_same_thread=False
        )
        if self.path != ":memory:":
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}")
        conn.executescript(_SCHEMA)
        # Stamp the schema version, upgrading only: an older binary opening a
        # newer store must not silently downgrade the recorded version.
        conn.execute(
            "INSERT OR IGNORE INTO meta (k, v) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        conn.execute(
            "UPDATE meta SET v = ? WHERE k = 'schema_version' "
            "AND CAST(v AS INTEGER) < ?",
            (str(SCHEMA_VERSION), SCHEMA_VERSION),
        )
        conn.commit()
        with self._lock:
            if self._closed:
                conn.close()
                raise sqlite3.ProgrammingError("store is closed")
            self._all_connections.append(conn)
        return conn

    @property
    def _conn(self) -> sqlite3.Connection:
        """This thread's connection (the shared one for ``":memory:"``)."""
        if self._shared is not None:
            return self._shared
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._open_connection()
            self._local.conn = conn
        return conn

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            connections, self._all_connections = self._all_connections, []
        for conn in connections:
            conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- write generations -------------------------------------------------------
    def _bump_generation(self, scope: str) -> None:
        with self._gen_lock:
            self._generations[scope] += 1

    def generation(self, scope: str = "results") -> int:
        """Monotonic in-process write counter for one table scope.

        ``"results"`` moves on every result-table write (put/commit/delete/
        purge); ``"cluster"`` moves on instance/submission/assignment/lease
        writes; ``"telemetry"`` moves on telemetry-snapshot and coverage
        writes (its own scope, so periodic snapshots never evict the
        materialised report/export caches).  Read-through caches key on the relevant generation, so a
        ``commit_records`` upsert invalidates every materialised report and
        export immediately while heartbeat churn leaves them warm.  The
        counter is per process: an external writer on the same store file is
        not observed (callers that need cross-process freshness bypass the
        caches with ``cache=off``).
        """
        with self._gen_lock:
            return self._generations[scope]

    # -- writes ----------------------------------------------------------------
    def _commit(self, sql: str, args: Sequence[object]) -> sqlite3.Cursor:
        """Execute one write statement and commit it immediately (timed)."""
        start = time.perf_counter()
        try:
            if self._shared is not None:
                with self._write_lock:
                    cursor = self._conn.execute(sql, args)
                    self._conn.commit()
                    return cursor
            cursor = self._conn.execute(sql, args)
            self._conn.commit()
            return cursor
        finally:
            self.metrics.histogram(
                "store_commit_seconds", "SQLite write-and-commit latency per call"
            ).observe(time.perf_counter() - start)

    def put(
        self,
        spec: JobSpec,
        payload: Dict[str, object],
        status: str = "ok",
        elapsed_s: float = 0.0,
        code_version: Optional[str] = None,
        now: Optional[float] = None,
    ) -> str:
        """Commit one result immediately (incremental commit = resumability).

        ``now`` overrides the ``created_at`` stamp (injectable so chaos tests
        and deterministic replays never read the wall clock).
        """
        record = make_record(spec, payload, status, elapsed_s, code_version)
        timestamp = time.time() if now is None else float(now)
        self._commit(
            "INSERT OR REPLACE INTO results "
            "(key, kind, pattern, gpu, dtype, grid, time_steps, code_version, "
            " status, payload, elapsed_s, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record["key"],
                record["kind"],
                record["pattern"],
                record["gpu"],
                record["dtype"],
                record["grid"],
                record["time_steps"],
                record["code_version"],
                record["status"],
                json.dumps(record["payload"], sort_keys=True, separators=(",", ":")),
                record["elapsed_s"],
                timestamp,
            ),
        )
        self._bump_generation("results")
        return str(record["key"])

    def commit_records(
        self, records: Sequence[Dict[str, object]], now: Optional[float] = None
    ) -> int:
        """Commit wire-native result records; idempotent by construction.

        This is the receiving half of ``POST /results/commit``: keys are
        content addresses, so replaying a batch (worker retries, duplicated
        requests, two workers racing on a re-assigned shard) can never create
        a second row or change an existing ``ok`` row — an existing row is
        only overwritten while it is *not* ``ok`` (a failed attempt upgraded
        by a successful retry).  Returns how many rows were actually written.
        """
        timestamp = time.time() if now is None else float(now)
        committed = 0
        for record in records:
            missing = [field for field in RECORD_FIELDS if field not in record]
            if missing:
                raise ValueError(
                    f"result record is missing field(s): {', '.join(missing)}"
                )
            cursor = self._commit(
                "INSERT INTO results "
                "(key, kind, pattern, gpu, dtype, grid, time_steps, code_version, "
                " status, payload, elapsed_s, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET "
                "status = excluded.status, payload = excluded.payload, "
                "elapsed_s = excluded.elapsed_s, code_version = excluded.code_version, "
                "created_at = excluded.created_at "
                "WHERE results.status != 'ok'",
                (
                    str(record["key"]),
                    str(record["kind"]),
                    str(record["pattern"]),
                    str(record["gpu"]),
                    str(record["dtype"]),
                    str(record["grid"]),
                    int(record["time_steps"]),  # type: ignore[arg-type]
                    str(record["code_version"]),
                    str(record["status"]),
                    json.dumps(record["payload"], sort_keys=True, separators=(",", ":")),
                    float(record["elapsed_s"]),  # type: ignore[arg-type]
                    timestamp,
                ),
            )
            committed += cursor.rowcount
        if committed:
            # Replayed batches that changed no row leave every cache valid.
            self._bump_generation("results")
        self.metrics.histogram(
            "store_commit_batch_size",
            "Records per wire-commit batch",
            buckets=SIZE_BUCKETS,
        ).observe(float(len(records)))
        if committed < len(records):
            # A record that changed no row lost the upsert conflict: its key
            # already holds an ``ok`` result (replay, racing workers).
            self.metrics.counter(
                "store_upsert_conflicts_total",
                "Wire-committed records dropped because an ok row already existed",
            ).inc(len(records) - committed)
        return committed

    def delete(self, key: str) -> bool:
        self._bump_generation("results")
        return self._commit("DELETE FROM results WHERE key = ?", (key,)).rowcount > 0

    def purge(self, status: Optional[str] = None) -> int:
        """Drop rows (all of them, or only those with the given status)."""
        self._bump_generation("results")
        if status is None:
            return self._commit("DELETE FROM results", ()).rowcount
        return self._commit("DELETE FROM results WHERE status = ?", (status,)).rowcount

    # -- reads -----------------------------------------------------------------
    def _row_to_result(self, row: Sequence[object]) -> StoredResult:
        return StoredResult(
            key=row[0],
            kind=row[1],
            pattern=row[2],
            gpu=row[3],
            dtype=row[4],
            grid=row[5],
            time_steps=row[6],
            code_version=row[7],
            status=row[8],
            payload=json.loads(row[9]),
            elapsed_s=row[10],
            created_at=row[11],
        )

    _SELECT = (
        "SELECT key, kind, pattern, gpu, dtype, grid, time_steps, code_version, "
        "status, payload, elapsed_s, created_at FROM results"
    )

    def get(self, key: str) -> Optional[StoredResult]:
        row = self._conn.execute(self._SELECT + " WHERE key = ?", (key,)).fetchone()
        return self._row_to_result(row) if row else None

    def lookup(self, spec: JobSpec, code_version: Optional[str] = None) -> Optional[StoredResult]:
        return self.get(spec.key(code_version))

    def __contains__(self, key: str) -> bool:
        row = self._conn.execute("SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
        return row is not None

    def has_ok(self, spec: JobSpec, code_version: Optional[str] = None) -> bool:
        """True when a successful result for this job is already stored."""
        result = self.lookup(spec, code_version)
        return result is not None and result.ok

    def count(self, status: Optional[str] = None) -> int:
        if status is None:
            return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        return self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE status = ?", (status,)
        ).fetchone()[0]

    def keys(self) -> List[str]:
        return [row[0] for row in self._conn.execute("SELECT key FROM results ORDER BY key")]

    def statuses(self, keys: Sequence[str]) -> Dict[str, str]:
        """Status by key for the subset of ``keys`` present in the store.

        Absent keys are simply missing from the result — that is how the
        service derives queued/running/done counts for one campaign without
        scanning the whole store.
        """
        out: Dict[str, str] = {}
        chunk_size = 400  # comfortably below SQLite's bound-parameter limit
        keys = list(keys)
        for start in range(0, len(keys), chunk_size):
            chunk = keys[start : start + chunk_size]
            marks = ",".join("?" * len(chunk))
            for key, status in self._conn.execute(
                f"SELECT key, status FROM results WHERE key IN ({marks})", chunk
            ):
                out[key] = status
        return out

    def query(
        self,
        kind: Optional[str] = None,
        pattern: Optional[str] = None,
        gpu: Optional[str] = None,
        dtype: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[StoredResult]:
        """Filtered results in deterministic (kind, pattern, gpu, dtype, key) order."""
        clauses: List[str] = []
        args: List[object] = []
        for column, value in (
            ("kind", kind),
            ("pattern", pattern),
            ("gpu", gpu),
            ("dtype", dtype),
            ("status", status),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        sql = self._SELECT
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY kind, pattern, gpu, dtype, key"
        return [self._row_to_result(row) for row in self._conn.execute(sql, args)]

    # -- exports ---------------------------------------------------------------
    def export_records(
        self,
        ok_only: bool = True,
        kind: Optional[str] = None,
        pattern: Optional[str] = None,
        gpu: Optional[str] = None,
        dtype: Optional[str] = None,
    ) -> List[dict]:
        """Deterministically ordered export records (timestamps excluded)."""
        results = self.query(
            kind=kind, pattern=pattern, gpu=gpu, dtype=dtype,
            status="ok" if ok_only else None,
        )
        return [r.export_record() for r in results]

    def to_table(
        self, title: str = "Campaign results", **filters: object
    ) -> ResultTable:
        records = [
            {**{k: v for k, v in record.items() if k != "payload"},
             "payload": json.dumps(record["payload"], sort_keys=True, separators=(",", ":"))}
            for record in self.export_records(**filters)
        ]
        return ResultTable.from_records(title, records, headers=EXPORT_COLUMNS)

    @staticmethod
    def record_line(record: dict) -> str:
        """The canonical one-line JSONL encoding of one export record.

        File exports and the service's streamed ``/export`` endpoint share
        this encoder, which is what makes them byte-identical.
        """
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    def export_jsonl(
        self,
        path: Union[str, Path],
        records: Optional[List[dict]] = None,
        **filters: object,
    ) -> Path:
        """Write one JSON object per result; sorted, timestamp-free, diff-able.

        Pass ``records`` (from :meth:`export_records`) to reuse an already
        materialised result set instead of querying again.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if records is None:
            records = self.export_records(**filters)
        lines = [self.record_line(record) for record in records]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def export_json(
        self,
        path: Union[str, Path],
        records: Optional[List[dict]] = None,
        **filters: object,
    ) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if records is None:
            records = self.export_records(**filters)
        path.write_text(json.dumps({"results": records}, sort_keys=True, indent=2) + "\n")
        return path

    # -- cluster: instance registry --------------------------------------------
    # Raw row-level accessors for the tables the cluster layer shares through
    # the store.  Liveness policy (heartbeat age), shard planning and HTTP
    # forwarding live in :mod:`repro.cluster`; the store only persists facts.

    def register_instance(
        self,
        instance_id: str,
        host: str,
        port: int,
        role: str,
        capabilities: Dict[str, object],
        now: Optional[float] = None,
    ) -> None:
        """Insert (or refresh) one service instance; heartbeat starts now."""
        timestamp = time.time() if now is None else float(now)
        self._commit(
            "INSERT OR REPLACE INTO instances "
            "(instance_id, host, port, role, capabilities, started_at, heartbeat_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                instance_id,
                host,
                int(port),
                role,
                json.dumps(capabilities, sort_keys=True, separators=(",", ":")),
                timestamp,
                timestamp,
            ),
        )
        self._bump_generation("cluster")

    def heartbeat_instance(self, instance_id: str, now: Optional[float] = None) -> bool:
        """Refresh one instance's heartbeat; False if it is not registered."""
        timestamp = time.time() if now is None else float(now)
        cursor = self._commit(
            "UPDATE instances SET heartbeat_at = ? WHERE instance_id = ?",
            (timestamp, instance_id),
        )
        self._bump_generation("cluster")
        return cursor.rowcount > 0

    def remove_instance(self, instance_id: str) -> bool:
        self._bump_generation("cluster")
        return (
            self._commit(
                "DELETE FROM instances WHERE instance_id = ?", (instance_id,)
            ).rowcount
            > 0
        )

    def instance_rows(self) -> List[Dict[str, object]]:
        """All registered instances, oldest registration first."""
        rows = self._conn.execute(
            "SELECT instance_id, host, port, role, capabilities, started_at, heartbeat_at "
            "FROM instances ORDER BY started_at, instance_id"
        )
        return [
            {
                "instance_id": row[0],
                "host": row[1],
                "port": row[2],
                "role": row[3],
                "capabilities": json.loads(row[4]),
                "started_at": row[5],
                "heartbeat_at": row[6],
            }
            for row in rows
        ]

    # -- cluster: submission queue ----------------------------------------------
    def enqueue_submission(
        self, sid: str, spec_json: str, shards: int, now: Optional[float] = None
    ) -> None:
        """Insert (or re-open) one campaign submission in state ``queued``.

        Re-submitting an id that already finished resets its state and shard
        count but keeps the original ``created_at`` so queue order is stable.
        """
        timestamp = time.time() if now is None else float(now)
        self._commit(
            "INSERT INTO submissions (id, spec, shards, state, created_at, updated_at) "
            "VALUES (?, ?, ?, 'queued', ?, ?) "
            "ON CONFLICT(id) DO UPDATE SET "
            "spec = excluded.spec, shards = excluded.shards, state = 'queued', "
            "updated_at = excluded.updated_at",
            (sid, spec_json, int(shards), timestamp, timestamp),
        )
        self._bump_generation("cluster")

    def update_submission(
        self, sid: str, state: str, now: Optional[float] = None
    ) -> bool:
        timestamp = time.time() if now is None else float(now)
        cursor = self._commit(
            "UPDATE submissions SET state = ?, updated_at = ? WHERE id = ?",
            (state, timestamp, sid),
        )
        self._bump_generation("cluster")
        return cursor.rowcount > 0

    def _submission_row(self, row: Sequence[object]) -> Dict[str, object]:
        return {
            "id": row[0],
            "spec": row[1],
            "shards": row[2],
            "state": row[3],
            "created_at": row[4],
            "updated_at": row[5],
        }

    def get_submission(self, sid: str) -> Optional[Dict[str, object]]:
        row = self._conn.execute(
            "SELECT id, spec, shards, state, created_at, updated_at "
            "FROM submissions WHERE id = ?",
            (sid,),
        ).fetchone()
        return self._submission_row(row) if row else None

    def submission_rows(self, state: Optional[str] = None) -> List[Dict[str, object]]:
        """Submissions in queue order (optionally only one state)."""
        sql = "SELECT id, spec, shards, state, created_at, updated_at FROM submissions"
        args: Tuple[object, ...] = ()
        if state is not None:
            sql += " WHERE state = ?"
            args = (state,)
        sql += " ORDER BY created_at, id"
        return [self._submission_row(row) for row in self._conn.execute(sql, args)]

    def set_assignment(
        self, sid: str, shard_index: int, instance_id: str, now: Optional[float] = None
    ) -> None:
        timestamp = time.time() if now is None else float(now)
        self._commit(
            "INSERT OR REPLACE INTO assignments "
            "(submission_id, shard_index, instance_id, updated_at) VALUES (?, ?, ?, ?)",
            (sid, int(shard_index), instance_id, timestamp),
        )
        self._bump_generation("cluster")

    def clear_assignments(self, sid: str) -> int:
        self._bump_generation("cluster")
        return self._commit(
            "DELETE FROM assignments WHERE submission_id = ?", (sid,)
        ).rowcount

    def assignment_rows(self, sid: str) -> List[Dict[str, object]]:
        """One submission's shard -> instance assignments, by shard index."""
        rows = self._conn.execute(
            "SELECT shard_index, instance_id, updated_at FROM assignments "
            "WHERE submission_id = ? ORDER BY shard_index",
            (sid,),
        )
        return [
            {"shard_index": row[0], "instance_id": row[1], "updated_at": row[2]}
            for row in rows
        ]

    # -- cluster: leases ---------------------------------------------------------
    # A lease is a named, time-bounded claim ("coordinator" is the only name
    # used today).  Acquire/renew/seize is one atomic statement, so any
    # store-native instance may race for an expired lease and exactly one
    # wins; the loser simply stays in standby until the next attempt.

    def acquire_lease(
        self, name: str, holder: str, ttl: float, now: Optional[float] = None
    ) -> bool:
        """Acquire, renew or seize one named lease; True when ``holder`` holds it.

        The current holder always renews; anyone else only succeeds once the
        lease has expired (``expires_at <= now``) — which is exactly what a
        crashed holder leaves behind once it stops renewing.
        """
        timestamp = time.time() if now is None else float(now)
        expires = timestamp + float(ttl)
        inserted = self._commit(
            "INSERT OR IGNORE INTO leases (name, holder, acquired_at, expires_at) "
            "VALUES (?, ?, ?, ?)",
            (name, holder, timestamp, expires),
        )
        if inserted.rowcount > 0:
            self._bump_generation("cluster")
            return True
        updated = self._commit(
            "UPDATE leases SET "
            "acquired_at = CASE WHEN holder = ? THEN acquired_at ELSE ? END, "
            "holder = ?, expires_at = ? "
            "WHERE name = ? AND (holder = ? OR expires_at <= ?)",
            (holder, timestamp, holder, expires, name, holder, timestamp),
        )
        self._bump_generation("cluster")
        return updated.rowcount > 0

    def get_lease(self, name: str) -> Optional[Dict[str, object]]:
        row = self._conn.execute(
            "SELECT name, holder, acquired_at, expires_at FROM leases WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            return None
        return {
            "name": row[0],
            "holder": row[1],
            "acquired_at": row[2],
            "expires_at": row[3],
        }

    def release_lease(self, name: str, holder: str) -> bool:
        """Drop one lease, but only if ``holder`` still holds it."""
        cursor = self._commit(
            "DELETE FROM leases WHERE name = ? AND holder = ?", (name, holder)
        )
        self._bump_generation("cluster")
        return cursor.rowcount > 0

    # -- telemetry history --------------------------------------------------------
    # Periodic metrics snapshots, one JSON blob per (instance, tick).  The
    # table is *explicitly* timestamped — it records when this process saw
    # these rates — and lives entirely outside the content-addressed result
    # namespace: nothing here is ever exported, so every export stays
    # byte-identical no matter how many snapshots accumulate.

    def record_telemetry(
        self,
        instance_id: str,
        snapshot: Dict[str, object],
        code_version: Optional[str] = None,
        now: Optional[float] = None,
    ) -> int:
        """Persist one metrics snapshot; returns its row id."""
        timestamp = time.time() if now is None else float(now)
        version = code_version if code_version is not None else repro.__version__
        cursor = self._commit(
            "INSERT INTO telemetry (instance_id, code_version, created_at, snapshot) "
            "VALUES (?, ?, ?, ?)",
            (
                instance_id,
                version,
                timestamp,
                json.dumps(snapshot, sort_keys=True, separators=(",", ":"), default=str),
            ),
        )
        self._bump_generation("telemetry")
        return int(cursor.lastrowid or 0)

    def telemetry_rows(
        self,
        instance_id: Optional[str] = None,
        code_version: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Snapshots, newest first (optionally filtered, optionally capped)."""
        sql = (
            "SELECT id, instance_id, code_version, created_at, snapshot "
            "FROM telemetry"
        )
        clauses: List[str] = []
        args: List[object] = []
        if instance_id is not None:
            clauses.append("instance_id = ?")
            args.append(instance_id)
        if code_version is not None:
            clauses.append("code_version = ?")
            args.append(code_version)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at DESC, id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        return [
            {
                "id": row[0],
                "instance_id": row[1],
                "code_version": row[2],
                "created_at": row[3],
                "snapshot": json.loads(row[4]),
            }
            for row in self._conn.execute(sql, args)
        ]

    def prune_telemetry(self, keep_last: int) -> int:
        """Drop all but the newest ``keep_last`` snapshots (bounded history)."""
        self._bump_generation("telemetry")
        return self._commit(
            "DELETE FROM telemetry WHERE id NOT IN "
            "(SELECT id FROM telemetry ORDER BY created_at DESC, id DESC LIMIT ?)",
            (max(0, int(keep_last)),),
        ).rowcount

    # -- fuzz coverage ------------------------------------------------------------
    def replace_coverage(
        self, entries: Dict[Tuple[str, str], Tuple[int, int]]
    ) -> None:
        """Replace the per-(family, check) coverage counters wholesale.

        The counters are an idempotent *derived* aggregate — recomputed from
        the fuzz rows in the results table after each fuzz campaign — so a
        warm re-run rewrites identical numbers instead of double-counting.
        """
        start = time.perf_counter()
        conn = self._conn
        lock = (
            self._write_lock if self._shared is not None else contextlib.nullcontext()
        )
        with lock:
            conn.execute("DELETE FROM coverage")
            conn.executemany(
                "INSERT INTO coverage (family, check_name, runs, passed) "
                "VALUES (?, ?, ?, ?)",
                [
                    (family, check, int(runs), int(passed))
                    for (family, check), (runs, passed) in sorted(entries.items())
                ],
            )
            conn.commit()
        self._bump_generation("telemetry")
        self.metrics.histogram(
            "store_commit_seconds", "SQLite write-and-commit latency per call"
        ).observe(time.perf_counter() - start)

    def coverage_rows(self) -> List[Dict[str, object]]:
        """Coverage counters in (family, check) order."""
        return [
            {"family": row[0], "check": row[1], "runs": row[2], "passed": row[3]}
            for row in self._conn.execute(
                "SELECT family, check_name, runs, passed FROM coverage "
                "ORDER BY family, check_name"
            )
        ]

    # -- code-version maintenance ------------------------------------------------
    def code_versions(self) -> Dict[str, int]:
        """Result counts per code version (stale versions never expire alone)."""
        return {
            version: count
            for version, count in self._conn.execute(
                "SELECT code_version, COUNT(*) FROM results "
                "GROUP BY code_version ORDER BY code_version"
            )
        }

    def purge_code_version(self, version: str) -> int:
        """Drop every result recorded under one code version."""
        self._bump_generation("results")
        return self._commit(
            "DELETE FROM results WHERE code_version = ?", (version,)
        ).rowcount

    # -- bookkeeping -----------------------------------------------------------
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for status, n in self._conn.execute(
            "SELECT status, COUNT(*) FROM results GROUP BY status ORDER BY status"
        ):
            counts[status] = n
        return counts

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for kind, n in self._conn.execute(
            "SELECT kind, COUNT(*) FROM results GROUP BY kind ORDER BY kind"
        ):
            counts[kind] = n
        return counts
