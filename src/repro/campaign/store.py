"""SQLite-backed, content-addressed result store.

Every campaign job commits its result under the job's deterministic key
(:meth:`repro.campaign.jobs.JobSpec.key`) the moment it finishes, so a
killed campaign loses at most the jobs that were mid-flight.  Exports are
produced in a fixed sort order with timestamps excluded, which makes the
final artifacts byte-identical whether a campaign ran straight through or
was interrupted and resumed.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import repro
from repro.campaign.jobs import JobSpec
from repro.reporting import ResultTable

#: Bump when the stored payload layout changes incompatibly.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    pattern      TEXT NOT NULL,
    gpu          TEXT NOT NULL,
    dtype        TEXT NOT NULL,
    grid         TEXT NOT NULL,
    time_steps   INTEGER NOT NULL,
    code_version TEXT NOT NULL,
    status       TEXT NOT NULL,
    payload      TEXT NOT NULL,
    elapsed_s    REAL NOT NULL DEFAULT 0.0,
    created_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_lookup ON results (kind, pattern, gpu, dtype);
CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT NOT NULL);
"""

#: Stable export column order shared by every store export.
EXPORT_COLUMNS = (
    "key",
    "kind",
    "pattern",
    "gpu",
    "dtype",
    "grid",
    "time_steps",
    "status",
    "payload",
)


@dataclass(frozen=True)
class StoredResult:
    """One committed job result."""

    key: str
    kind: str
    pattern: str
    gpu: str
    dtype: str
    grid: str
    time_steps: int
    code_version: str
    status: str
    payload: Dict[str, object]
    elapsed_s: float
    created_at: float

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def export_record(self) -> Dict[str, object]:
        """Deterministic record (no timestamps) for diff-able exports."""
        return {
            "key": self.key,
            "kind": self.kind,
            "pattern": self.pattern,
            "gpu": self.gpu,
            "dtype": self.dtype,
            "grid": self.grid,
            "time_steps": self.time_steps,
            "status": self.status,
            "payload": self.payload,
        }


class ResultStore:
    """Content-addressed store of campaign results on one SQLite file.

    Pass ``":memory:"`` for an ephemeral in-process store (handy in tests).
    The store is safe for one writer at a time; the campaign scheduler
    funnels every worker's result through the parent process, so workers
    never open the database themselves.
    """

    def __init__(self, path: Union[str, Path] = "campaign.sqlite") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (k, v) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        self._conn.commit()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes ----------------------------------------------------------------
    def put(
        self,
        spec: JobSpec,
        payload: Dict[str, object],
        status: str = "ok",
        elapsed_s: float = 0.0,
        code_version: Optional[str] = None,
    ) -> str:
        """Commit one result immediately (incremental commit = resumability)."""
        version = code_version if code_version is not None else repro.__version__
        key = spec.key(version)
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            "(key, kind, pattern, gpu, dtype, grid, time_steps, code_version, "
            " status, payload, elapsed_s, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                spec.kind,
                spec.pattern,
                spec.gpu,
                spec.dtype,
                "x".join(str(v) for v in spec.interior),
                spec.time_steps,
                version,
                status,
                json.dumps(payload, sort_keys=True, separators=(",", ":")),
                float(elapsed_s),
                time.time(),
            ),
        )
        self._conn.commit()
        return key

    def delete(self, key: str) -> bool:
        cursor = self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
        self._conn.commit()
        return cursor.rowcount > 0

    def purge(self, status: Optional[str] = None) -> int:
        """Drop rows (all of them, or only those with the given status)."""
        if status is None:
            cursor = self._conn.execute("DELETE FROM results")
        else:
            cursor = self._conn.execute("DELETE FROM results WHERE status = ?", (status,))
        self._conn.commit()
        return cursor.rowcount

    # -- reads -----------------------------------------------------------------
    def _row_to_result(self, row: Sequence[object]) -> StoredResult:
        return StoredResult(
            key=row[0],
            kind=row[1],
            pattern=row[2],
            gpu=row[3],
            dtype=row[4],
            grid=row[5],
            time_steps=row[6],
            code_version=row[7],
            status=row[8],
            payload=json.loads(row[9]),
            elapsed_s=row[10],
            created_at=row[11],
        )

    _SELECT = (
        "SELECT key, kind, pattern, gpu, dtype, grid, time_steps, code_version, "
        "status, payload, elapsed_s, created_at FROM results"
    )

    def get(self, key: str) -> Optional[StoredResult]:
        row = self._conn.execute(self._SELECT + " WHERE key = ?", (key,)).fetchone()
        return self._row_to_result(row) if row else None

    def lookup(self, spec: JobSpec, code_version: Optional[str] = None) -> Optional[StoredResult]:
        return self.get(spec.key(code_version))

    def __contains__(self, key: str) -> bool:
        row = self._conn.execute("SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
        return row is not None

    def has_ok(self, spec: JobSpec, code_version: Optional[str] = None) -> bool:
        """True when a successful result for this job is already stored."""
        result = self.lookup(spec, code_version)
        return result is not None and result.ok

    def count(self, status: Optional[str] = None) -> int:
        if status is None:
            return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        return self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE status = ?", (status,)
        ).fetchone()[0]

    def keys(self) -> List[str]:
        return [row[0] for row in self._conn.execute("SELECT key FROM results ORDER BY key")]

    def query(
        self,
        kind: Optional[str] = None,
        pattern: Optional[str] = None,
        gpu: Optional[str] = None,
        dtype: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[StoredResult]:
        """Filtered results in deterministic (kind, pattern, gpu, dtype, key) order."""
        clauses: List[str] = []
        args: List[object] = []
        for column, value in (
            ("kind", kind),
            ("pattern", pattern),
            ("gpu", gpu),
            ("dtype", dtype),
            ("status", status),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        sql = self._SELECT
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY kind, pattern, gpu, dtype, key"
        return [self._row_to_result(row) for row in self._conn.execute(sql, args)]

    # -- exports ---------------------------------------------------------------
    def export_records(
        self,
        ok_only: bool = True,
        kind: Optional[str] = None,
        pattern: Optional[str] = None,
        gpu: Optional[str] = None,
        dtype: Optional[str] = None,
    ) -> List[dict]:
        """Deterministically ordered export records (timestamps excluded)."""
        results = self.query(
            kind=kind, pattern=pattern, gpu=gpu, dtype=dtype,
            status="ok" if ok_only else None,
        )
        return [r.export_record() for r in results]

    def to_table(
        self, title: str = "Campaign results", **filters: object
    ) -> ResultTable:
        records = [
            {**{k: v for k, v in record.items() if k != "payload"},
             "payload": json.dumps(record["payload"], sort_keys=True, separators=(",", ":"))}
            for record in self.export_records(**filters)
        ]
        return ResultTable.from_records(title, records, headers=EXPORT_COLUMNS)

    def export_jsonl(
        self,
        path: Union[str, Path],
        records: Optional[List[dict]] = None,
        **filters: object,
    ) -> Path:
        """Write one JSON object per result; sorted, timestamp-free, diff-able.

        Pass ``records`` (from :meth:`export_records`) to reuse an already
        materialised result set instead of querying again.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if records is None:
            records = self.export_records(**filters)
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def export_json(
        self,
        path: Union[str, Path],
        records: Optional[List[dict]] = None,
        **filters: object,
    ) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if records is None:
            records = self.export_records(**filters)
        path.write_text(json.dumps({"results": records}, sort_keys=True, indent=2) + "\n")
        return path

    # -- bookkeeping -----------------------------------------------------------
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for status, n in self._conn.execute(
            "SELECT status, COUNT(*) FROM results GROUP BY status ORDER BY status"
        ):
            counts[status] = n
        return counts

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for kind, n in self._conn.execute(
            "SELECT kind, COUNT(*) FROM results GROUP BY kind ORDER BY kind"
        ):
            counts[kind] = n
        return counts
