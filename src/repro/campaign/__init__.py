"""Campaign service: batch evaluation across the benchmark x GPU matrix.

The paper's headline artifact (Table 5) is the product of thousands of
individual tuning runs — every stencil, on every GPU, in both precisions.
This package turns the one-shot ``tune()`` / ``exhaustive()`` entry points
into a batch service with durable state:

``jobs``
    The job-spec model: one :class:`~repro.campaign.jobs.JobSpec` per
    (kind, stencil, GPU, dtype, grid) cell, with a deterministic
    content-address so identical work is never repeated, and
    :class:`~repro.campaign.jobs.CampaignSpec` which expands a campaign
    ("all benchmarks x {P100, V100} x {float, double}") into jobs.
``store``
    A SQLite-backed, content-addressed result store.  Every finished job is
    committed immediately, so a killed campaign resumes where it stopped.
``scheduler``
    A sharded scheduler that dedupes a campaign against the store and fans
    the remaining jobs out over a ``multiprocessing`` pool with per-job
    timeouts and retry-on-failure.
``report``
    Leaderboards, Table-5-style matrices and model-accuracy summaries
    rendered straight from the store through :class:`repro.reporting.ResultTable`.
"""

from repro.campaign.jobs import JOB_KINDS, CampaignSpec, JobSpec, run_job
from repro.campaign.report import (
    accuracy_summary,
    campaign_summary,
    leaderboard,
    table5_matrix,
)
from repro.campaign.scheduler import CampaignOutcome, CampaignScheduler
from repro.campaign.store import ResultStore, StoredResult

__all__ = [
    "JOB_KINDS",
    "CampaignOutcome",
    "CampaignScheduler",
    "CampaignSpec",
    "JobSpec",
    "ResultStore",
    "StoredResult",
    "accuracy_summary",
    "campaign_summary",
    "leaderboard",
    "run_job",
    "table5_matrix",
]
