"""Reports rendered straight from the campaign store.

Everything here returns :class:`repro.reporting.ResultTable`, so each report
can be printed, exported to CSV/JSON/JSONL/Markdown or diffed against a
previous campaign without touching the scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.store import ResultStore, StoredResult
from repro.reporting import ResultTable


def _scoped(
    results: List[StoredResult], keys: Optional[Sequence[str]]
) -> List[StoredResult]:
    """Restrict results to a key subset (e.g. one campaign's jobs).

    ``keys=None`` keeps the whole store — the CLI's behaviour; the HTTP
    service passes the addressed campaign's job keys so ``/campaigns/{id}``
    reports never leak other campaigns sharing the store.
    """
    if keys is None:
        return results
    key_set = frozenset(keys)
    return [result for result in results if result.key in key_set]


def _format_config(payload: Dict[str, object]) -> str:
    bs = payload.get("bS")
    bs_text = "x".join(str(v) for v in bs) if isinstance(bs, list) else str(bs)
    hs = payload.get("hS")
    regs = payload.get("regs")
    return (
        f"bT={payload.get('bT')} bS={bs_text} "
        f"hS={hs if hs is not None else 'full'} regs={regs if regs is not None else '-'}"
    )


def leaderboard(
    store: ResultStore,
    kind: str = "tune",
    gpu: Optional[str] = None,
    dtype: Optional[str] = None,
    top: int = 10,
    keys: Optional[Sequence[str]] = None,
) -> ResultTable:
    """The best-performing stored results of one kind, fastest first."""
    metric = {"tune": "tuned_gflops", "exhaustive": "best_gflops", "baseline": "gflops",
              "predict": "simulated_gflops"}.get(kind)
    if metric is None:
        raise ValueError(f"no leaderboard metric for job kind {kind!r}")
    results = _scoped(store.query(kind=kind, gpu=gpu, dtype=dtype, status="ok"), keys)
    results.sort(
        key=lambda r: (-float(r.payload.get(metric, 0.0)), r.pattern, r.gpu, r.dtype)
    )
    table = ResultTable(
        f"Campaign leaderboard ({kind})",
        ["rank", "pattern", "gpu", "dtype", "gflops", "config"],
    )
    for rank, result in enumerate(results[:top], start=1):
        table.add_row(
            rank,
            result.pattern,
            result.gpu,
            result.dtype,
            round(float(result.payload.get(metric, 0.0)), 1),
            _format_config(result.payload),
        )
    return table


def _matrix_columns(results: List[StoredResult]) -> List[Tuple[str, str]]:
    columns: List[Tuple[str, str]] = []
    for result in results:
        cell = (result.gpu, result.dtype)
        if cell not in columns:
            columns.append(cell)
    columns.sort()
    return columns


def table5_matrix(
    store: ResultStore,
    value: str = "tuned_gflops",
    keys: Optional[Sequence[str]] = None,
) -> ResultTable:
    """Table-5-style matrix: one row per stencil, one column per GPU x dtype.

    ``value`` selects the cell contents: any tuning payload field
    (``tuned_gflops``, ``model_gflops``, ``model_accuracy``) or ``"config"``
    for the tuned blocking parameters.
    """
    results = _scoped(store.query(kind="tune", status="ok"), keys)
    columns = _matrix_columns(results)
    cells: Dict[Tuple[str, str, str], object] = {}
    patterns: List[str] = []
    for result in results:
        if result.pattern not in patterns:
            patterns.append(result.pattern)
        if value == "config":
            cell: object = _format_config(result.payload)
        else:
            cell = result.payload.get(value)
            if isinstance(cell, float):
                cell = round(cell, 3 if value == "model_accuracy" else 1)
        cells[(result.pattern, result.gpu, result.dtype)] = cell
    headers = ["pattern", *[f"{gpu}/{dtype}" for gpu, dtype in columns]]
    table = ResultTable(f"Table 5 matrix ({value})", headers)
    for pattern in sorted(patterns):
        table.add_row(
            pattern, *[cells.get((pattern, gpu, dtype)) for gpu, dtype in columns]
        )
    return table


def accuracy_summary(
    store: ResultStore, keys: Optional[Sequence[str]] = None
) -> ResultTable:
    """Model-vs-simulated accuracy per GPU x dtype (the paper's Section 7.2)."""
    results = _scoped(store.query(kind="tune", status="ok"), keys)
    groups: Dict[Tuple[str, str], List[float]] = {}
    for result in results:
        accuracy = result.payload.get("model_accuracy")
        if accuracy is None:
            continue
        groups.setdefault((result.gpu, result.dtype), []).append(float(accuracy))
    table = ResultTable(
        "Model accuracy by GPU and dtype",
        ["gpu", "dtype", "stencils", "mean", "min", "max"],
    )
    for (gpu, dtype), values in sorted(groups.items()):
        table.add_row(
            gpu,
            dtype,
            len(values),
            round(sum(values) / len(values), 3),
            round(min(values), 3),
            round(max(values), 3),
        )
    return table


def campaign_summary(
    store: ResultStore, keys: Optional[Sequence[str]] = None
) -> ResultTable:
    """Store occupancy: how many results of each kind and status."""
    table = ResultTable("Campaign store summary", ["kind", "status", "results"])
    rows: Dict[Tuple[str, str], int] = {}
    for result in _scoped(store.query(), keys):
        rows[(result.kind, result.status)] = rows.get((result.kind, result.status), 0) + 1
    for (kind, status), count in sorted(rows.items()):
        table.add_row(kind, status, count)
    return table


REPORTS = {
    "leaderboard": leaderboard,
    "table5": table5_matrix,
    "accuracy": accuracy_summary,
    "summary": campaign_summary,
}
