"""Job specifications for campaign runs.

A :class:`JobSpec` is a fully serialisable description of one unit of work:
"tune j2d5pt for V100 in double precision on the paper's grid".  Specs carry
only primitives (names, tuples, numbers) so they pickle cheaply into worker
processes and hash deterministically; patterns, GPU specs and grids are
resolved inside the worker.

The content address (:meth:`JobSpec.key`) is a SHA-256 over the canonical
JSON encoding of the spec plus the code version, so a result computed by an
older incompatible version of the library is never mistaken for current.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import repro
from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.model.gpu_specs import GPUS, get_gpu
from repro.stencils.generators import fuzz_name, fuzz_stencil
from repro.stencils.library import (
    BENCHMARKS,
    DEFAULT_2D_GRID,
    DEFAULT_3D_GRID,
    DEFAULT_TIME_STEPS,
    get_benchmark,
    load_pattern,
)

#: The kinds of work a campaign can schedule.
JOB_KINDS: Tuple[str, ...] = ("tune", "exhaustive", "verify", "baseline", "predict", "fuzz")

#: Baseline frameworks expanded by the ``baseline`` job kind.
BASELINE_FRAMEWORKS: Tuple[str, ...] = ("loop", "hybrid", "stencilgen")

#: Small grids used by ``verify`` jobs — functional verification runs the
#: NumPy executors, which would never finish on the paper's full grids.
VERIFY_GRID_2D: Tuple[int, ...] = (96, 96)
VERIFY_GRID_3D: Tuple[int, ...] = (32, 48, 48)
VERIFY_TIME_STEPS = 8


def _canonical(value: object) -> object:
    """Make a value JSON-canonical (tuples become lists, keys sorted later)."""
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


def shard_of_key(key: str, shards: int) -> int:
    """Stable shard of a job *content address* in ``[0, shards)``.

    Callers that already hold the key (the store, the coordinator's status
    aggregation) use this directly instead of re-hashing the spec.
    """
    return int(key[:8], 16) % max(1, shards)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of campaign work.

    ``params`` holds kind-specific settings (``top_k`` for tuning, blocking
    parameters for verify/predict, the framework name for baselines) as a
    sorted tuple of key/value pairs so the spec stays hashable.
    """

    kind: str
    pattern: str
    gpu: str
    dtype: str
    interior: Tuple[int, ...]
    time_steps: int
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}")
        # GPU aliases ("v100", "volta") normalise to the registry's canonical
        # short name here, in the spec itself, so every submit route — CLI
        # matrix expansion, direct construction, HTTP wire decode — produces
        # the same content address for the same work.
        object.__setattr__(self, "gpu", _canonical_gpu_name(self.gpu))
        object.__setattr__(self, "interior", tuple(int(v) for v in self.interior))
        object.__setattr__(
            self, "params", tuple(sorted((str(k), _freeze(v)) for k, v in self.params))
        )

    # -- identity ------------------------------------------------------------
    def params_dict(self) -> Dict[str, object]:
        return {k: v for k, v in self.params}

    def canonical(self, code_version: Optional[str] = None) -> str:
        """Canonical JSON encoding used for content addressing."""
        payload = {
            "kind": self.kind,
            "pattern": self.pattern,
            "gpu": self.gpu,
            "dtype": self.dtype,
            "interior": list(self.interior),
            "time_steps": self.time_steps,
            "params": _canonical(self.params_dict()),
            "version": code_version if code_version is not None else repro.__version__,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def key(self, code_version: Optional[str] = None) -> str:
        """Deterministic content address of this job."""
        return hashlib.sha256(self.canonical(code_version).encode()).hexdigest()

    def shard(self, shards: int) -> int:
        """Stable shard assignment in ``[0, shards)``."""
        return shard_of_key(self.key(), shards)

    def grid(self) -> GridSpec:
        return GridSpec(self.interior, self.time_steps)

    def describe(self) -> str:
        grid = "x".join(str(v) for v in self.interior)
        extra = ""
        framework = self.params_dict().get("framework")
        if framework:
            extra = f" [{framework}]"
        return f"{self.kind} {self.pattern} on {self.gpu}/{self.dtype} ({grid}){extra}"

    # -- wire format ---------------------------------------------------------
    _JSON_FIELDS = ("kind", "pattern", "gpu", "dtype", "interior", "time_steps", "params")

    def to_json(self) -> Dict[str, object]:
        """JSON-safe mapping; ``from_json`` round-trips it key-identically."""
        return {
            "kind": self.kind,
            "pattern": self.pattern,
            "gpu": self.gpu,
            "dtype": self.dtype,
            "interior": list(self.interior),
            "time_steps": self.time_steps,
            "params": _canonical(self.params_dict()),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "JobSpec":
        """Decode a spec from untrusted JSON.

        Strict by design: unknown fields are rejected (a typo like
        ``"patern"`` must not silently submit default work), and the decoded
        spec normalises GPU aliases exactly like direct construction, so the
        content address is stable across submit routes.
        """
        if not isinstance(data, Mapping):
            raise ValueError("job spec must be a JSON object")
        unknown = sorted(set(data) - set(cls._JSON_FIELDS))
        if unknown:
            raise ValueError(f"unknown job spec field(s): {', '.join(unknown)}")
        missing = [f for f in cls._JSON_FIELDS if f != "params" and f not in data]
        if missing:
            raise ValueError(f"missing job spec field(s): {', '.join(missing)}")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError("job spec params must be a JSON object")
        if isinstance(data["interior"], (str, Mapping)):
            # tuple("512") would silently become (5, 1, 2).
            raise ValueError("job spec field 'interior' must be a JSON array")
        return cls(
            kind=str(data["kind"]),
            pattern=str(data["pattern"]),
            gpu=str(data["gpu"]),
            dtype=str(data["dtype"]),
            interior=tuple(data["interior"]),  # type: ignore[arg-type]
            time_steps=int(data["time_steps"]),  # type: ignore[arg-type]
            params=tuple(params.items()),
        )


def _freeze(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _unique(values) -> Tuple:
    """Drop repeats while keeping first-seen order."""
    seen: Dict[object, None] = {}
    for value in values:
        seen.setdefault(value)
    return tuple(seen)


def _canonical_gpu_name(name: str) -> str:
    """The registry's short name ("V100") for any accepted alias."""
    spec = get_gpu(name)  # raises KeyError for unknown GPUs
    for short_name, registered in GPUS.items():
        if registered is spec:
            return short_name
    return name  # pragma: no cover — every registered spec has a short name


# ---------------------------------------------------------------------------
# Job execution
# ---------------------------------------------------------------------------


def _json_safe(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, float):
        # Canonical float formatting keeps exports byte-stable across runs.
        return round(value, 10)
    return value


def _run_tune(spec: JobSpec) -> Dict[str, object]:
    from repro.tuning.autotuner import AutoTuner

    params = spec.params_dict()
    pattern = load_pattern(spec.pattern, spec.dtype)
    tuner = AutoTuner(spec.gpu, top_k=int(params.get("top_k", 5)))
    result = tuner.tune(pattern, spec.grid())
    config = result.best_config
    return {
        "bT": config.bT,
        "bS": list(config.bS),
        "hS": config.hS,
        "regs": config.register_limit,
        "tuned_gflops": result.best.measured_gflops,
        "model_gflops": result.best.predicted_gflops,
        "model_accuracy": result.model_accuracy,
        "explored": result.explored,
        "pruned_to": result.pruned_to,
    }


def _run_exhaustive(spec: JobSpec) -> Dict[str, object]:
    from repro.tuning.exhaustive import exhaustive_search

    pattern = load_pattern(spec.pattern, spec.dtype)
    result = exhaustive_search(pattern, spec.grid(), spec.gpu)
    config = result.best_config
    return {
        "bT": config.bT,
        "bS": list(config.bS),
        "hS": config.hS,
        "regs": config.register_limit,
        "best_gflops": result.best_gflops,
        "evaluated": result.evaluated,
    }


def _run_verify(spec: JobSpec) -> Dict[str, object]:
    from repro.sim.executor import verify_blocking

    params = spec.params_dict()
    pattern = load_pattern(spec.pattern, spec.dtype)
    config = BlockingConfig(
        bT=int(params.get("bT", 4)),
        bS=tuple(params.get("bS", (32,))),
        hS=params.get("hS"),
    )
    result = verify_blocking(pattern, spec.grid(), config, seed=int(params.get("seed", 0)))
    return {
        "bT": config.bT,
        "bS": list(config.bS),
        "matches": bool(result.matches),
        "max_relative_error": result.max_relative_error,
    }


def _run_baseline(spec: JobSpec) -> Dict[str, object]:
    from repro.baselines import HybridTilingBaseline, LoopTilingBaseline, StencilGenBaseline

    params = spec.params_dict()
    framework = str(params.get("framework", "stencilgen"))
    pattern = load_pattern(spec.pattern, spec.dtype)
    gpu = get_gpu(spec.gpu)
    simulators = {
        "loop": LoopTilingBaseline,
        "hybrid": HybridTilingBaseline,
        "stencilgen": StencilGenBaseline,
    }
    if framework not in simulators:
        raise ValueError(f"unknown baseline framework {framework!r}")
    result = simulators[framework](gpu).simulate(pattern, spec.grid())
    return {"framework": framework, "gflops": result.gflops, "time_s": result.time_s}


def _run_predict(spec: JobSpec) -> Dict[str, object]:
    from repro.model.roofline import predict_performance
    from repro.sim.timing import simulate_performance

    params = spec.params_dict()
    pattern = load_pattern(spec.pattern, spec.dtype)
    config = BlockingConfig(
        bT=int(params.get("bT", 4)),
        bS=tuple(params.get("bS", (256,) if pattern.ndim == 2 else (32, 32))),
        hS=params.get("hS"),
        register_limit=params.get("regs"),
    )
    gpu = get_gpu(spec.gpu)
    grid = spec.grid()
    predicted = predict_performance(pattern, grid, config, gpu)
    simulated = simulate_performance(pattern, grid, config, spec.gpu)
    return {
        "bT": config.bT,
        "bS": list(config.bS),
        "hS": config.hS,
        "regs": config.register_limit,
        "model_gflops": predicted.gflops,
        "simulated_gflops": simulated.gflops,
        "model_bottleneck": predicted.bottleneck,
        "simulated_bottleneck": simulated.bottleneck,
    }


def _run_fuzz(spec: JobSpec) -> Dict[str, object]:
    """One differential-fuzzing job: four independent oracle comparisons.

    1. frontend round trip — generated C source, parsed back, must lower to
       IR bit-equal to the directly-built pattern;
    2. compiled kernel vs. the tree-walking interpreter oracle, bit-exact;
    3. blocked executor vs. the NumPy reference (tolerance of reassociation);
    4. batched model engine vs. the scalar model, exact float equality.

    The payload is a structured pass/divergence record with no timestamps or
    environment-dependent fields, so store exports stay byte-identical
    across runs and machines.
    """
    import numpy as np

    from repro.frontend.stencil_detect import parse_stencil
    from repro.ir.compile import compile_pattern
    from repro.model.batch import BatchModelEngine, ConfigBatch, supports_pattern
    from repro.model.roofline import predict_performance
    from repro.sim.executor import verify_blocking
    from repro.sim.timing import simulate_performance
    from repro.stencils.library import direct_pattern
    from repro.stencils.reference import ReferenceExecutor, make_initial_grid

    params = spec.params_dict()
    seed = int(params.get("seed", 0))
    benchmark = get_benchmark(spec.pattern)
    pattern = load_pattern(spec.pattern, spec.dtype)
    grid = spec.grid()
    checks: List[Dict[str, object]] = []

    def record(check: str, passed: bool, detail: str = "") -> None:
        checks.append({"check": check, "passed": bool(passed), "detail": detail})

    reference = direct_pattern(spec.pattern, spec.dtype)
    if reference is None:
        record("frontend_roundtrip", True, "no direct IR builder for this name")
    else:
        parsed = parse_stencil(benchmark.source, name=spec.pattern, dtype=spec.dtype).pattern
        same = (
            parsed.expr == reference.expr
            and parsed.ndim == reference.ndim
            and parsed.array == reference.array
        )
        record("frontend_roundtrip", same, "" if same else "parsed IR differs from direct IR")

    initial = make_initial_grid(pattern, grid, seed=seed)
    oracle = ReferenceExecutor(pattern, compile_pattern(pattern, mode="interpreter"))
    compiled = ReferenceExecutor(pattern, compile_pattern(pattern, mode="compiled"))
    same = bool(
        np.array_equal(
            oracle.run(initial, grid.time_steps),
            compiled.run(initial, grid.time_steps),
            equal_nan=True,
        )
    )
    record(
        "compiled_vs_interpreter", same,
        "" if same else "compiled kernel diverges from the interpreter oracle",
    )

    # The largest standard verify degree the stencil's halo admits: high-order
    # stencils (e.g. radius 4 on a 32-wide block) leave no compute region at
    # bT=4, so the degree backs off deterministically per pattern.
    bS = (32,) if pattern.ndim == 2 else (16, 16)
    degrees = (4, 3, 2, 1) if pattern.ndim == 2 else (2, 1)
    config = next(
        (
            candidate
            for bT in degrees
            for candidate in [BlockingConfig(bT=bT, bS=bS)]
            if candidate.is_valid(pattern)
        ),
        None,
    )
    if config is None:
        record("blocked_vs_reference", True, "no valid blocking on the verify grid")
    else:
        blocked = verify_blocking(pattern, grid, config, seed=seed)
        record(
            "blocked_vs_reference", blocked.matches,
            "" if blocked.matches else f"max_relative_error={blocked.max_relative_error:.3e}",
        )

    model_configs = [
        BlockingConfig(bT=bT, bS=(32,) if pattern.ndim == 2 else (16, 16))
        for bT in (1, 2, 4)
    ]
    model_configs = [c for c in model_configs if c.is_valid(pattern)]
    if not supports_pattern(pattern) or not model_configs:
        record("batch_vs_scalar_model", True, "pattern outside the batch engine's support")
    else:
        gpu = get_gpu(spec.gpu)
        engine = BatchModelEngine(pattern, grid, gpu)
        batch = ConfigBatch.from_configs(model_configs)
        traffic = engine.traffic(batch)
        predicted = engine.predict(batch, traffic)
        simulated = engine.simulate(batch, traffic)
        same = all(
            float(predicted.gflops[index])
            == predict_performance(pattern, grid, config, gpu).gflops
            and float(simulated.gflops[index])
            == simulate_performance(pattern, grid, config, spec.gpu).gflops
            for index, config in enumerate(model_configs)
        )
        record(
            "batch_vs_scalar_model", same,
            "" if same else "batch engine diverges from the scalar model",
        )

    divergences = sum(1 for check in checks if not check["passed"])
    return {
        "ndim": pattern.ndim,
        "offsets": len(pattern.offsets),
        "checks": checks,
        "divergences": divergences,
        "passed": divergences == 0,
    }


_RUNNERS = {
    "tune": _run_tune,
    "exhaustive": _run_exhaustive,
    "verify": _run_verify,
    "baseline": _run_baseline,
    "predict": _run_predict,
    "fuzz": _run_fuzz,
}


def run_job(spec: JobSpec) -> Dict[str, object]:
    """Execute one job and return its JSON-safe result payload."""
    payload = _RUNNERS[spec.kind](spec)
    return {str(k): _json_safe(v) for k, v in payload.items()}


# ---------------------------------------------------------------------------
# Batched model-only execution
# ---------------------------------------------------------------------------


def predict_batch_key(spec: JobSpec) -> Tuple[object, ...]:
    """Jobs sharing this key evaluate against one (pattern, grid, GPU)."""
    return (spec.pattern, spec.gpu, spec.dtype, spec.interior, spec.time_steps)


def predict_job_batchable(spec: JobSpec) -> bool:
    """Whether the batched model engine can serve this job in-process."""
    from repro.model.batch import supports_pattern

    if spec.kind != "predict":
        return False
    try:
        return supports_pattern(load_pattern(spec.pattern, spec.dtype))
    except Exception:
        return False


def _predict_config(spec: JobSpec, ndim: int) -> BlockingConfig:
    """The blocking configuration a predict job describes (same defaults as
    the scalar runner)."""
    params = spec.params_dict()
    return BlockingConfig(
        bT=int(params.get("bT", 4)),
        bS=tuple(params.get("bS", (256,) if ndim == 2 else (32, 32))),
        hS=params.get("hS"),
        register_limit=params.get("regs"),
    )


def run_predict_jobs(specs: List[JobSpec]) -> List[Dict[str, object]]:
    """Execute many predict jobs of one batch group in a single model pass.

    All specs must share :func:`predict_batch_key`.  Payloads are exactly the
    ones :func:`run_job` would produce for each spec — the batch engine is
    bit-identical to the scalar model — just without one pool dispatch (and
    one model evaluation) per job.
    """
    from repro.model.batch import BatchModelEngine, ConfigBatch

    if not specs:
        return []
    if len({predict_batch_key(spec) for spec in specs}) != 1:
        raise ValueError("predict batch mixes incompatible jobs")
    pattern = load_pattern(specs[0].pattern, specs[0].dtype)
    configs = [_predict_config(spec, pattern.ndim) for spec in specs]
    for config in configs:
        # The scalar runner fails per job on invalid configurations; raising
        # here sends the whole group down that path so each job still gets
        # its own error record.
        config.validate(pattern)
    engine = BatchModelEngine(pattern, specs[0].grid(), get_gpu(specs[0].gpu))
    batch = ConfigBatch.from_configs(configs)
    traffic = engine.traffic(batch)
    predicted = engine.predict(batch, traffic)
    simulated = engine.simulate(batch, traffic)
    payloads = []
    for index, config in enumerate(configs):
        payload = {
            "bT": config.bT,
            "bS": list(config.bS),
            "hS": config.hS,
            "regs": config.register_limit,
            "model_gflops": float(predicted.gflops[index]),
            "simulated_gflops": float(simulated.gflops[index]),
            "model_bottleneck": predicted.bottleneck_name(index),
            "simulated_bottleneck": simulated.bottleneck_name(index),
        }
        payloads.append({str(k): _json_safe(v) for k, v in payload.items()})
    return payloads


# ---------------------------------------------------------------------------
# Campaign expansion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: benchmarks x GPUs x dtypes x job kinds.

    ``expand()`` produces the full deterministic job list; the scheduler
    dedupes it against the result store before running anything.
    """

    benchmarks: Tuple[str, ...] = ()
    gpus: Tuple[str, ...] = ("V100",)
    dtypes: Tuple[str, ...] = ("float",)
    kinds: Tuple[str, ...] = ("tune",)
    time_steps: int = DEFAULT_TIME_STEPS
    interior_2d: Tuple[int, ...] = DEFAULT_2D_GRID
    interior_3d: Tuple[int, ...] = DEFAULT_3D_GRID
    top_k: int = 5
    fuzz_seed: int = 0
    fuzz_count: int = 0

    def __post_init__(self) -> None:
        benchmarks = _unique(self.benchmarks) or tuple(BENCHMARKS)
        object.__setattr__(self, "benchmarks", benchmarks)
        # Normalise GPU aliases ("v100", "volta") to the registry's canonical
        # short name, then drop repeats, so equivalent campaigns — however
        # they were spelled — share one canonical spec and content address.
        object.__setattr__(
            self, "gpus", _unique(_canonical_gpu_name(gpu) for gpu in self.gpus)
        )
        object.__setattr__(self, "dtypes", _unique(self.dtypes))
        object.__setattr__(self, "kinds", _unique(self.kinds))
        object.__setattr__(self, "interior_2d", tuple(int(v) for v in self.interior_2d))
        object.__setattr__(self, "interior_3d", tuple(int(v) for v in self.interior_3d))
        for name in self.benchmarks:
            get_benchmark(name)  # raises KeyError with the available names
        for dtype in self.dtypes:
            if dtype not in ("float", "double"):
                raise ValueError(f"unknown dtype {dtype!r}; expected 'float' or 'double'")
        for kind in self.kinds:
            if kind not in JOB_KINDS:
                raise ValueError(f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")
        if self.fuzz_count < 0:
            raise ValueError("fuzz_count must be non-negative")
        if ("fuzz" in self.kinds) != (self.fuzz_count > 0):
            raise ValueError(
                "the fuzz kind and fuzz_count > 0 go together: set both or neither"
            )

    def _interior(self, ndim: int) -> Tuple[int, ...]:
        return tuple(self.interior_2d) if ndim == 2 else tuple(self.interior_3d)

    def expand(self) -> List[JobSpec]:
        """All unique jobs of the campaign, in deterministic declaration order.

        Repeated matrix entries (``gpus=("V100", "v100")``) collapse to one
        job: expansion dedupes by content address, so the scheduler's
        totals/cache accounting always refer to distinct work.
        """
        jobs: List[JobSpec] = []
        seen: set = set()
        for kind in self.kinds:
            if kind == "fuzz":
                for job in self._fuzz_jobs():
                    key = job.key()
                    if key not in seen:
                        seen.add(key)
                        jobs.append(job)
                continue
            for name in self.benchmarks:
                benchmark = get_benchmark(name)
                for gpu in self.gpus:
                    for dtype in self.dtypes:
                        for job in self._jobs_for(kind, name, benchmark.ndim, gpu, dtype):
                            key = job.key()
                            if key not in seen:
                                seen.add(key)
                                jobs.append(job)
        return jobs

    def _fuzz_jobs(self) -> List[JobSpec]:
        """The seeded fuzz matrix: ``fuzz_count`` generated stencils per GPU.

        The benchmarks/dtypes axes do not apply — each generated stencil
        carries its own dtype, and functional checks run on the verify-sized
        grids regardless of the campaign's evaluation interiors.
        """
        jobs: List[JobSpec] = []
        for gpu in self.gpus:
            for index in range(self.fuzz_count):
                stencil = fuzz_stencil(self.fuzz_seed, index)
                interior = VERIFY_GRID_2D if stencil.ndim == 2 else VERIFY_GRID_3D
                jobs.append(
                    JobSpec(
                        "fuzz",
                        fuzz_name(self.fuzz_seed, index),
                        gpu,
                        stencil.dtype,
                        interior,
                        VERIFY_TIME_STEPS,
                    )
                )
        return jobs

    def _jobs_for(
        self, kind: str, name: str, ndim: int, gpu: str, dtype: str
    ) -> List[JobSpec]:
        if kind == "verify":
            interior = VERIFY_GRID_2D if ndim == 2 else VERIFY_GRID_3D
            params = (("bT", 4), ("bS", (32,))) if ndim == 2 else (("bT", 2), ("bS", (16, 16)))
            return [
                JobSpec(
                    kind, name, gpu, dtype, interior, VERIFY_TIME_STEPS, params
                )
            ]
        interior = self._interior(ndim)
        if kind == "baseline":
            return [
                JobSpec(
                    kind, name, gpu, dtype, interior, self.time_steps,
                    (("framework", framework),),
                )
                for framework in BASELINE_FRAMEWORKS
            ]
        if kind == "tune":
            return [
                JobSpec(
                    kind, name, gpu, dtype, interior, self.time_steps,
                    (("top_k", self.top_k),),
                )
            ]
        return [JobSpec(kind, name, gpu, dtype, interior, self.time_steps)]

    def size(self) -> int:
        return len(self.expand())

    def describe(self) -> str:
        if self.kinds == ("fuzz",):
            return (
                f"fuzz seed {self.fuzz_seed}: {self.fuzz_count} generated stencil(s) x "
                f"{len(self.gpus)} GPU(s)"
            )
        text = (
            f"{len(self.benchmarks)} benchmark(s) x {len(self.gpus)} GPU(s) x "
            f"{len(self.dtypes)} dtype(s) x kinds {', '.join(self.kinds)}"
        )
        if self.fuzz_count > 0:
            text += f" + fuzz seed {self.fuzz_seed} x {self.fuzz_count}"
        return text

    # -- wire format ---------------------------------------------------------
    _JSON_FIELDS = (
        "benchmarks",
        "gpus",
        "dtypes",
        "kinds",
        "time_steps",
        "interior_2d",
        "interior_3d",
        "top_k",
        "fuzz_seed",
        "fuzz_count",
    )

    def to_json(self) -> Dict[str, object]:
        """Canonical JSON-safe mapping of the (normalised) campaign.

        The fuzz fields are emitted only when the campaign actually carries a
        fuzz matrix, so every pre-existing campaign keeps its exact canonical
        encoding — and therefore its content address and short id.
        """
        data: Dict[str, object] = {
            "benchmarks": list(self.benchmarks),
            "gpus": list(self.gpus),
            "dtypes": list(self.dtypes),
            "kinds": list(self.kinds),
            "time_steps": self.time_steps,
            "interior_2d": list(self.interior_2d),
            "interior_3d": list(self.interior_3d),
            "top_k": self.top_k,
        }
        if self.fuzz_count > 0:
            data["fuzz_seed"] = self.fuzz_seed
            data["fuzz_count"] = self.fuzz_count
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "CampaignSpec":
        """Decode a campaign from untrusted JSON (strict: no unknown fields).

        Omitted fields take the same defaults as direct construction, so a
        minimal ``{"benchmarks": ["j2d5pt"]}`` submission and the equivalent
        CLI invocation expand to identical job keys.
        """
        if not isinstance(data, Mapping):
            raise ValueError("campaign spec must be a JSON object")
        unknown = sorted(set(data) - set(cls._JSON_FIELDS))
        if unknown:
            raise ValueError(f"unknown campaign spec field(s): {', '.join(unknown)}")
        for name in ("benchmarks", "gpus", "dtypes", "kinds", "interior_2d", "interior_3d"):
            if name in data and isinstance(data[name], (str, Mapping)):
                raise ValueError(f"campaign spec field {name!r} must be a JSON array")
        defaults = {
            "gpus": ("V100",),
            "dtypes": ("float",),
            "kinds": ("tune",),
        }
        return cls(
            benchmarks=tuple(data.get("benchmarks", ())),  # type: ignore[arg-type]
            gpus=tuple(data.get("gpus", defaults["gpus"])),  # type: ignore[arg-type]
            dtypes=tuple(data.get("dtypes", defaults["dtypes"])),  # type: ignore[arg-type]
            kinds=tuple(data.get("kinds", defaults["kinds"])),  # type: ignore[arg-type]
            time_steps=int(data.get("time_steps", DEFAULT_TIME_STEPS)),  # type: ignore[arg-type]
            interior_2d=tuple(data.get("interior_2d", DEFAULT_2D_GRID)),  # type: ignore[arg-type]
            interior_3d=tuple(data.get("interior_3d", DEFAULT_3D_GRID)),  # type: ignore[arg-type]
            top_k=int(data.get("top_k", 5)),  # type: ignore[arg-type]
            fuzz_seed=int(data.get("fuzz_seed", 0)),  # type: ignore[arg-type]
            fuzz_count=int(data.get("fuzz_count", 0)),  # type: ignore[arg-type]
        )

    def canonical(self) -> str:
        """Canonical JSON encoding used for the campaign's content address."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """Deterministic content address of the (normalised) campaign.

        Unlike job keys this is version-independent: the same matrix keeps
        one campaign id across code versions; the *job* keys underneath it
        decide what is actually recomputed.
        """
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def short_id(self) -> str:
        """Short campaign/submission id: ``"c"`` + content-address prefix.

        Shared by the HTTP service's campaign ids and the cluster layer's
        submission ids, so one spec resolves to the same id on every
        instance and on the coordinator.
        """
        return "c" + self.key()[:12]
