"""The paper's benchmark suite (Table 3).

Every benchmark carries its C source (the exact input format AN5D accepts),
the FLOP/cell figure reported in Table 3, and the default evaluation grid
(16,384² for 2D and 512³ for 3D, 1,000 iterations — Section 6.1).  Patterns
are produced by running the real frontend on the C source, so the library
doubles as an end-to-end exercise of the parser and stencil detector.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.frontend.stencil_detect import parse_stencil
from repro.ir.stencil import GridSpec, StencilPattern
from repro.stencils import generators
from repro.stencils.generators import (
    anisotropic_star_stencil_source,
    box_stencil_source,
    fdtd_stencil_source,
    fuzz_stencil,
    parse_fuzz_name,
    star_stencil_source,
    variable_star_stencil_source,
)

#: Default evaluation sizes from Section 6.1.
DEFAULT_2D_GRID = (16384, 16384)
DEFAULT_3D_GRID = (512, 512, 512)
DEFAULT_TIME_STEPS = 1000


@dataclass(frozen=True)
class BenchmarkStencil:
    """One row of Table 3."""

    name: str
    ndim: int
    radius: int
    source: str
    paper_flops_per_cell: int
    description: str

    def pattern(self, dtype: str = "float") -> StencilPattern:
        """Parse the benchmark's C source into a stencil pattern."""
        detected = parse_stencil(self.source, name=self.name, dtype=dtype)
        return detected.pattern

    def default_grid(self, time_steps: int = DEFAULT_TIME_STEPS) -> GridSpec:
        interior = DEFAULT_2D_GRID if self.ndim == 2 else DEFAULT_3D_GRID
        return GridSpec(interior, time_steps)


# ---------------------------------------------------------------------------
# Hand-written benchmarks (the j*, gol and gradient stencils)
# ---------------------------------------------------------------------------

_J2D5PT = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
      A[(t+1)%2][i][j] = (5.1f * A[t%2][i-1][j]
          + 12.1f * A[t%2][i][j-1] + 15.0f * A[t%2][i][j]
          + 12.2f * A[t%2][i][j+1] + 5.2f * A[t%2][i+1][j]) / 118;
"""

_J2D9PT = """
for (t = 0; t < I_T; t++)
  for (i = 2; i <= I_S2; i++)
    for (j = 2; j <= I_S1; j++)
      A[(t+1)%2][i][j] = (2.1f * A[t%2][i-2][j] + 5.1f * A[t%2][i-1][j]
          + 2.2f * A[t%2][i][j-2] + 12.1f * A[t%2][i][j-1]
          + 15.0f * A[t%2][i][j]
          + 12.2f * A[t%2][i][j+1] + 2.3f * A[t%2][i][j+2]
          + 5.2f * A[t%2][i+1][j] + 2.4f * A[t%2][i+2][j]) / 118;
"""

_J2D9PT_GOL = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
      A[(t+1)%2][i][j] = (1.1f * A[t%2][i-1][j-1] + 2.1f * A[t%2][i-1][j]
          + 3.1f * A[t%2][i-1][j+1] + 4.1f * A[t%2][i][j-1]
          + 5.1f * A[t%2][i][j] + 6.1f * A[t%2][i][j+1]
          + 7.1f * A[t%2][i+1][j-1] + 8.1f * A[t%2][i+1][j]
          + 9.1f * A[t%2][i+1][j+1]) / 118;
"""

_GRADIENT2D = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
      A[(t+1)%2][i][j] = 0.4f * A[t%2][i][j]
          + 1.0f / sqrtf(0.0001f
            + (A[t%2][i][j] - A[t%2][i-1][j]) * (A[t%2][i][j] - A[t%2][i-1][j])
            + (A[t%2][i][j] - A[t%2][i+1][j]) * (A[t%2][i][j] - A[t%2][i+1][j])
            + (A[t%2][i][j] - A[t%2][i][j-1]) * (A[t%2][i][j] - A[t%2][i][j-1])
            + (A[t%2][i][j] - A[t%2][i][j+1]) * (A[t%2][i][j] - A[t%2][i][j+1]));
"""

_J3D27PT = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S3; i++)
    for (j = 1; j <= I_S2; j++)
      for (k = 1; k <= I_S1; k++)
        A[(t+1)%2][i][j][k] = (0.5f * A[t%2][i-1][j-1][k-1] + 0.51f * A[t%2][i-1][j-1][k]
            + 0.52f * A[t%2][i-1][j-1][k+1] + 0.53f * A[t%2][i-1][j][k-1]
            + 0.54f * A[t%2][i-1][j][k] + 0.55f * A[t%2][i-1][j][k+1]
            + 0.56f * A[t%2][i-1][j+1][k-1] + 0.57f * A[t%2][i-1][j+1][k]
            + 0.58f * A[t%2][i-1][j+1][k+1] + 0.59f * A[t%2][i][j-1][k-1]
            + 0.60f * A[t%2][i][j-1][k] + 0.61f * A[t%2][i][j-1][k+1]
            + 0.62f * A[t%2][i][j][k-1] + 0.63f * A[t%2][i][j][k]
            + 0.64f * A[t%2][i][j][k+1] + 0.65f * A[t%2][i][j+1][k-1]
            + 0.66f * A[t%2][i][j+1][k] + 0.67f * A[t%2][i][j+1][k+1]
            + 0.68f * A[t%2][i+1][j-1][k-1] + 0.69f * A[t%2][i+1][j-1][k]
            + 0.70f * A[t%2][i+1][j-1][k+1] + 0.71f * A[t%2][i+1][j][k-1]
            + 0.72f * A[t%2][i+1][j][k] + 0.73f * A[t%2][i+1][j][k+1]
            + 0.74f * A[t%2][i+1][j+1][k-1] + 0.75f * A[t%2][i+1][j+1][k]
            + 0.76f * A[t%2][i+1][j+1][k+1]) / 26;
"""


def _synthetic_benchmarks() -> List[BenchmarkStencil]:
    benchmarks: List[BenchmarkStencil] = []
    for ndim in (2, 3):
        for radius in range(1, 5):
            benchmarks.append(
                BenchmarkStencil(
                    name=f"star{ndim}d{radius}r",
                    ndim=ndim,
                    radius=radius,
                    source=star_stencil_source(ndim, radius),
                    paper_flops_per_cell=(8 if ndim == 2 else 12) * radius + 1,
                    description=f"synthetic {ndim}D star stencil of order {radius}",
                )
            )
            points = (2 * radius + 1) ** ndim
            benchmarks.append(
                BenchmarkStencil(
                    name=f"box{ndim}d{radius}r",
                    ndim=ndim,
                    radius=radius,
                    source=box_stencil_source(ndim, radius),
                    paper_flops_per_cell=2 * points - 1,
                    description=f"synthetic {ndim}D box stencil of order {radius}",
                )
            )
    return benchmarks


def _named_benchmarks() -> List[BenchmarkStencil]:
    return [
        BenchmarkStencil("j2d5pt", 2, 1, _J2D5PT, 10, "2D Jacobi 5-point (Fig. 4)"),
        BenchmarkStencil("j2d9pt", 2, 2, _J2D9PT, 18, "2D Jacobi 9-point, 2nd-order star"),
        BenchmarkStencil("j2d9pt-gol", 2, 1, _J2D9PT_GOL, 18, "2D 9-point box (game-of-life shape)"),
        BenchmarkStencil("gradient2d", 2, 1, _GRADIENT2D, 19, "2D gradient with sqrt and division"),
        BenchmarkStencil("j3d27pt", 3, 1, _J3D27PT, 54, "3D Jacobi 27-point box"),
    ]


def _build_registry() -> Dict[str, BenchmarkStencil]:
    registry: Dict[str, BenchmarkStencil] = {}
    for benchmark in _synthetic_benchmarks() + _named_benchmarks():
        registry[benchmark.name] = benchmark
    return registry


BENCHMARKS: Dict[str, BenchmarkStencil] = _build_registry()


# ---------------------------------------------------------------------------
# Scenario stencils (beyond Table 3) and dynamic name resolution
# ---------------------------------------------------------------------------


def _scenario_benchmarks() -> List[BenchmarkStencil]:
    return [
        BenchmarkStencil(
            "fdtd2d", 2, 1, fdtd_stencil_source(2), 10,
            "2D FDTD-style acoustic wave update (multi-statement source)",
        ),
        BenchmarkStencil(
            "fdtd3d", 3, 1, fdtd_stencil_source(3), 15,
            "3D FDTD-style acoustic wave update (multi-statement source)",
        ),
        BenchmarkStencil(
            "astar2d1x3r", 2, 3, anisotropic_star_stencil_source((1, 3)), 17,
            "anisotropic 2D star: radius 1 along i, 3 along j",
        ),
        BenchmarkStencil(
            "astar3d2x1x1r", 3, 2, anisotropic_star_stencil_source((2, 1, 1)), 17,
            "anisotropic 3D star: radius 2 along the streaming dimension",
        ),
        BenchmarkStencil(
            "vstar2d2r-s7", 2, 2, variable_star_stencil_source(2, 2, 7), 17,
            "variable-coefficient 2D star of order 2 (seeded table, seed 7)",
        ),
    ]


#: Named scenario stencils — resolvable like Table 3 benchmarks, but kept out
#: of ``BENCHMARKS`` so the default campaign matrix (and its content
#: addresses) stay exactly the paper's table.
SCENARIOS: Dict[str, BenchmarkStencil] = {
    benchmark.name: benchmark for benchmark in _scenario_benchmarks()
}

_STARBOX_NAME = re.compile(r"(star|box)([23])d([1-8])r")
_ASTAR_NAME = re.compile(r"astar([23])d(\d+(?:x\d+)+)r")
_VSTAR_NAME = re.compile(r"vstar([23])d([1-8])r-s(\d+)")

#: Dynamic box stencils in 3D stop at the table's radius: beyond it the
#: expression chain (``(2r+1)^3`` terms) outgrows what the recursive
#: frontend/IR passes are sized for.
_MAX_BOX3D_RADIUS = 4


def _starbox_flops(family: str, ndim: int, radius: int) -> int:
    if family == "star":
        return (8 if ndim == 2 else 12) * radius + 1
    return 2 * (2 * radius + 1) ** ndim - 1


@lru_cache(maxsize=None)
def _dynamic_benchmark(name: str) -> Optional[BenchmarkStencil]:
    """Resolve generator-backed names that are not in a static registry.

    Covers star/box radii beyond Table 3, anisotropic stars, seeded
    variable-coefficient stars, and ``fuzz-{seed}-{index}`` programs.  Every
    name deterministically denotes one program, so resolution is cacheable.
    """
    match = _STARBOX_NAME.fullmatch(name)
    if match:
        family, ndim, radius = match.group(1), int(match.group(2)), int(match.group(3))
        if family == "box" and ndim == 3 and radius > _MAX_BOX3D_RADIUS:
            return None
        source_for = star_stencil_source if family == "star" else box_stencil_source
        return BenchmarkStencil(
            name, ndim, radius, source_for(ndim, radius),
            _starbox_flops(family, ndim, radius),
            f"synthetic {ndim}D {family} stencil of order {radius}",
        )
    match = _ASTAR_NAME.fullmatch(name)
    if match:
        ndim = int(match.group(1))
        radii = tuple(int(part) for part in match.group(2).split("x"))
        if len(radii) != ndim or any(not 1 <= radius <= 8 for radius in radii):
            return None
        return BenchmarkStencil(
            name, ndim, max(radii), anisotropic_star_stencil_source(radii),
            2 * (1 + 2 * sum(radii)) - 1,
            f"anisotropic {ndim}D star stencil with radii {match.group(2)}",
        )
    match = _VSTAR_NAME.fullmatch(name)
    if match:
        ndim, radius, seed = int(match.group(1)), int(match.group(2)), int(match.group(3))
        return BenchmarkStencil(
            name, ndim, radius, variable_star_stencil_source(ndim, radius, seed),
            _starbox_flops("star", ndim, radius),
            f"variable-coefficient {ndim}D star of order {radius} (seed {seed})",
        )
    seed_index = parse_fuzz_name(name)
    if seed_index is not None:
        stencil = fuzz_stencil(*seed_index)
        pattern = stencil.build_pattern()
        return BenchmarkStencil(
            name, stencil.ndim, stencil.radius, stencil.source,
            2 * len(pattern.offsets) - 1, stencil.describe(),
        )
    return None


def direct_pattern(name: str, dtype: str = "float") -> Optional[StencilPattern]:
    """The directly-built IR of a generator-backed name, bypassing the
    frontend — the reference side of the fuzz round-trip oracle.

    Returns None for hand-written benchmarks (their C source is the only
    definition).
    """
    match = _STARBOX_NAME.fullmatch(name)
    if match:
        family, ndim, radius = match.group(1), int(match.group(2)), int(match.group(3))
        if family == "box" and ndim == 3 and radius > _MAX_BOX3D_RADIUS:
            return None
        build = generators.star_stencil if family == "star" else generators.box_stencil
        return build(ndim, radius, dtype)
    match = _ASTAR_NAME.fullmatch(name)
    if match:
        radii = tuple(int(part) for part in match.group(2).split("x"))
        if len(radii) != int(match.group(1)):
            return None
        return generators.anisotropic_star_stencil(radii, dtype, name=name)
    match = _VSTAR_NAME.fullmatch(name)
    if match:
        return generators.variable_star_stencil(
            int(match.group(1)), int(match.group(2)), int(match.group(3)), dtype, name=name
        )
    if name in ("fdtd2d", "fdtd3d"):
        return generators.fdtd_stencil(int(name[4]), dtype)
    seed_index = parse_fuzz_name(name)
    if seed_index is not None:
        return fuzz_stencil(*seed_index).build_pattern(dtype)
    return None

#: The seven stencils shown in Fig. 6 / Fig. 7.
FIGURE6_NAMES: Tuple[str, ...] = (
    "j2d5pt",
    "j2d9pt",
    "j2d9pt-gol",
    "gradient2d",
    "star3d1r",
    "star3d2r",
    "j3d27pt",
)


def benchmark_names() -> List[str]:
    """All benchmark names, synthetic stencils first (matching Table 3)."""
    return list(BENCHMARKS)


def scenario_names() -> List[str]:
    """The named scenario stencils beyond Table 3."""
    return list(SCENARIOS)


def get_benchmark(name: str) -> BenchmarkStencil:
    """Resolve a stencil by name.

    Table 3 benchmarks and named scenarios come from the registries; other
    generator-backed names (star/box up to radius 8, ``astar*``, ``vstar*``,
    ``fuzz-{seed}-{index}``) are built on demand — each such name
    deterministically denotes one program.
    """
    found = BENCHMARKS.get(name) or SCENARIOS.get(name) or _dynamic_benchmark(name)
    if found is not None:
        return found
    raise KeyError(
        f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}, "
        f"{', '.join(SCENARIOS)}, star/box r1-8, astar*, vstar*, fuzz-SEED-INDEX"
    )


def figure6_benchmarks() -> List[BenchmarkStencil]:
    return [BENCHMARKS[name] for name in FIGURE6_NAMES]


@lru_cache(maxsize=None)
def load_pattern(name: str, dtype: str = "float") -> StencilPattern:
    """Parse (and cache) the pattern of a named benchmark."""
    return get_benchmark(name).pattern(dtype)
