"""The paper's benchmark suite (Table 3).

Every benchmark carries its C source (the exact input format AN5D accepts),
the FLOP/cell figure reported in Table 3, and the default evaluation grid
(16,384² for 2D and 512³ for 3D, 1,000 iterations — Section 6.1).  Patterns
are produced by running the real frontend on the C source, so the library
doubles as an end-to-end exercise of the parser and stencil detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.frontend.stencil_detect import parse_stencil
from repro.ir.stencil import GridSpec, StencilPattern
from repro.stencils.generators import box_stencil_source, star_stencil_source

#: Default evaluation sizes from Section 6.1.
DEFAULT_2D_GRID = (16384, 16384)
DEFAULT_3D_GRID = (512, 512, 512)
DEFAULT_TIME_STEPS = 1000


@dataclass(frozen=True)
class BenchmarkStencil:
    """One row of Table 3."""

    name: str
    ndim: int
    radius: int
    source: str
    paper_flops_per_cell: int
    description: str

    def pattern(self, dtype: str = "float") -> StencilPattern:
        """Parse the benchmark's C source into a stencil pattern."""
        detected = parse_stencil(self.source, name=self.name, dtype=dtype)
        return detected.pattern

    def default_grid(self, time_steps: int = DEFAULT_TIME_STEPS) -> GridSpec:
        interior = DEFAULT_2D_GRID if self.ndim == 2 else DEFAULT_3D_GRID
        return GridSpec(interior, time_steps)


# ---------------------------------------------------------------------------
# Hand-written benchmarks (the j*, gol and gradient stencils)
# ---------------------------------------------------------------------------

_J2D5PT = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
      A[(t+1)%2][i][j] = (5.1f * A[t%2][i-1][j]
          + 12.1f * A[t%2][i][j-1] + 15.0f * A[t%2][i][j]
          + 12.2f * A[t%2][i][j+1] + 5.2f * A[t%2][i+1][j]) / 118;
"""

_J2D9PT = """
for (t = 0; t < I_T; t++)
  for (i = 2; i <= I_S2; i++)
    for (j = 2; j <= I_S1; j++)
      A[(t+1)%2][i][j] = (2.1f * A[t%2][i-2][j] + 5.1f * A[t%2][i-1][j]
          + 2.2f * A[t%2][i][j-2] + 12.1f * A[t%2][i][j-1]
          + 15.0f * A[t%2][i][j]
          + 12.2f * A[t%2][i][j+1] + 2.3f * A[t%2][i][j+2]
          + 5.2f * A[t%2][i+1][j] + 2.4f * A[t%2][i+2][j]) / 118;
"""

_J2D9PT_GOL = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
      A[(t+1)%2][i][j] = (1.1f * A[t%2][i-1][j-1] + 2.1f * A[t%2][i-1][j]
          + 3.1f * A[t%2][i-1][j+1] + 4.1f * A[t%2][i][j-1]
          + 5.1f * A[t%2][i][j] + 6.1f * A[t%2][i][j+1]
          + 7.1f * A[t%2][i+1][j-1] + 8.1f * A[t%2][i+1][j]
          + 9.1f * A[t%2][i+1][j+1]) / 118;
"""

_GRADIENT2D = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S2; i++)
    for (j = 1; j <= I_S1; j++)
      A[(t+1)%2][i][j] = 0.4f * A[t%2][i][j]
          + 1.0f / sqrtf(0.0001f
            + (A[t%2][i][j] - A[t%2][i-1][j]) * (A[t%2][i][j] - A[t%2][i-1][j])
            + (A[t%2][i][j] - A[t%2][i+1][j]) * (A[t%2][i][j] - A[t%2][i+1][j])
            + (A[t%2][i][j] - A[t%2][i][j-1]) * (A[t%2][i][j] - A[t%2][i][j-1])
            + (A[t%2][i][j] - A[t%2][i][j+1]) * (A[t%2][i][j] - A[t%2][i][j+1]));
"""

_J3D27PT = """
for (t = 0; t < I_T; t++)
  for (i = 1; i <= I_S3; i++)
    for (j = 1; j <= I_S2; j++)
      for (k = 1; k <= I_S1; k++)
        A[(t+1)%2][i][j][k] = (0.5f * A[t%2][i-1][j-1][k-1] + 0.51f * A[t%2][i-1][j-1][k]
            + 0.52f * A[t%2][i-1][j-1][k+1] + 0.53f * A[t%2][i-1][j][k-1]
            + 0.54f * A[t%2][i-1][j][k] + 0.55f * A[t%2][i-1][j][k+1]
            + 0.56f * A[t%2][i-1][j+1][k-1] + 0.57f * A[t%2][i-1][j+1][k]
            + 0.58f * A[t%2][i-1][j+1][k+1] + 0.59f * A[t%2][i][j-1][k-1]
            + 0.60f * A[t%2][i][j-1][k] + 0.61f * A[t%2][i][j-1][k+1]
            + 0.62f * A[t%2][i][j][k-1] + 0.63f * A[t%2][i][j][k]
            + 0.64f * A[t%2][i][j][k+1] + 0.65f * A[t%2][i][j+1][k-1]
            + 0.66f * A[t%2][i][j+1][k] + 0.67f * A[t%2][i][j+1][k+1]
            + 0.68f * A[t%2][i+1][j-1][k-1] + 0.69f * A[t%2][i+1][j-1][k]
            + 0.70f * A[t%2][i+1][j-1][k+1] + 0.71f * A[t%2][i+1][j][k-1]
            + 0.72f * A[t%2][i+1][j][k] + 0.73f * A[t%2][i+1][j][k+1]
            + 0.74f * A[t%2][i+1][j+1][k-1] + 0.75f * A[t%2][i+1][j+1][k]
            + 0.76f * A[t%2][i+1][j+1][k+1]) / 26;
"""


def _synthetic_benchmarks() -> List[BenchmarkStencil]:
    benchmarks: List[BenchmarkStencil] = []
    for ndim in (2, 3):
        for radius in range(1, 5):
            benchmarks.append(
                BenchmarkStencil(
                    name=f"star{ndim}d{radius}r",
                    ndim=ndim,
                    radius=radius,
                    source=star_stencil_source(ndim, radius),
                    paper_flops_per_cell=(8 if ndim == 2 else 12) * radius + 1,
                    description=f"synthetic {ndim}D star stencil of order {radius}",
                )
            )
            points = (2 * radius + 1) ** ndim
            benchmarks.append(
                BenchmarkStencil(
                    name=f"box{ndim}d{radius}r",
                    ndim=ndim,
                    radius=radius,
                    source=box_stencil_source(ndim, radius),
                    paper_flops_per_cell=2 * points - 1,
                    description=f"synthetic {ndim}D box stencil of order {radius}",
                )
            )
    return benchmarks


def _named_benchmarks() -> List[BenchmarkStencil]:
    return [
        BenchmarkStencil("j2d5pt", 2, 1, _J2D5PT, 10, "2D Jacobi 5-point (Fig. 4)"),
        BenchmarkStencil("j2d9pt", 2, 2, _J2D9PT, 18, "2D Jacobi 9-point, 2nd-order star"),
        BenchmarkStencil("j2d9pt-gol", 2, 1, _J2D9PT_GOL, 18, "2D 9-point box (game-of-life shape)"),
        BenchmarkStencil("gradient2d", 2, 1, _GRADIENT2D, 19, "2D gradient with sqrt and division"),
        BenchmarkStencil("j3d27pt", 3, 1, _J3D27PT, 54, "3D Jacobi 27-point box"),
    ]


def _build_registry() -> Dict[str, BenchmarkStencil]:
    registry: Dict[str, BenchmarkStencil] = {}
    for benchmark in _synthetic_benchmarks() + _named_benchmarks():
        registry[benchmark.name] = benchmark
    return registry


BENCHMARKS: Dict[str, BenchmarkStencil] = _build_registry()

#: The seven stencils shown in Fig. 6 / Fig. 7.
FIGURE6_NAMES: Tuple[str, ...] = (
    "j2d5pt",
    "j2d9pt",
    "j2d9pt-gol",
    "gradient2d",
    "star3d1r",
    "star3d2r",
    "j3d27pt",
)


def benchmark_names() -> List[str]:
    """All benchmark names, synthetic stencils first (matching Table 3)."""
    return list(BENCHMARKS)


def get_benchmark(name: str) -> BenchmarkStencil:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        ) from None


def figure6_benchmarks() -> List[BenchmarkStencil]:
    return [BENCHMARKS[name] for name in FIGURE6_NAMES]


@lru_cache(maxsize=None)
def load_pattern(name: str, dtype: str = "float") -> StencilPattern:
    """Parse (and cache) the pattern of a named benchmark."""
    return get_benchmark(name).pattern(dtype)
