"""NumPy reference execution of stencil patterns.

The reference executor applies the stencil naively, one full time step at a
time, over the whole interior.  It is the correctness oracle for the
functional executor in :mod:`repro.sim.executor`, which runs the *blocked*
schedule (spatial blocks, halos, streaming, temporal blocking) and must
produce bit-compatible results up to floating-point reassociation.

Boundary handling follows the benchmarks: the grid carries a ring of
``radius`` boundary cells on every side whose values are held constant across
time steps (they are never updated, matching the ``1 .. I_S`` loop bounds of
the C sources).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, UnaryOp
from repro.ir.stencil import GridSpec, StencilPattern

_NUMPY_DTYPES = {"float": np.float32, "double": np.float64}

_CALL_NUMPY: Dict[str, Callable[..., np.ndarray]] = {
    "sqrt": np.sqrt,
    "sqrtf": np.sqrt,
    "fabs": np.abs,
    "fabsf": np.abs,
    "exp": np.exp,
    "expf": np.exp,
    "min": np.minimum,
    "max": np.maximum,
    "fmin": np.minimum,
    "fmax": np.maximum,
}


def numpy_dtype(dtype: str) -> type:
    return _NUMPY_DTYPES[dtype]


def make_initial_grid(pattern: StencilPattern, grid: GridSpec, seed: int = 0) -> np.ndarray:
    """A reproducible initial condition including the constant boundary ring."""
    rng = np.random.default_rng(seed)
    shape = grid.padded(pattern.radius)
    data = rng.uniform(0.1, 1.0, size=shape)
    return data.astype(numpy_dtype(pattern.dtype))


class ReferenceExecutor:
    """Evaluates a stencil pattern directly with NumPy array arithmetic."""

    def __init__(self, pattern: StencilPattern) -> None:
        self.pattern = pattern
        self.radius = pattern.radius
        self.dtype = numpy_dtype(pattern.dtype)

    # -- expression evaluation ---------------------------------------------
    def _interior_slice(self, shape: Tuple[int, ...], offset: Tuple[int, ...]) -> Tuple[slice, ...]:
        rad = self.radius
        return tuple(
            slice(rad + off, dim - rad + off) for dim, off in zip(shape, offset)
        )

    def _eval(self, expr: Expr, source: np.ndarray) -> np.ndarray:
        if isinstance(expr, Const):
            return np.asarray(expr.value, dtype=self.dtype)
        if isinstance(expr, GridRead):
            return source[self._interior_slice(source.shape, expr.offset)]
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs, source)
            rhs = self._eval(expr.rhs, source)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        if isinstance(expr, UnaryOp):
            return -self._eval(expr.operand, source)
        if isinstance(expr, Call):
            args = [self._eval(a, source) for a in expr.args]
            return _CALL_NUMPY[expr.name](*args)
        raise TypeError(f"unknown expression node {expr!r}")

    # -- stepping -----------------------------------------------------------
    def step(self, source: np.ndarray) -> np.ndarray:
        """Apply one time step, returning a new array (boundary copied)."""
        result = source.copy()
        interior = tuple(slice(self.radius, dim - self.radius) for dim in source.shape)
        result[interior] = self._eval(self.pattern.expr, source).astype(self.dtype)
        return result

    def run(self, initial: np.ndarray, time_steps: int) -> np.ndarray:
        """Apply ``time_steps`` steps starting from ``initial``."""
        current = initial.astype(self.dtype, copy=True)
        for _ in range(time_steps):
            current = self.step(current)
        return current


def run_reference(
    pattern: StencilPattern, grid: GridSpec, initial: np.ndarray | None = None, seed: int = 0
) -> np.ndarray:
    """Run the reference executor over ``grid.time_steps`` steps."""
    if initial is None:
        initial = make_initial_grid(pattern, grid, seed)
    return ReferenceExecutor(pattern).run(initial, grid.time_steps)


def max_relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum relative difference between two grids (used by verify())."""
    denom = np.maximum(np.abs(a), np.abs(b))
    denom = np.where(denom == 0, 1.0, denom)
    return float(np.max(np.abs(a - b) / denom))


def allclose_for_dtype(a: np.ndarray, b: np.ndarray, dtype: str) -> bool:
    """Floating-point comparison with a tolerance appropriate for the dtype.

    Temporal blocking re-associates sums, so results differ from the
    reference by accumulated rounding; the tolerance scales with the number
    of accumulated operations rather than demanding bit equality.
    """
    rtol = 1e-4 if dtype == "float" else 1e-9
    atol = 1e-5 if dtype == "float" else 1e-11
    return bool(np.allclose(a, b, rtol=rtol, atol=atol))
