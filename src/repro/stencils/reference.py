"""NumPy reference execution of stencil patterns.

The reference executor applies the stencil naively, one full time step at a
time, over the whole interior.  It is the correctness oracle for the
functional executor in :mod:`repro.sim.executor`, which runs the *blocked*
schedule (spatial blocks, halos, streaming, temporal blocking) and must
produce bit-compatible results up to floating-point reassociation.

Boundary handling follows the benchmarks: the grid carries a ring of
``radius`` boundary cells on every side whose values are held constant across
time steps (they are never updated, matching the ``1 .. I_S`` loop bounds of
the C sources).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ir.compile import (
    _CALL_NUMPY,
    _NUMPY_DTYPES,
    StencilKernel,
    compile_pattern,
    numpy_dtype,
)
from repro.ir.expr import BinOp, Call, Const, Expr, GridRead, UnaryOp
from repro.ir.stencil import GridSpec, StencilPattern


def make_initial_grid(pattern: StencilPattern, grid: GridSpec, seed: int = 0) -> np.ndarray:
    """A reproducible initial condition including the constant boundary ring."""
    rng = np.random.default_rng(seed)
    shape = grid.padded(pattern.radius)
    data = rng.uniform(0.1, 1.0, size=shape)
    return data.astype(numpy_dtype(pattern.dtype))


class ReferenceExecutor:
    """Evaluates a stencil pattern directly with NumPy array arithmetic.

    The expression is lowered once to a fused kernel
    (:func:`repro.ir.compile.compile_pattern`); time stepping double-buffers
    two preallocated grids instead of copying the source every step.
    """

    def __init__(self, pattern: StencilPattern, kernel: StencilKernel | None = None) -> None:
        self.pattern = pattern
        self.radius = pattern.radius
        self.dtype = numpy_dtype(pattern.dtype)
        self.kernel = kernel if kernel is not None else compile_pattern(pattern)

    # -- expression evaluation ---------------------------------------------
    def _interior_slice(self, shape: Tuple[int, ...], offset: Tuple[int, ...]) -> Tuple[slice, ...]:
        rad = self.radius
        return tuple(
            slice(rad + off, dim - rad + off) for dim, off in zip(shape, offset)
        )

    def _eval(self, expr: Expr, source: np.ndarray) -> np.ndarray:
        if isinstance(expr, Const):
            return np.asarray(expr.value, dtype=self.dtype)
        if isinstance(expr, GridRead):
            return source[self._interior_slice(source.shape, expr.offset)]
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs, source)
            rhs = self._eval(expr.rhs, source)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        if isinstance(expr, UnaryOp):
            return -self._eval(expr.operand, source)
        if isinstance(expr, Call):
            args = [self._eval(a, source) for a in expr.args]
            return _CALL_NUMPY[expr.name](*args)
        raise TypeError(f"unknown expression node {expr!r}")

    # -- stepping -----------------------------------------------------------
    def step(self, source: np.ndarray) -> np.ndarray:
        """Apply one time step, returning a new array (boundary copied)."""
        result = source.copy()
        interior = tuple(slice(self.radius, dim - self.radius) for dim in source.shape)
        self.kernel(source, interior, out=result[interior])
        return result

    def run(self, initial: np.ndarray, time_steps: int) -> np.ndarray:
        """Apply ``time_steps`` steps starting from ``initial``.

        Double-buffered: the boundary ring is constant across steps, so the
        two buffers swap roles instead of re-copying the grid every step.
        """
        current = initial.astype(self.dtype, copy=True)
        if time_steps <= 0:
            return current
        interior = tuple(slice(self.radius, dim - self.radius) for dim in current.shape)
        other = current.copy()
        for _ in range(time_steps):
            self.kernel(current, interior, out=other[interior])
            current, other = other, current
        return current


def run_reference(
    pattern: StencilPattern, grid: GridSpec, initial: np.ndarray | None = None, seed: int = 0
) -> np.ndarray:
    """Run the reference executor over ``grid.time_steps`` steps."""
    if initial is None:
        initial = make_initial_grid(pattern, grid, seed)
    return ReferenceExecutor(pattern).run(initial, grid.time_steps)


#: Chunk length for the streaming max_relative_error pass; bounds scratch
#: memory at a few hundred KiB regardless of grid size.
_ERROR_CHUNK = 1 << 16


def max_relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum relative difference between two grids (used by verify()).

    Streams over the arrays in fixed-size chunks with reused scratch buffers
    instead of materialising three full-size temporaries, and guards against
    NaN inputs: positions where exactly one side is NaN (or the relative
    error itself is NaN, e.g. inf vs inf of opposite sign) count as infinite
    error, while positions where both sides are NaN are treated as matching.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    flat_a = a.reshape(-1)
    flat_b = b.reshape(-1)
    size = flat_a.size
    chunk = min(_ERROR_CHUNK, max(size, 1))
    diff = np.empty(chunk, dtype=np.float64)
    denom = np.empty(chunk, dtype=np.float64)
    scratch = np.empty(chunk, dtype=np.float64)
    worst = 0.0
    for start in range(0, size, chunk):
        stop = min(start + chunk, size)
        n = stop - start
        x = flat_a[start:stop]
        y = flat_b[start:stop]
        d, m, s = diff[:n], denom[:n], scratch[:n]
        np.subtract(x, y, out=d, casting="unsafe")
        np.abs(d, out=d)
        np.abs(x, out=m, casting="unsafe")
        np.abs(y, out=s, casting="unsafe")
        np.maximum(m, s, out=m)
        np.copyto(m, 1.0, where=(m == 0))
        np.divide(d, m, out=d)
        if np.isnan(d).any():
            both_nan = np.isnan(x) & np.isnan(y)
            np.copyto(d, 0.0, where=both_nan)
            np.copyto(d, np.inf, where=np.isnan(d))
        peak = float(np.max(d)) if n else 0.0
        if peak > worst:
            worst = peak
    return worst


def allclose_for_dtype(a: np.ndarray, b: np.ndarray, dtype: str) -> bool:
    """Floating-point comparison with a tolerance appropriate for the dtype.

    Temporal blocking re-associates sums, so results differ from the
    reference by accumulated rounding; the tolerance scales with the number
    of accumulated operations rather than demanding bit equality.
    """
    rtol = 1e-4 if dtype == "float" else 1e-9
    atol = 1e-5 if dtype == "float" else 1e-11
    return bool(np.allclose(a, b, rtol=rtol, atol=atol))
