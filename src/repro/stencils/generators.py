"""Synthetic stencil generators.

The star*/box* rows of Table 3, plus the scenario-diversity families that
grow the workload set beyond the paper's fixed benchmark table: anisotropic
stars (per-axis radii), variable-coefficient stars (seeded per-offset
coefficient tables), multi-statement FDTD-style acoustic-wave updates, and
the seeded random-stencil generator behind the ``fuzz`` job kind.

Each generator produces both an IR-level :class:`StencilPattern` (built
directly) and the corresponding C source text (so the same stencils also
exercise the frontend).  Coefficients are deterministic functions of the
offset — or of a named seed — which keeps generated code, IR and NumPy
references consistent: the same name always denotes the same program.
"""

from __future__ import annotations

import itertools
import math
import random
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ir.expr import BinOp, Const, Expr, GridRead
from repro.ir.stencil import StencilPattern

_LOOP_VARS = ("i", "j", "k")

#: One ``(offset, coefficient)`` product of a sum-of-products stencil.
Term = Tuple[Tuple[int, ...], float]

#: Historical raw weights at or above this threshold are kept verbatim (the
#: small-radius Table 3 coefficients stay bit-stable); weights below it —
#: which the old formula let reach zero and below — are remapped onto a
#: strictly positive ramp.  The historical formula only produces weights that
#: are multiples of 0.1 (to 6 decimals), so 0.05 cleanly separates "was
#: already positive" (>= ~0.1) from "was zero or negative".
_MIN_RAW_WEIGHT = 0.05


def _coefficient(offset: Tuple[int, ...]) -> float:
    """Deterministic, strictly positive raw weight for one offset.

    Historically this was ``1 + 0.1 * <offset, (1, 2, 3)>``, which crosses
    zero at larger radii: ``box3d8r`` ended up with 88 exactly-zero
    coefficients (dead ``0.0f * A[...]`` terms in the generated C) and a
    signed sum of ~0.59 after "normalisation".  Weights below
    :data:`_MIN_RAW_WEIGHT` now fold onto the ramp ``0.05 / (1 + |w|)``,
    which is strictly positive, strictly decreasing in ``|w|`` (distinct
    offsets keep distinct weights) and bounded away from zero for every
    radius in [1, 8].
    """
    weight = 1.0 + 0.1 * sum(index * (dim + 1) for dim, index in enumerate(offset))
    if weight < _MIN_RAW_WEIGHT:
        weight = _MIN_RAW_WEIGHT / (1.0 + abs(weight))
    return round(weight, 6)


def _anchor_index(offsets: Sequence[Tuple[int, ...]], raw: Sequence[float]) -> int:
    """Index of the centre offset (fallback: the largest raw weight)."""
    centre = (0,) * len(offsets[0])
    for index, offset in enumerate(offsets):
        if offset == centre:
            return index
    return max(range(len(raw)), key=raw.__getitem__)


def _exact_unit_sum(raw: Sequence[float], anchor: int) -> List[float]:
    """Scale positive weights so their signed sum is 1.0 to within 5e-10.

    The scale factor is the builtin ``sum`` in offset order — bit-identical
    to the historical normalisation for the families whose sum already came
    out exact.  Each scaled term is rounded to 9 decimals so it survives the
    ``%.9g`` round trip through C source, and the residual those roundings
    leave is folded into the anchor (centre) coefficient, which is orders of
    magnitude larger than the residual, so no coefficient can reach zero.
    """
    total = sum(raw)
    coefficients = [round(value / total, 9) for value in raw]
    residual = 1.0 - math.fsum(coefficients)
    coefficients[anchor] = round(coefficients[anchor] + residual, 9)
    return coefficients


def normalised_terms(offsets: List[Tuple[int, ...]]) -> List[Term]:
    """The ``(offset, coefficient)`` terms of a formula-weighted stencil.

    Shared by the IR builders and the C emitters, so the model and the
    generated source can never disagree about a coefficient.
    """
    raw = [_coefficient(offset) for offset in offsets]
    return list(zip(offsets, _exact_unit_sum(raw, _anchor_index(offsets, raw))))


def variable_coefficients(offsets: Sequence[Tuple[int, ...]], seed: int) -> List[float]:
    """Seeded per-offset coefficient table (the "variable-coefficient" family).

    Draws uniform weights in [0.1, 2.0] from a generator keyed on the seed
    and the stencil size, then renormalises them to an exact unit sum — the
    same invariant the formula-weighted families guarantee.
    """
    rng = random.Random(f"an5d-vstar:{seed}:{len(offsets)}")
    raw = [round(rng.uniform(0.1, 2.0), 6) for _ in offsets]
    return _exact_unit_sum(raw, _anchor_index(offsets, raw))


def expr_for_terms(terms: Sequence[Term], array: str = "A") -> Expr:
    """The left-associated sum of ``coefficient * read`` products."""
    expr: Optional[Expr] = None
    for offset, coefficient in terms:
        product = BinOp("*", Const(coefficient), GridRead(array, tuple(offset)))
        expr = product if expr is None else BinOp("+", expr, product)
    if expr is None:
        raise ValueError("a stencil needs at least one term")
    return expr


def star_offsets(ndim: int, radius: int) -> List[Tuple[int, ...]]:
    """Offsets of a star stencil: centre plus axis-aligned neighbours."""
    return anisotropic_star_offsets((radius,) * ndim)


def box_offsets(ndim: int, radius: int) -> List[Tuple[int, ...]]:
    """Offsets of a box stencil: the full ``(2*radius + 1)^ndim`` cube."""
    return sorted(itertools.product(range(-radius, radius + 1), repeat=ndim))


def anisotropic_star_offsets(radii: Sequence[int]) -> List[Tuple[int, ...]]:
    """Star offsets with a per-axis radius (``radii[d]`` along axis ``d``)."""
    ndim = len(radii)
    offsets = [tuple([0] * ndim)]
    for dim, radius in enumerate(radii):
        for distance in range(1, radius + 1):
            for sign in (-1, 1):
                offset = [0] * ndim
                offset[dim] = sign * distance
                offsets.append(tuple(offset))
    return sorted(offsets)


def star_stencil(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> StencilPattern:
    """Build a synthetic star stencil pattern (``star{ndim}d{radius}r``)."""
    _validate(ndim, radius)
    expr = expr_for_terms(normalised_terms(star_offsets(ndim, radius)), array)
    return StencilPattern(
        name=f"star{ndim}d{radius}r", ndim=ndim, expr=expr, dtype=dtype, array=array
    )


def box_stencil(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> StencilPattern:
    """Build a synthetic box stencil pattern (``box{ndim}d{radius}r``)."""
    _validate(ndim, radius)
    expr = expr_for_terms(normalised_terms(box_offsets(ndim, radius)), array)
    return StencilPattern(
        name=f"box{ndim}d{radius}r", ndim=ndim, expr=expr, dtype=dtype, array=array
    )


def anisotropic_name(radii: Sequence[int]) -> str:
    return f"astar{len(radii)}d{'x'.join(str(radius) for radius in radii)}r"


def anisotropic_star_stencil(
    radii: Sequence[int], dtype: str = "float", array: str = "A", name: Optional[str] = None
) -> StencilPattern:
    """Build an anisotropic star stencil (``astar{n}d{r1}x{r2}[x{r3}]r``)."""
    radii = tuple(int(radius) for radius in radii)
    _validate_radii(radii)
    expr = expr_for_terms(normalised_terms(anisotropic_star_offsets(radii)), array)
    return StencilPattern(
        name=name or anisotropic_name(radii), ndim=len(radii), expr=expr, dtype=dtype, array=array
    )


def variable_star_stencil(
    ndim: int,
    radius: int,
    seed: int,
    dtype: str = "float",
    array: str = "A",
    name: Optional[str] = None,
) -> StencilPattern:
    """Build a variable-coefficient star stencil (``vstar{n}d{r}r-s{seed}``)."""
    _validate(ndim, radius)
    offsets = star_offsets(ndim, radius)
    terms = list(zip(offsets, variable_coefficients(offsets, seed)))
    return StencilPattern(
        name=name or f"vstar{ndim}d{radius}r-s{seed}",
        ndim=ndim,
        expr=expr_for_terms(terms, array),
        dtype=dtype,
        array=array,
    )


def _validate(ndim: int, radius: int) -> None:
    if ndim not in (2, 3):
        raise ValueError("synthetic stencils are 2D or 3D")
    if not 1 <= radius <= 8:
        raise ValueError("radius must lie in [1, 8]")


def _validate_radii(radii: Sequence[int]) -> None:
    if len(radii) not in (2, 3):
        raise ValueError("synthetic stencils are 2D or 3D")
    if any(not 1 <= radius <= 8 for radius in radii):
        raise ValueError("every radius must lie in [1, 8]")


# ---------------------------------------------------------------------------
# FDTD-style multi-statement stencils
# ---------------------------------------------------------------------------

#: Per-axis Laplacian couplings of the acoustic-wave updates.  Their sum must
#: stay below 0.5 (the explicit-Euler stability bound for ``u += w * lap u``)
#: so the iteration remains bounded over the functional tests' time steps.
_FDTD_WEIGHTS = {2: (0.19, 0.23), 3: (0.11, 0.13, 0.17)}


def _axis_offset(axis: int, ndim: int, sign: int) -> Tuple[int, ...]:
    return tuple(sign if dim == axis else 0 for dim in range(ndim))


def _laplacian_expr(axis: int, ndim: int, array: str) -> Expr:
    """``A[-1] - 2*A[0] + A[+1]`` along one axis, left-associated like the
    parse of the emitted C."""
    centre = GridRead(array, (0,) * ndim)
    minus = GridRead(array, _axis_offset(axis, ndim, -1))
    plus = GridRead(array, _axis_offset(axis, ndim, 1))
    return BinOp("+", BinOp("-", minus, BinOp("*", Const(2.0), centre)), plus)


def _fdtd_weights(ndim: int, weights: Optional[Sequence[float]]) -> Tuple[float, ...]:
    if ndim not in (2, 3):
        raise ValueError("synthetic stencils are 2D or 3D")
    resolved = tuple(round(float(w), 6) for w in (weights or _FDTD_WEIGHTS[ndim]))
    if len(resolved) != ndim:
        raise ValueError(f"expected {ndim} Laplacian weights, got {len(resolved)}")
    if any(w <= 0 for w in resolved) or sum(resolved) >= 0.5:
        raise ValueError("Laplacian weights must be positive and sum below 0.5")
    return resolved


def fdtd_stencil(
    ndim: int,
    dtype: str = "float",
    array: str = "A",
    weights: Optional[Sequence[float]] = None,
    name: Optional[str] = None,
) -> StencilPattern:
    """Build an FDTD-style acoustic-wave update (``fdtd{ndim}d``).

    The update ``u' = u + sum_d w_d * lap_d(u)`` is what the multi-statement
    C form expresses with one declared temporary per axis; the IR here is the
    fully inlined expression, matching what the frontend produces for the
    corresponding source.
    """
    resolved = _fdtd_weights(ndim, weights)
    expr: Expr = GridRead(array, (0,) * ndim)
    for axis, weight in enumerate(resolved):
        expr = BinOp("+", expr, BinOp("*", Const(weight), _laplacian_expr(axis, ndim, array)))
    return StencilPattern(
        name=name or f"fdtd{ndim}d", ndim=ndim, expr=expr, dtype=dtype, array=array
    )


# ---------------------------------------------------------------------------
# C source generation
# ---------------------------------------------------------------------------


def _offset_subscript(var: str, offset: int) -> str:
    if offset == 0:
        return var
    sign = "+" if offset > 0 else "-"
    return f"{var}{sign}{abs(offset)}"


def _literal(value: float, dtype: str) -> str:
    text = f"{value:.9g}"
    if "." not in text and "e" not in text:
        text += ".0"
    return text + ("f" if dtype == "float" else "")


def _loop_header(ndim: int) -> List[str]:
    spatial_vars = _LOOP_VARS[:ndim]
    loops = ["for (t = 0; t < I_T; t++)"]
    for dim, var in enumerate(spatial_vars):
        loops.append(f"{'  ' * (dim + 1)}for ({var} = 1; {var} <= I_S{ndim - dim}; {var}++)")
    return loops


def source_for_terms(
    terms: Sequence[Term], ndim: int, dtype: str = "float", array: str = "A"
) -> str:
    """Emit the canonical double-buffered C loop nest for a term list."""
    spatial_vars = _LOOP_VARS[:ndim]
    parts = []
    for offset, coefficient in terms:
        subscripts = "".join(
            f"[{_offset_subscript(var, component)}]" for var, component in zip(spatial_vars, offset)
        )
        parts.append(f"{_literal(coefficient, dtype)} * {array}[t%2]{subscripts}")
    body = "\n        + ".join(parts)
    lhs_subscripts = "".join(f"[{var}]" for var in spatial_vars)
    indent = "  " * (ndim + 1)
    statement = f"{indent}{array}[(t+1)%2]{lhs_subscripts} = ({body});"
    return "\n".join(_loop_header(ndim) + [statement]) + "\n"


def star_stencil_source(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> str:
    """C source of a synthetic star stencil (accepted by the frontend)."""
    _validate(ndim, radius)
    return source_for_terms(normalised_terms(star_offsets(ndim, radius)), ndim, dtype, array)


def box_stencil_source(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> str:
    """C source of a synthetic box stencil (accepted by the frontend)."""
    _validate(ndim, radius)
    return source_for_terms(normalised_terms(box_offsets(ndim, radius)), ndim, dtype, array)


def anisotropic_star_stencil_source(
    radii: Sequence[int], dtype: str = "float", array: str = "A"
) -> str:
    """C source of an anisotropic star stencil."""
    radii = tuple(int(radius) for radius in radii)
    _validate_radii(radii)
    terms = normalised_terms(anisotropic_star_offsets(radii))
    return source_for_terms(terms, len(radii), dtype, array)


def variable_star_stencil_source(
    ndim: int, radius: int, seed: int, dtype: str = "float", array: str = "A"
) -> str:
    """C source of a variable-coefficient star stencil."""
    _validate(ndim, radius)
    offsets = star_offsets(ndim, radius)
    terms = list(zip(offsets, variable_coefficients(offsets, seed)))
    return source_for_terms(terms, ndim, dtype, array)


def fdtd_stencil_source(
    ndim: int,
    dtype: str = "float",
    array: str = "A",
    weights: Optional[Sequence[float]] = None,
) -> str:
    """C source of the FDTD-style update — the multi-statement input form.

    One declared scalar temporary per axis holds that axis' Laplacian; the
    assignment combines them.  The frontend inlines the temporaries, so the
    detected IR is bit-equal to :func:`fdtd_stencil`.
    """
    resolved = _fdtd_weights(ndim, weights)
    spatial_vars = _LOOP_VARS[:ndim]
    ctype = "float" if dtype == "float" else "double"

    def access(offset: Tuple[int, ...]) -> str:
        subscripts = "".join(
            f"[{_offset_subscript(var, component)}]" for var, component in zip(spatial_vars, offset)
        )
        return f"{array}[t%2]{subscripts}"

    centre = (0,) * ndim
    indent = "  " * (ndim + 1)
    body = [f"{indent}{{"]
    for axis in range(ndim):
        body.append(
            f"{indent}  {ctype} lap{axis} = {access(_axis_offset(axis, ndim, -1))}"
            f" - {_literal(2.0, dtype)} * {access(centre)}"
            f" + {access(_axis_offset(axis, ndim, 1))};"
        )
    rhs = access(centre)
    for axis, weight in enumerate(resolved):
        rhs += f" + {_literal(weight, dtype)} * lap{axis}"
    lhs = f"{array}[(t+1)%2]" + "".join(f"[{var}]" for var in spatial_vars)
    body.append(f"{indent}  {lhs} = {rhs};")
    body.append(f"{indent}}}")
    return "\n".join(_loop_header(ndim) + body) + "\n"


# ---------------------------------------------------------------------------
# Seeded random stencils (the fuzz family)
# ---------------------------------------------------------------------------

_FUZZ_FAMILIES = ("star", "box", "astar", "vstar", "fdtd")

_FUZZ_NAME = re.compile(r"fuzz-(\d+)-(\d+)")


def fuzz_name(seed: int, index: int) -> str:
    return f"fuzz-{seed}-{index}"


def parse_fuzz_name(name: str) -> Optional[Tuple[int, int]]:
    """The ``(seed, index)`` of a ``fuzz-{seed}-{index}`` name, else None."""
    match = _FUZZ_NAME.fullmatch(name)
    return (int(match.group(1)), int(match.group(2))) if match else None


@dataclass(frozen=True)
class FuzzStencil:
    """One seeded random stencil; the name fully determines the program."""

    name: str
    seed: int
    index: int
    family: str
    ndim: int
    radii: Tuple[int, ...]
    dtype: str
    terms: Tuple[Term, ...] = ()
    weights: Tuple[float, ...] = ()

    @property
    def radius(self) -> int:
        return max(self.radii)

    def build_pattern(self, dtype: Optional[str] = None) -> StencilPattern:
        """The directly-built IR (no frontend) of this stencil."""
        dtype = dtype or self.dtype
        if self.family == "fdtd":
            return fdtd_stencil(self.ndim, dtype=dtype, weights=self.weights, name=self.name)
        return StencilPattern(
            name=self.name,
            ndim=self.ndim,
            expr=expr_for_terms(self.terms),
            dtype=dtype,
        )

    @property
    def source(self) -> str:
        if self.family == "fdtd":
            return fdtd_stencil_source(self.ndim, dtype=self.dtype, weights=self.weights)
        return source_for_terms(self.terms, self.ndim, self.dtype)

    def describe(self) -> str:
        radii = "x".join(str(radius) for radius in self.radii)
        return f"seeded {self.family} {self.ndim}D stencil (radii {radii}, {self.dtype})"


def fuzz_stencil(seed: int, index: int) -> FuzzStencil:
    """Draw one reproducible random stencil from a named seed.

    Every choice — dimensionality, family, radii, dtype, coefficients —
    comes from a ``random.Random`` keyed on ``(seed, index)``, so
    ``fuzz-7-3`` names the same program on every machine and every run.
    Radii are capped so the differential checks (which execute the stencil
    functionally on the verify grids) stay fast.
    """
    rng = random.Random(f"an5d-fuzz:{seed}:{index}")
    ndim = rng.choice((2, 3))
    family = rng.choice(_FUZZ_FAMILIES)
    dtype = rng.choice(("float", "double"))
    name = fuzz_name(seed, index)
    if family == "fdtd":
        bound = 0.5 / ndim
        weights = tuple(round(rng.uniform(0.2 * bound, 0.9 * bound), 6) for _ in range(ndim))
        return FuzzStencil(name, seed, index, family, ndim, (1,) * ndim, dtype, weights=weights)
    if family == "star":
        radius = rng.randint(1, 3 if ndim == 3 else 4)
        radii = (radius,) * ndim
        terms = tuple(normalised_terms(star_offsets(ndim, radius)))
    elif family == "box":
        radius = rng.randint(1, 2 if ndim == 3 else 3)
        radii = (radius,) * ndim
        terms = tuple(normalised_terms(box_offsets(ndim, radius)))
    elif family == "astar":
        radii = tuple(rng.randint(1, 3) for _ in range(ndim))
        terms = tuple(normalised_terms(anisotropic_star_offsets(radii)))
    else:  # vstar
        radius = rng.randint(1, 2 if ndim == 3 else 3)
        radii = (radius,) * ndim
        offsets = star_offsets(ndim, radius)
        terms = tuple(zip(offsets, variable_coefficients(offsets, rng.randint(0, 10**6))))
    return FuzzStencil(name, seed, index, family, ndim, radii, dtype, terms=terms)
