"""Synthetic star/box stencil generators (the star*/box* rows of Table 3).

Each generator produces both an IR-level :class:`StencilPattern` (built
directly) and the corresponding C source text (so the same stencils also
exercise the frontend).  Coefficients are deterministic functions of the
offset, which keeps generated code, IR and NumPy references consistent.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Tuple

from repro.ir.expr import BinOp, Const, Expr, GridRead
from repro.ir.stencil import StencilPattern

_LOOP_VARS = ("i", "j", "k")


def _coefficient(offset: Tuple[int, ...]) -> float:
    """Deterministic per-offset coefficient.

    The values are scaled so that coefficients sum to roughly 1, keeping the
    iteration numerically stable over the hundreds of time steps used by the
    functional correctness tests.
    """
    weight = 1.0 + 0.1 * sum(index * (dim + 1) for dim, index in enumerate(offset))
    return round(weight, 6)


def _normalised_terms(offsets: List[Tuple[int, ...]], array: str) -> Expr:
    total = sum(abs(_coefficient(o)) for o in offsets)
    terms = [
        BinOp("*", Const(round(_coefficient(o) / total, 9)), GridRead(array, o)) for o in offsets
    ]
    expr = terms[0]
    for term in terms[1:]:
        expr = BinOp("+", expr, term)
    return expr


def star_offsets(ndim: int, radius: int) -> List[Tuple[int, ...]]:
    """Offsets of a star stencil: centre plus axis-aligned neighbours."""
    offsets = [tuple([0] * ndim)]
    for dim in range(ndim):
        for distance in range(1, radius + 1):
            for sign in (-1, 1):
                offset = [0] * ndim
                offset[dim] = sign * distance
                offsets.append(tuple(offset))
    return sorted(offsets)


def box_offsets(ndim: int, radius: int) -> List[Tuple[int, ...]]:
    """Offsets of a box stencil: the full ``(2*radius + 1)^ndim`` cube."""
    return sorted(itertools.product(range(-radius, radius + 1), repeat=ndim))


def star_stencil(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> StencilPattern:
    """Build a synthetic star stencil pattern (``star{ndim}d{radius}r``)."""
    _validate(ndim, radius)
    expr = _normalised_terms(star_offsets(ndim, radius), array)
    return StencilPattern(
        name=f"star{ndim}d{radius}r", ndim=ndim, expr=expr, dtype=dtype, array=array
    )


def box_stencil(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> StencilPattern:
    """Build a synthetic box stencil pattern (``box{ndim}d{radius}r``)."""
    _validate(ndim, radius)
    expr = _normalised_terms(box_offsets(ndim, radius), array)
    return StencilPattern(
        name=f"box{ndim}d{radius}r", ndim=ndim, expr=expr, dtype=dtype, array=array
    )


def _validate(ndim: int, radius: int) -> None:
    if ndim not in (2, 3):
        raise ValueError("synthetic stencils are 2D or 3D")
    if not 1 <= radius <= 8:
        raise ValueError("radius must lie in [1, 8]")


# ---------------------------------------------------------------------------
# C source generation
# ---------------------------------------------------------------------------


def _offset_subscript(var: str, offset: int) -> str:
    if offset == 0:
        return var
    sign = "+" if offset > 0 else "-"
    return f"{var}{sign}{abs(offset)}"


def _literal(value: float, dtype: str) -> str:
    text = f"{value:.9g}"
    if "." not in text and "e" not in text:
        text += ".0"
    return text + ("f" if dtype == "float" else "")


def _source_for_offsets(
    offsets: Iterable[Tuple[int, ...]], ndim: int, dtype: str, array: str
) -> str:
    """Emit the canonical double-buffered C loop nest for an offset set."""
    offsets = list(offsets)
    spatial_vars = _LOOP_VARS[:ndim]
    total = sum(abs(_coefficient(o)) for o in offsets)
    terms = []
    for offset in offsets:
        coefficient = round(_coefficient(offset) / total, 9)
        subscripts = "".join(
            f"[{_offset_subscript(var, component)}]" for var, component in zip(spatial_vars, offset)
        )
        terms.append(f"{_literal(coefficient, dtype)} * {array}[t%2]{subscripts}")
    body = "\n        + ".join(terms)
    lhs_subscripts = "".join(f"[{var}]" for var in spatial_vars)
    loops = ["for (t = 0; t < I_T; t++)"]
    for dim, var in enumerate(spatial_vars):
        loops.append(f"{'  ' * (dim + 1)}for ({var} = 1; {var} <= I_S{ndim - dim}; {var}++)")
    indent = "  " * (ndim + 1)
    statement = f"{indent}{array}[(t+1)%2]{lhs_subscripts} = ({body});"
    return "\n".join(loops + [statement]) + "\n"


def star_stencil_source(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> str:
    """C source of a synthetic star stencil (accepted by the frontend)."""
    _validate(ndim, radius)
    return _source_for_offsets(star_offsets(ndim, radius), ndim, dtype, array)


def box_stencil_source(ndim: int, radius: int, dtype: str = "float", array: str = "A") -> str:
    """C source of a synthetic box stencil (accepted by the frontend)."""
    _validate(ndim, radius)
    return _source_for_offsets(box_offsets(ndim, radius), ndim, dtype, array)
