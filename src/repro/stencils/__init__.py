"""Benchmark stencils (Table 3) and reference execution.

* :mod:`repro.stencils.generators` — programmatic construction of synthetic
  star/box stencils of arbitrary order plus C source generation,
* :mod:`repro.stencils.library` — the paper's 21 named benchmarks,
* :mod:`repro.stencils.reference` — straightforward NumPy execution used as
  the correctness oracle.
"""

from repro.stencils.generators import (
    box_stencil,
    box_stencil_source,
    star_stencil,
    star_stencil_source,
)
from repro.stencils.library import (
    BENCHMARKS,
    BenchmarkStencil,
    benchmark_names,
    figure6_benchmarks,
    get_benchmark,
    load_pattern,
)
from repro.stencils.reference import ReferenceExecutor, make_initial_grid, run_reference

__all__ = [
    "BENCHMARKS",
    "BenchmarkStencil",
    "ReferenceExecutor",
    "benchmark_names",
    "box_stencil",
    "box_stencil_source",
    "figure6_benchmarks",
    "get_benchmark",
    "load_pattern",
    "make_initial_grid",
    "run_reference",
    "star_stencil",
    "star_stencil_source",
]
