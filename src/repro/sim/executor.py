"""Functional execution of the N.5D blocked schedule.

This executor applies the stencil exactly the way the generated CUDA code
does at the tile level: the grid is covered by overlapping spatial blocks
(and, when the streaming dimension is divided, overlapping stream blocks);
each block loads its compute region plus a ``bT * rad`` halo, performs ``bT``
time steps locally (computing redundantly in the halo), and writes back only
the compute region.  Wrong values propagate inward from the cut edges at one
radius per time step — which is precisely why the halo width guarantees the
compute region stays correct.

Matching the generated host code (Section 4.3.1), a run of ``I_T`` time steps
is split into launches of ``bT`` steps with a shorter final launch when
``I_T`` is not a multiple of ``bT``.

The executor exists to *verify* the transformation, not to be fast; it is the
correctness oracle the test-suite and the examples rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel
from repro.ir.stencil import GridSpec, StencilPattern
from repro.stencils.reference import (
    ReferenceExecutor,
    allclose_for_dtype,
    make_initial_grid,
    max_relative_error,
    numpy_dtype,
    run_reference,
)


@dataclass(frozen=True)
class TileExtent:
    """One tile of the blocked iteration space, in padded-array coordinates.

    ``load`` is the half-open range of cells read into on-chip memory,
    ``store`` the half-open range written back (the compute region clipped to
    the grid interior).
    """

    load: Tuple[Tuple[int, int], ...]
    store: Tuple[Tuple[int, int], ...]


class BlockedStencilExecutor:
    """Runs a stencil with AN5D's overlapped space/time blocking on NumPy."""

    def __init__(self, pattern: StencilPattern, grid: GridSpec, config: BlockingConfig) -> None:
        config.validate(pattern)
        self.pattern = pattern
        self.grid = grid
        self.config = config
        self.radius = pattern.radius
        self.model = ExecutionModel(pattern, grid, config)
        self.reference = ReferenceExecutor(pattern)
        self.dtype = numpy_dtype(pattern.dtype)

    # -- tiling ----------------------------------------------------------------
    def _dim_tiles(self, extent: int, compute: int, halo: int) -> List[Tuple[int, int, int, int]]:
        """Per-dimension (load_start, load_end, store_start, store_end) in
        interior coordinates."""
        tiles = []
        start = 0
        while start < extent:
            stop = min(start + compute, extent)
            tiles.append((start - halo, stop + halo, start, stop))
            start = stop
        return tiles

    def tiles(self, time_block: int) -> Iterator[TileExtent]:
        """Enumerate the tiles of one launch combining ``time_block`` steps."""
        rad = self.radius
        halo = time_block * rad
        padded = self.grid.padded(rad)

        per_dim: List[List[Tuple[int, int, int, int]]] = []
        # Streaming dimension (dimension 0): divided only when hS is set.
        stream_extent = self.grid.interior[0]
        if self.config.hS is None:
            per_dim.append([(0 - halo, stream_extent + halo, 0, stream_extent)])
        else:
            per_dim.append(self._dim_tiles(stream_extent, self.config.hS, halo))
        # Blocked dimensions.
        for extent, compute in zip(self.grid.interior[1:], self.model.compute_sizes):
            per_dim.append(self._dim_tiles(extent, compute, halo))

        def clip(load_start: int, load_end: int, dim: int) -> Tuple[int, int]:
            # Convert interior coords to padded coords (+rad) and clip.
            lo = max(load_start + rad, 0)
            hi = min(load_end + rad, padded[dim])
            return lo, hi

        def recurse(dim: int, loads: List[Tuple[int, int]], stores: List[Tuple[int, int]]):
            if dim == len(per_dim):
                yield TileExtent(tuple(loads), tuple(stores))
                return
            for load_start, load_end, store_start, store_end in per_dim[dim]:
                load = clip(load_start, load_end, dim)
                store = (store_start + rad, store_end + rad)
                yield from recurse(dim + 1, loads + [load], stores + [store])

        yield from recurse(0, [], [])

    # -- execution -----------------------------------------------------------------
    def _run_tile(self, source: np.ndarray, tile: TileExtent, time_block: int) -> np.ndarray:
        """Compute ``time_block`` steps of one tile; return the stored region."""
        rad = self.radius
        load_slices = tuple(slice(lo, hi) for lo, hi in tile.load)
        local = source[load_slices].astype(self.dtype, copy=True)

        # Which local cells correspond to grid-interior (updatable) cells.
        interior_mask_slices = []
        for (lo, hi), dim_size in zip(tile.load, source.shape):
            interior_lo = max(lo, rad)
            interior_hi = min(hi, dim_size - rad)
            interior_mask_slices.append((interior_lo - lo, interior_hi - lo))

        for _ in range(time_block):
            updated = local.copy()
            # Update every interior cell that has a full neighbourhood inside
            # the local tile; halo cells near cut edges become stale, which is
            # harmless because they are never stored.
            region = tuple(
                slice(max(lo, rad), min(hi, local.shape[d] - rad))
                for d, (lo, hi) in enumerate(interior_mask_slices)
            )
            if any(s.start >= s.stop for s in region):
                break
            shifted_region = self._evaluate_region(local, region)
            updated[region] = shifted_region
            local = updated

        store_slices_local = tuple(
            slice(store_lo - load_lo, store_hi - load_lo)
            for (store_lo, store_hi), (load_lo, _) in zip(tile.store, tile.load)
        )
        return local[store_slices_local]

    def _evaluate_region(self, local: np.ndarray, region: Tuple[slice, ...]) -> np.ndarray:
        """Evaluate the stencil expression over an arbitrary region of a tile."""
        from repro.ir.expr import BinOp, Call, Const, GridRead, UnaryOp
        from repro.stencils.reference import _CALL_NUMPY  # noqa: WPS450 (shared impl)

        def shifted(offset: Tuple[int, ...]) -> np.ndarray:
            slices = tuple(
                slice(s.start + off, s.stop + off) for s, off in zip(region, offset)
            )
            return local[slices]

        def evaluate(expr) -> np.ndarray:
            if isinstance(expr, Const):
                return np.asarray(expr.value, dtype=self.dtype)
            if isinstance(expr, GridRead):
                return shifted(expr.offset)
            if isinstance(expr, BinOp):
                lhs, rhs = evaluate(expr.lhs), evaluate(expr.rhs)
                if expr.op == "+":
                    return lhs + rhs
                if expr.op == "-":
                    return lhs - rhs
                if expr.op == "*":
                    return lhs * rhs
                return lhs / rhs
            if isinstance(expr, UnaryOp):
                return -evaluate(expr.operand)
            if isinstance(expr, Call):
                return _CALL_NUMPY[expr.name](*[evaluate(a) for a in expr.args])
            raise TypeError(f"unknown expression node {expr!r}")

        return evaluate(self.pattern.expr).astype(self.dtype)

    def launch(self, source: np.ndarray, time_block: int) -> np.ndarray:
        """One kernel launch: ``time_block`` combined steps over the grid."""
        destination = source.copy()
        for tile in self.tiles(time_block):
            result = self._run_tile(source, tile, time_block)
            store_slices = tuple(slice(lo, hi) for lo, hi in tile.store)
            destination[store_slices] = result
        return destination

    def launch_schedule(self, total_steps: int) -> List[int]:
        """Split ``total_steps`` into per-launch step counts (host-code logic)."""
        schedule: List[int] = []
        remaining = total_steps
        while remaining > 0:
            step = min(self.config.bT, remaining)
            schedule.append(step)
            remaining -= step
        return schedule

    def run(self, initial: np.ndarray, time_steps: int | None = None) -> np.ndarray:
        """Run the full blocked computation."""
        steps = self.grid.time_steps if time_steps is None else time_steps
        current = initial.astype(self.dtype, copy=True)
        for launch_steps in self.launch_schedule(steps):
            current = self.launch(current, launch_steps)
        return current


def run_blocked(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    initial: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Convenience wrapper: run the blocked executor from a seeded grid."""
    if initial is None:
        initial = make_initial_grid(pattern, grid, seed)
    return BlockedStencilExecutor(pattern, grid, config).run(initial)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of checking the blocked schedule against the reference."""

    matches: bool
    max_relative_error: float

    def __bool__(self) -> bool:
        return self.matches


def verify_blocking(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    seed: int = 0,
) -> VerificationResult:
    """Run both executors from the same initial grid and compare."""
    initial = make_initial_grid(pattern, grid, seed)
    blocked = BlockedStencilExecutor(pattern, grid, config).run(initial)
    reference = run_reference(pattern, grid, initial=initial.copy())
    return VerificationResult(
        matches=allclose_for_dtype(blocked, reference, pattern.dtype),
        max_relative_error=max_relative_error(blocked, reference),
    )
