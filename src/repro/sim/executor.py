"""Functional execution of the N.5D blocked schedule.

This executor applies the stencil exactly the way the generated CUDA code
does at the tile level: the grid is covered by overlapping spatial blocks
(and, when the streaming dimension is divided, overlapping stream blocks);
each block loads its compute region plus a ``bT * rad`` halo, performs ``bT``
time steps locally (computing redundantly in the halo), and writes back only
the compute region.  Wrong values propagate inward from the cut edges at one
radius per time step — which is precisely why the halo width guarantees the
compute region stays correct.

Matching the generated host code (Section 4.3.1), a run of ``I_T`` time steps
is split into launches of ``bT`` steps with a shorter final launch when
``I_T`` is not a multiple of ``bT``.

The executor exists to *verify* the transformation, not to be fast; it is the
correctness oracle the test-suite and the examples rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel
from repro.ir.compile import compile_pattern
from repro.ir.expr import GridRead, substitute
from repro.ir.stencil import GridSpec, StencilPattern
from repro.stencils.reference import (
    ReferenceExecutor,
    allclose_for_dtype,
    make_initial_grid,
    max_relative_error,
    numpy_dtype,
    run_reference,
)


#: Per-original-pattern cache of the stream-dimension-innermost variant used
#: by the executor's internal layout (see BlockedStencilExecutor).  Bounded:
#: on overflow the cache is dropped and rebuilt on demand.
_STREAM_LAST_PATTERNS: Dict[int, StencilPattern] = {}
_STREAM_LAST_PATTERNS_MAX = 1024


def _stream_last_pattern(pattern: StencilPattern) -> StencilPattern:
    """``pattern`` with grid-read offsets cycled so the streaming dimension
    (spatial dimension 0) comes last."""
    cached = _STREAM_LAST_PATTERNS.get(pattern.cache_key)
    if cached is None:
        mapping = {
            read: GridRead(read.array, read.offset[1:] + read.offset[:1], read.time_offset)
            for read in pattern.reads
        }
        cached = replace(pattern, expr=substitute(pattern.expr, mapping))
        if len(_STREAM_LAST_PATTERNS) >= _STREAM_LAST_PATTERNS_MAX:
            _STREAM_LAST_PATTERNS.clear()
        _STREAM_LAST_PATTERNS[pattern.cache_key] = cached
    return cached


@dataclass(frozen=True)
class TileExtent:
    """One tile of the blocked iteration space, in padded-array coordinates.

    ``load`` is the half-open range of cells read into on-chip memory,
    ``store`` the half-open range written back (the compute region clipped to
    the grid interior).
    """

    load: Tuple[Tuple[int, int], ...]
    store: Tuple[Tuple[int, int], ...]


class BlockedStencilExecutor:
    """Runs a stencil with AN5D's overlapped space/time blocking on NumPy."""

    def __init__(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        config: BlockingConfig,
        kernel_mode: str = "auto",
    ) -> None:
        config.validate(pattern)
        self.pattern = pattern
        self.grid = grid
        self.config = config
        self.radius = pattern.radius
        self.model = ExecutionModel(pattern, grid, config)
        self.reference = ReferenceExecutor(pattern)
        self.dtype = numpy_dtype(pattern.dtype)
        # Internal layout: the streaming dimension is moved innermost.  The
        # dependency cone only ever shrinks the blocked dimensions, so with
        # the (full-length) streaming dimension last every ufunc in the
        # compiled kernel runs over long contiguous spans instead of the
        # short strided runs a shrinking innermost dimension would leave.
        ndim = pattern.ndim
        self._perm = tuple(range(1, ndim)) + (0,)
        self._inv_perm = (ndim - 1,) + tuple(range(ndim - 1))
        self.kernel = compile_pattern(_stream_last_pattern(pattern), mode=kernel_mode)
        # Tile lists are identical for every launch with the same time_block,
        # and tiles of equal load shape share one pair of local buffers.
        self._tile_lists: Dict[int, List[TileExtent]] = {}
        self._tile_buffers: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = {}

    # -- tiling ----------------------------------------------------------------
    def _dim_tiles(self, extent: int, compute: int, halo: int) -> List[Tuple[int, int, int, int]]:
        """Per-dimension (load_start, load_end, store_start, store_end) in
        interior coordinates."""
        tiles = []
        start = 0
        while start < extent:
            stop = min(start + compute, extent)
            tiles.append((start - halo, stop + halo, start, stop))
            start = stop
        return tiles

    def tiles(self, time_block: int) -> Iterator[TileExtent]:
        """Enumerate the tiles of one launch combining ``time_block`` steps."""
        rad = self.radius
        halo = time_block * rad
        padded = self.grid.padded(rad)

        per_dim: List[List[Tuple[int, int, int, int]]] = []
        # Streaming dimension (dimension 0): divided only when hS is set.
        stream_extent = self.grid.interior[0]
        if self.config.hS is None:
            per_dim.append([(0 - halo, stream_extent + halo, 0, stream_extent)])
        else:
            per_dim.append(self._dim_tiles(stream_extent, self.config.hS, halo))
        # Blocked dimensions.
        for extent, compute in zip(self.grid.interior[1:], self.model.compute_sizes):
            per_dim.append(self._dim_tiles(extent, compute, halo))

        def clip(load_start: int, load_end: int, dim: int) -> Tuple[int, int]:
            # Convert interior coords to padded coords (+rad) and clip.
            lo = max(load_start + rad, 0)
            hi = min(load_end + rad, padded[dim])
            return lo, hi

        def recurse(dim: int, loads: List[Tuple[int, int]], stores: List[Tuple[int, int]]):
            if dim == len(per_dim):
                yield TileExtent(tuple(loads), tuple(stores))
                return
            for load_start, load_end, store_start, store_end in per_dim[dim]:
                load = clip(load_start, load_end, dim)
                store = (store_start + rad, store_end + rad)
                yield from recurse(dim + 1, loads + [load], stores + [store])

        yield from recurse(0, [], [])

    def _tiles_internal(self, time_block: int) -> List[TileExtent]:
        """Tile list of one launch in internal (stream-last) coordinates,
        computed once per ``time_block``."""
        cached = self._tile_lists.get(time_block)
        if cached is None:
            perm = self._perm
            cached = [
                TileExtent(
                    load=tuple(tile.load[p] for p in perm),
                    store=tuple(tile.store[p] for p in perm),
                )
                for tile in self.tiles(time_block)
            ]
            self._tile_lists[time_block] = cached
        return cached

    # -- layout ---------------------------------------------------------------
    def _to_internal(self, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into the stream-last internal layout."""
        return np.ascontiguousarray(np.transpose(array, self._perm))

    def _from_internal(self, array: np.ndarray) -> np.ndarray:
        """Copy an internal-layout array back to the public layout."""
        return np.ascontiguousarray(np.transpose(array, self._inv_perm))

    # -- execution -----------------------------------------------------------------
    def _local_buffers(self, shape: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
        """The double-buffer pair for tiles of ``shape`` (reused across
        tiles, launches and runs)."""
        pair = self._tile_buffers.get(shape)
        if pair is None:
            pair = (np.empty(shape, self.dtype), np.empty(shape, self.dtype))
            self._tile_buffers[shape] = pair
        return pair

    def _run_tile(self, source: np.ndarray, tile: TileExtent, time_block: int) -> np.ndarray:
        """Compute ``time_block`` steps of one tile; return the stored region.

        ``source``, ``tile`` and the returned view are all in internal
        (stream-last) coordinates; the view aliases a reused scratch buffer
        and is only valid until the next ``_run_tile`` call.
        """
        rad = self.radius
        load_slices = tuple(slice(lo, hi) for lo, hi in tile.load)
        shape = tuple(hi - lo for lo, hi in tile.load)
        current, other = self._local_buffers(shape)
        np.copyto(current, source[load_slices])

        # Which local cells correspond to grid-interior (updatable) cells,
        # and of those, which have a full neighbourhood inside the tile.
        base: List[Tuple[int, int]] = []
        for d, ((lo, hi), dim_size) in enumerate(zip(tile.load, source.shape)):
            interior_lo = max(lo, rad) - lo
            interior_hi = min(hi, dim_size - rad) - lo
            base.append((max(interior_lo, rad), min(interior_hi, shape[d] - rad)))

        store_local = tuple(
            (store_lo - load_lo, store_hi - load_lo)
            for (store_lo, store_hi), (load_lo, _) in zip(tile.store, tile.load)
        )
        store_slices_local = tuple(slice(lo, hi) for lo, hi in store_local)
        if any(lo >= hi for lo, hi in base):
            return current[store_slices_local]

        def cone_region(step: int) -> Tuple[slice, ...]:
            # Dependency cone: at step s only cells within (time_block - s) *
            # rad of the stored region can still influence it, so the update
            # region shrinks toward the store region without changing any
            # stored value.
            margin = (time_block - step) * rad
            return tuple(
                slice(max(b_lo, s_lo - margin), min(b_hi, s_hi + margin))
                for (b_lo, b_hi), (s_lo, s_hi) in zip(base, store_local)
            )

        # Double-buffered stepping: each buffer's never-written cells keep
        # their loaded values, exactly like the previous copy-per-step scheme
        # (stale halo cells near cut edges are never read by any cell the
        # stored region depends on).  The second buffer only ever gets read
        # inside the first step's region expanded by one radius, so only that
        # part needs the loaded values.
        if time_block >= 2:
            first = cone_region(1)
            seed_slices = tuple(
                slice(max(s.start - rad, 0), min(s.stop + rad, dim))
                for s, dim in zip(first, shape)
            )
            np.copyto(other[seed_slices], current[seed_slices])
        for step in range(1, time_block + 1):
            region = cone_region(step)
            self.kernel(current, region, out=other[region])
            current, other = other, current
        return current[store_slices_local]

    def launch(self, source: np.ndarray, time_block: int) -> np.ndarray:
        """One kernel launch: ``time_block`` combined steps over the grid."""
        internal = self._to_internal(source.astype(self.dtype, copy=False))
        destination = internal.copy()
        self._launch_into(internal, destination, time_block)
        return self._from_internal(destination)

    def _launch_into(
        self, source: np.ndarray, destination: np.ndarray, time_block: int
    ) -> None:
        """Run one launch from ``source`` into ``destination`` (both in
        internal layout).

        ``destination`` must already carry the constant boundary ring; the
        tile stores cover the whole interior.
        """
        for tile in self._tiles_internal(time_block):
            result = self._run_tile(source, tile, time_block)
            store_slices = tuple(slice(lo, hi) for lo, hi in tile.store)
            destination[store_slices] = result

    def launch_schedule(self, total_steps: int) -> List[int]:
        """Split ``total_steps`` into per-launch step counts (host-code logic)."""
        schedule: List[int] = []
        remaining = total_steps
        while remaining > 0:
            step = min(self.config.bT, remaining)
            schedule.append(step)
            remaining -= step
        return schedule

    def run(self, initial: np.ndarray, time_steps: int | None = None) -> np.ndarray:
        """Run the full blocked computation (double-buffered across launches).

        The grid is transposed into the internal stream-last layout once per
        run and transposed back at the end; all launches in between reuse the
        two full-grid buffers.
        """
        steps = self.grid.time_steps if time_steps is None else time_steps
        schedule = self.launch_schedule(steps)
        if not schedule:
            return initial.astype(self.dtype, copy=True)
        current = self._to_internal(initial.astype(self.dtype, copy=False))
        destination = current.copy()
        for launch_steps in schedule:
            self._launch_into(current, destination, launch_steps)
            current, destination = destination, current
        return self._from_internal(current)


def run_blocked(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    initial: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Convenience wrapper: run the blocked executor from a seeded grid."""
    if initial is None:
        initial = make_initial_grid(pattern, grid, seed)
    return BlockedStencilExecutor(pattern, grid, config).run(initial)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of checking the blocked schedule against the reference."""

    matches: bool
    max_relative_error: float

    def __bool__(self) -> bool:
        return self.matches


def verify_blocking(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    seed: int = 0,
) -> VerificationResult:
    """Run both executors from the same initial grid and compare."""
    initial = make_initial_grid(pattern, grid, seed)
    blocked = BlockedStencilExecutor(pattern, grid, config).run(initial)
    reference = run_reference(pattern, grid, initial=initial.copy())
    return VerificationResult(
        matches=allclose_for_dtype(blocked, reference, pattern.dtype),
        max_relative_error=max_relative_error(blocked, reference),
    )
