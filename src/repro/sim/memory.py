"""Sustained-bandwidth models of the simulated memory system.

The analytic model of Section 5 assumes the kernel always sustains the
*measured peak* bandwidths of Table 4.  Real kernels do not: sustained
bandwidth depends on how much parallelism is resident (occupancy) and, for
shared memory, on the device's shared-memory architecture (Section 7.2 shows
P100 sustaining less than half of V100's shared-memory throughput for the
same kernels).  These curves are what turn the analytic model into the
"measured" numbers of the timing simulator.
"""

from __future__ import annotations

import math

from repro.model.gpu_specs import GpuSpec

#: Occupancy at which global memory bandwidth saturates on Pascal/Volta.
_GLOBAL_SATURATION_OCCUPANCY = 0.25
#: Occupancy at which shared memory bandwidth saturates.
_SHARED_SATURATION_OCCUPANCY = 0.45


def _latency_limited_fraction(occupancy: float, saturation: float) -> float:
    """Little's-law style ramp: bandwidth grows with resident parallelism and
    saturates once enough warps are in flight to hide latency."""
    if occupancy <= 0.0:
        return 0.0
    return min(1.0, occupancy / saturation)


def sustained_global_bandwidth(gpu: GpuSpec, dtype: str, occupancy: float) -> float:
    """Sustained global-memory bandwidth (GB/s) at a given occupancy."""
    peak = gpu.measured_membw(dtype)
    return peak * _latency_limited_fraction(occupancy, _GLOBAL_SATURATION_OCCUPANCY)


def sustained_shared_bandwidth(gpu: GpuSpec, dtype: str, occupancy: float) -> float:
    """Sustained shared-memory bandwidth (GB/s) at a given occupancy.

    On top of the occupancy ramp, the device-specific ``shared_efficiency``
    factor captures how far N.5D kernels stay from gpumembench's measured
    peak even at full occupancy (bank conflicts, pointer arithmetic, and the
    synchronisations interleaved with the accesses).
    """
    peak = gpu.measured_smembw(dtype) * gpu.shared_efficiency(dtype)
    return peak * _latency_limited_fraction(occupancy, _SHARED_SATURATION_OCCUPANCY)


def synchronization_cost_seconds(
    gpu: GpuSpec, syncs_per_block: int, blocks: int, blocks_per_sm: int
) -> float:
    """Aggregate cost of ``__syncthreads`` barriers across a launch.

    Each barrier costs a few tens of nanoseconds of pipeline drain per
    resident block; barriers of different blocks on different SMs overlap, so
    the cost is divided by the number of concurrently resident blocks.
    """
    if blocks == 0 or blocks_per_sm == 0:
        return 0.0
    barrier_seconds = 2.0e-8
    concurrent = blocks_per_sm * gpu.sm_count
    waves = math.ceil(blocks / concurrent)
    return syncs_per_block * barrier_seconds * waves


def kernel_launch_overhead_seconds(launches: int) -> float:
    """Host-side launch latency (one launch per bT combined steps)."""
    return 5.0e-6 * launches
