"""A simulated GPU device: the spec plus the sustained-performance knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.sim.memory import sustained_global_bandwidth, sustained_shared_bandwidth


@dataclass(frozen=True)
class SimulatedGPU:
    """A device the timing simulator can 'run' kernels on."""

    spec: GpuSpec

    @staticmethod
    def from_name(name: str) -> "SimulatedGPU":
        return SimulatedGPU(get_gpu(name))

    @property
    def name(self) -> str:
        return self.spec.name

    def sustained_compute_gflops(self, dtype: str, alu_efficiency: float) -> float:
        """Compute throughput after discounting the FMA mix."""
        return self.spec.peak_gflops(dtype) * alu_efficiency

    def sustained_global_gbs(self, dtype: str, occupancy: float) -> float:
        return sustained_global_bandwidth(self.spec, dtype, occupancy)

    def sustained_shared_gbs(self, dtype: str, occupancy: float) -> float:
        return sustained_shared_bandwidth(self.spec, dtype, occupancy)

    def division_penalty(self, dtype: str, has_division: bool) -> float:
        """Slowdown of the compute pipeline for double-precision division.

        Section 7.1: NVCC generates inefficient machine code for
        double-precision division (the ``--use_fast_math`` fast path only
        exists for single precision), noticeably slowing the ``j*`` stencils
        in double precision.
        """
        if has_division and dtype == "double":
            return self.spec.fp64_division_penalty
        return 1.0
