"""The timing simulator: "measured" performance of generated kernels.

The simulator starts from the same traffic totals as the analytic model of
Section 5 and layers on the effects the paper identifies as the sources of
the model-vs-measured gap:

* sustained (occupancy-dependent, device-specific) shared and global memory
  bandwidth instead of measured peaks,
* register pressure: the occupancy impact of the per-thread register demand
  and the spill penalty when a ``-maxrregcount`` cap is exceeded,
* the double-precision division slowdown of the ``j*`` stencils,
* ``__syncthreads`` barrier and kernel-launch overheads (these are what make
  very high temporal blocking degrees and very small stream blocks lose).

The same machinery also simulates the baselines by swapping in their resource
models (register allocation, shared-memory multi-buffering, redundancy),
see :mod:`repro.baselines`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import BlockingConfig
from repro.core.execution_model import ExecutionModel
from repro.core.shared_memory import synchronizations_per_subplane
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GpuSpec, get_gpu
from repro.model.occupancy import occupancy_for
from repro.model.registers import effective_registers, estimate_registers, spill_penalty
from repro.model.traffic import compute_traffic
from repro.sim.device import SimulatedGPU
from repro.sim.memory import kernel_launch_overhead_seconds, synchronization_cost_seconds

_GIGA = 1.0e9


@dataclass(frozen=True)
class SimulatedMeasurement:
    """The simulator's analogue of one timed benchmark run."""

    time_s: float
    gflops: float
    gcells: float
    occupancy: float
    registers_per_thread: int
    limiting_factor: str
    bottleneck: str
    time_compute_s: float
    time_global_s: float
    time_shared_s: float
    overhead_s: float

    def as_row(self) -> dict[str, float | str]:
        return {
            "time_s": self.time_s,
            "gflops": self.gflops,
            "gcells": self.gcells,
            "occupancy": self.occupancy,
            "registers": self.registers_per_thread,
            "bottleneck": self.bottleneck,
        }


class TimingSimulator:
    """Simulates kernel execution time on one device."""

    def __init__(self, gpu: GpuSpec | SimulatedGPU | str) -> None:
        if isinstance(gpu, str):
            gpu = SimulatedGPU.from_name(gpu)
        elif isinstance(gpu, GpuSpec):
            gpu = SimulatedGPU(gpu)
        self.device = gpu

    # -- main entry point -----------------------------------------------------
    def simulate(
        self,
        pattern: StencilPattern,
        grid: GridSpec,
        config: BlockingConfig,
        framework: str = "an5d",
    ) -> SimulatedMeasurement:
        """Simulate one full benchmark run (``grid.time_steps`` steps)."""
        spec = self.device.spec
        model = ExecutionModel(pattern, grid, config)
        traffic = compute_traffic(pattern, grid, config)
        occupancy = occupancy_for(pattern, grid, config, spec, framework)
        registers = effective_registers(pattern, config, framework)
        demand = estimate_registers(pattern, config)

        # -- compute time ---------------------------------------------------
        compute_gflops = self.device.sustained_compute_gflops(
            pattern.dtype, traffic.alu_efficiency
        )
        division_penalty = self.device.division_penalty(pattern.dtype, pattern.has_division)
        time_compute = traffic.total_flops / (compute_gflops * _GIGA) * division_penalty

        # -- memory times -----------------------------------------------------
        effective_occupancy = occupancy.occupancy * min(occupancy.wave_efficiency, 1.0)
        global_gbs = self.device.sustained_global_gbs(pattern.dtype, effective_occupancy)
        shared_gbs = self.device.sustained_shared_gbs(pattern.dtype, effective_occupancy)
        if global_gbs <= 0 or shared_gbs <= 0:
            return self._unlaunchable(occupancy, registers)
        time_global = traffic.global_bytes / (global_gbs * _GIGA)
        time_shared = traffic.shared_bytes / (shared_gbs * _GIGA)

        # -- register spilling ------------------------------------------------
        penalty = spill_penalty(registers, demand)
        time_compute *= penalty
        time_global *= penalty

        # -- fixed overheads ---------------------------------------------------
        launches = traffic.thread_work.launches
        planes = model.subplanes_per_stream_block()
        syncs_per_block = planes * config.bT * synchronizations_per_subplane(config)
        overhead = kernel_launch_overhead_seconds(launches) + synchronization_cost_seconds(
            spec,
            syncs_per_block,
            model.total_thread_blocks * launches,
            occupancy.blocks_per_sm,
        )

        times = {
            "compute": time_compute,
            "global_memory": time_global,
            "shared_memory": time_shared,
        }
        bottleneck = max(times, key=times.get)
        # Non-bottleneck pipelines overlap with the bottleneck but not
        # perfectly; a small fraction of their time leaks into the total.
        total = times[bottleneck] + 0.12 * sum(
            value for key, value in times.items() if key != bottleneck
        ) + overhead

        useful = traffic.useful_flops
        cells = grid.cells * grid.time_steps
        return SimulatedMeasurement(
            time_s=total,
            gflops=useful / total / _GIGA,
            gcells=cells / total / _GIGA,
            occupancy=occupancy.occupancy,
            registers_per_thread=registers.per_thread,
            limiting_factor=occupancy.limiting_factor,
            bottleneck=bottleneck,
            time_compute_s=time_compute,
            time_global_s=time_global,
            time_shared_s=time_shared,
            overhead_s=overhead,
        )

    def _unlaunchable(self, occupancy, registers) -> SimulatedMeasurement:
        """A configuration whose blocks do not fit on an SM at all."""
        return SimulatedMeasurement(
            time_s=math.inf,
            gflops=0.0,
            gcells=0.0,
            occupancy=0.0,
            registers_per_thread=registers.per_thread,
            limiting_factor=occupancy.limiting_factor,
            bottleneck="unlaunchable",
            time_compute_s=math.inf,
            time_global_s=math.inf,
            time_shared_s=math.inf,
            overhead_s=0.0,
        )


def simulate_performance(
    pattern: StencilPattern,
    grid: GridSpec,
    config: BlockingConfig,
    gpu: GpuSpec | str,
    framework: str = "an5d",
) -> SimulatedMeasurement:
    """Convenience wrapper around :class:`TimingSimulator`."""
    return TimingSimulator(gpu).simulate(pattern, grid, config, framework)
