"""GPU substrate simulation.

The paper evaluates on Tesla P100/V100 hardware; this package substitutes for
that hardware with two cooperating pieces:

* :mod:`repro.sim.executor` — a *functional* executor that runs the exact
  N.5D blocked schedule (spatial blocks, halos, temporal blocking, streaming
  division, remainder launches) on NumPy arrays, so the transformation's
  correctness can be verified against the naive reference executor, and
* :mod:`repro.sim.timing` + :mod:`repro.sim.memory` — a *timing* simulator
  that produces "measured" performance numbers by extending the analytic
  model with the second-order effects the paper attributes the
  model-vs-measured gap to (effective shared-memory bandwidth, occupancy,
  register spilling, double-precision division, synchronisation overhead).
"""

from repro.sim.device import SimulatedGPU
from repro.sim.executor import BlockedStencilExecutor, run_blocked, verify_blocking
from repro.sim.memory import sustained_global_bandwidth, sustained_shared_bandwidth
from repro.sim.timing import SimulatedMeasurement, TimingSimulator, simulate_performance

__all__ = [
    "BlockedStencilExecutor",
    "SimulatedGPU",
    "SimulatedMeasurement",
    "TimingSimulator",
    "run_blocked",
    "simulate_performance",
    "sustained_global_bandwidth",
    "sustained_shared_bandwidth",
    "verify_blocking",
]
