"""AN5D reproduction: automated stencil framework for high-degree temporal
blocking on GPUs (Matsumura et al., CGO 2020).

The top-level package re-exports the most commonly used pieces; see
:mod:`repro.api` for the high-level entry points and the package docstrings
of :mod:`repro.core`, :mod:`repro.model`, :mod:`repro.sim` and friends for
the subsystem documentation.
"""

from repro import api
from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec, StencilPattern
from repro.model.gpu_specs import GPUS, GpuSpec, get_gpu
from repro.stencils.library import BENCHMARKS, get_benchmark, load_pattern

__version__ = "1.1.0"

__all__ = [
    "BENCHMARKS",
    "BlockingConfig",
    "GPUS",
    "GpuSpec",
    "GridSpec",
    "StencilPattern",
    "api",
    "get_benchmark",
    "get_gpu",
    "load_pattern",
    "__version__",
]
