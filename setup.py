from setuptools import find_packages, setup

setup(
    name="an5d-repro",
    version="0.1.0",
    description=(
        "Reproduction of AN5D (CGO 2020): low-overhead temporal blocking for "
        "GPU stencils — frontend, IR, compiled execution, performance model, "
        "timing simulation and autotuning on NumPy"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["an5d=repro.cli:main"]},
)
