"""Interactive latency tier: /predict fast path, report caching, admission control.

The bench boots a real ``CampaignServer`` on an ephemeral port and checks
the acceptance contract of the low-latency tier:

* **Synchronous fast path** — ``POST /predict`` cold (first touch builds
  the hot batch entry) vs. warm (answered from the in-process cache),
  hammered by ``--clients`` concurrent client *processes* over keep-alive
  connections; the gate is a cached p99 under 10 ms at >= 8 clients.  The
  gated p99 is the **server-reported** ``request_seconds`` histogram
  (scraped from ``/metrics`` as a before/after bucket delta) — that is
  the latency the service guarantees; client wall-clock percentiles are
  recorded alongside, but on an oversubscribed host (this bench plus 8
  clients on one core) their tail measures the OS scheduler, not the
  service.  The same hammer is repeated with a background exhaustive
  sweep campaign chewing through the worker pool, to show what
  interactive latency looks like on a busy instance.
* **Read-through report caching** — warm ``GET /campaigns/{id}/report``
  vs. ``?cache=off`` (which rebuilds the table from SQLite every time);
  the gate is a >= 10x median speedup, and the store export must stay
  *byte-identical* with caching on and off.
* **Admission control** — a second server with ``max_queued=1`` accepts
  one campaign and answers the next distinct submission with 429 plus a
  ``Retry-After`` header, while ``POST /predict`` keeps answering 200
  (the interactive tier is not behind the campaign queue).

Results go to ``BENCH_service_latency.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_latency.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import multiprocessing
import socket
import statistics
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.common import write_bench  # noqa: E402
from repro.obs.metrics import parse_prometheus, scrape_quantile  # noqa: E402
from repro.service import CampaignServer, Request, WorkerSettings  # noqa: E402

#: The interactive working set: a few 2-D and 3-D stencils, round-robined.
PATTERNS = ("j2d5pt", "j2d9pt", "star3d1r", "j3d27pt")

#: The campaign whose report/export the caching phase measures — wide
#: enough (13 stencils x 2 GPUs x 2 kinds) that the uncached path pays a
#: real store rebuild on every request.
REPORT_SPEC = {
    "benchmarks": [
        "star2d1r", "box2d1r", "star2d2r", "box2d2r", "star2d3r", "box2d3r",
        "star3d1r", "box3d1r", "star3d2r", "j2d5pt", "j2d9pt", "gradient2d",
        "j3d27pt",
    ],
    "gpus": ["V100", "P100"],
    "dtypes": ["float"],
    "kinds": ["predict", "tune"],
    "time_steps": 100,
    "interior_2d": [512, 512],
    "interior_3d": [48, 48, 48],
    "top_k": 2,
}

#: Background load for the busy-instance hammer: an exhaustive sweep.
SWEEP_SPEC = {
    "benchmarks": ["j2d5pt", "star3d1r"],
    "gpus": ["V100", "P100"],
    "dtypes": ["float"],
    "kinds": ["exhaustive"],
    "time_steps": 100,
    "interior_2d": [512, 512],
    "interior_3d": [48, 48, 48],
}


def _http(url, path, method="GET", payload=None, timeout=120.0):
    """One round-trip; returns (status, body bytes, headers dict)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url + path, method=method, data=data)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read(), dict(response.headers)


def percentile(samples, q):
    ordered = sorted(samples)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


def summarize(samples_ms):
    return {
        "count": len(samples_ms),
        "p50_ms": percentile(samples_ms, 0.50),
        "p95_ms": percentile(samples_ms, 0.95),
        "p99_ms": percentile(samples_ms, 0.99),
        "max_ms": max(samples_ms),
    }


def scrape_metrics(url):
    with urllib.request.urlopen(url + "/metrics", timeout=30) as response:
        return parse_prometheus(response.read().decode("utf-8"))


def predict_quantile_ms(before, after, q):
    """Server-side /predict latency quantile between two /metrics scrapes.

    Histogram buckets are cumulative counters, so the difference of two
    scrapes is the histogram of exactly the requests in between.
    """

    def buckets(samples):
        out = {}
        for labels, value in samples.get("request_seconds_bucket", []):
            if labels.get("route") != "predict_endpoint":
                continue
            out[labels["le"]] = out.get(labels["le"], 0.0) + value
        return out

    first, second = buckets(before), buckets(after)
    delta = {
        "request_seconds_bucket": [
            ({"le": le}, count - first.get(le, 0.0)) for le, count in second.items()
        ]
    }
    return scrape_quantile(delta, "request_seconds", q) * 1000.0


def cold_predicts(url):
    """First touch of every pattern: each builds its hot batch entry."""
    samples, cached = [], []
    for pattern in PATTERNS:
        start = time.perf_counter()
        _, body, _ = _http(url, "/predict", "POST", {"pattern": pattern})
        samples.append((time.perf_counter() - start) * 1000.0)
        cached.append(json.loads(body)["cached"])
    return samples, cached


def _hammer_client(job):
    """One client process: ``per_client`` round-robin predicts, keep-alive.

    A single persistent HTTP/1.1 connection with TCP_NODELAY — what an
    interactive caller (IDE plugin, notebook) does — so the measured
    latency is the server's, not per-request TCP connection setup.  The
    first (untimed) request warms the connection.
    """
    url, slot, per_client = job
    host, port = url.removeprefix("http://").split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=120)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    connection.request("POST", "/predict", body=json.dumps({"pattern": PATTERNS[0]}))
    connection.getresponse().read()
    samples, hits = [], 0
    for i in range(per_client):
        payload = json.dumps({"pattern": PATTERNS[(slot + i) % len(PATTERNS)]})
        start = time.perf_counter()
        connection.request("POST", "/predict", body=payload)
        body = connection.getresponse().read()
        samples.append((time.perf_counter() - start) * 1000.0)
        hits += bool(json.loads(body)["cached"])
    connection.close()
    return samples, hits


def hammer_predicts(url, clients, per_client):
    """``clients`` processes concurrently hammering ``POST /predict``.

    Client processes (not threads): the server lives in this process, so
    in-process clients would share its GIL and measure their own
    scheduling, not the service's latency.
    """
    context = multiprocessing.get_context("spawn")
    jobs = [(url, slot, per_client) for slot in range(clients)]
    with context.Pool(processes=clients) as pool:
        results = pool.map(_hammer_client, jobs)
    samples = [ms for chunk, _ in results for ms in chunk]
    hits = sum(count for _, count in results)
    return samples, hits / (clients * per_client)


def wait_done(url, cid, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body, _ = _http(url, f"/campaigns/{cid}")
        status = json.loads(body)
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise RuntimeError(f"campaign {cid} did not settle within {timeout}s")


def report_timings(app, cid, iterations):
    """Median handler time for warm (cached) vs. cache=off report requests.

    Measured at the app layer (no socket) so the number is the handler
    cost the cache removes, not localhost round-trip noise.
    """
    path = f"/campaigns/{cid}/report"

    def median_ms(query):
        samples = []
        for _ in range(iterations):
            start = time.perf_counter()
            response = app.handle(Request("GET", path, query=dict(query)))
            samples.append((time.perf_counter() - start) * 1000.0)
            assert response.status == 200, response.body
        return statistics.median(samples)

    # Prime the cache so the warm series never pays the build.
    app.handle(Request("GET", path))
    warm = median_ms({})
    uncached = median_ms({"cache": "off"})
    return warm, uncached


def saturation_probe(workdir, quick):
    """One server with a single queue slot: second campaign must 429."""
    settings = WorkerSettings(
        workers=1, concurrency=1, max_queued=1, reserve_interactive=0
    )
    outcome = {
        "accepted": False,
        "rejected_429": False,
        "retry_after_s": None,
        "predict_during_saturation": False,
    }
    with CampaignServer(
        host="127.0.0.1", port=0, store=workdir / "admission.sqlite",
        settings=settings,
    ) as server:
        first = dict(REPORT_SPEC)
        accepted_status, _, _ = _http(server.url, "/campaigns", "POST", first)
        outcome["accepted"] = accepted_status == 202
        # A *distinct* spec (dedupe never 429s an idempotent re-post).
        second = dict(REPORT_SPEC, time_steps=REPORT_SPEC["time_steps"] + 1)
        for _ in range(20):
            try:
                status, _, _ = _http(server.url, "/campaigns", "POST", second, timeout=30)
            except urllib.error.HTTPError as error:
                if error.code == 429:
                    outcome["rejected_429"] = True
                    retry_after = error.headers.get("Retry-After")
                    if retry_after is not None:
                        outcome["retry_after_s"] = float(retry_after)
                    break
                raise
            if status == 202:  # first campaign already drained; vary and retry
                second["time_steps"] += 1
        # The interactive tier does not sit behind the campaign queue.
        status, body, _ = _http(server.url, "/predict", "POST", {"pattern": "j2d5pt"})
        outcome["predict_during_saturation"] = (
            status == 200 and "result" in json.loads(body)
        )
    return outcome


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized workload")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if a latency/caching/admission gate is missed",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent hammer threads (the gate requires >= 8)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service_latency.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--workdir", default=None, help="scratch directory (default: a temp dir)"
    )
    args = parser.parse_args(argv)

    import tempfile

    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="an5d-latency-")
    )
    workdir.mkdir(parents=True, exist_ok=True)

    per_client = 25 if args.quick else 50
    report_iters = 30 if args.quick else 100
    print(f"== bench_service_latency ({'quick' if args.quick else 'full'}) ==")
    print(f"{args.clients} clients x {per_client} requests, patterns: {', '.join(PATTERNS)}")

    settings = WorkerSettings(workers=1, concurrency=2, reserve_interactive=1)
    with CampaignServer(
        host="127.0.0.1", port=0, store=workdir / "latency.sqlite",
        settings=settings,
    ) as server:
        cold, cold_cached = cold_predicts(server.url)
        before = scrape_metrics(server.url)
        warm_samples, warm_hit_rate = hammer_predicts(
            server.url, args.clients, per_client
        )
        after = scrape_metrics(server.url)
        warm = summarize(warm_samples)
        warm["server_p50_ms"] = predict_quantile_ms(before, after, 0.50)
        warm["server_p99_ms"] = predict_quantile_ms(before, after, 0.99)
        print(
            f"predict cold: {', '.join(f'{ms:.1f}ms' for ms in cold)}  "
            f"warm server p50={warm['server_p50_ms']:.2f}ms "
            f"p99={warm['server_p99_ms']:.2f}ms, client wall "
            f"p50={warm['p50_ms']:.2f}ms p99={warm['p99_ms']:.2f}ms "
            f"(hit rate {warm_hit_rate:.2%})"
        )

        # The same hammer while an exhaustive sweep saturates the worker pool.
        sweep_status, sweep_body, _ = _http(
            server.url, "/campaigns", "POST", SWEEP_SPEC
        )
        assert sweep_status == 202, sweep_body
        before = scrape_metrics(server.url)
        busy_samples, busy_hit_rate = hammer_predicts(
            server.url, args.clients, per_client
        )
        after = scrape_metrics(server.url)
        busy = summarize(busy_samples)
        busy["server_p50_ms"] = predict_quantile_ms(before, after, 0.50)
        busy["server_p99_ms"] = predict_quantile_ms(before, after, 0.99)
        print(
            f"predict under sweep: server p99={busy['server_p99_ms']:.2f}ms, "
            f"client wall p50={busy['p50_ms']:.2f}ms "
            f"p99={busy['p99_ms']:.2f}ms (hit rate {busy_hit_rate:.2%})"
        )
        wait_done(server.url, json.loads(sweep_body)["id"])

        # Report caching + export identity on a settled campaign.
        _, body, _ = _http(server.url, "/campaigns", "POST", REPORT_SPEC)
        cid = json.loads(body)["id"]
        wait_done(server.url, cid)
        warm_report_ms, uncached_report_ms = report_timings(
            server.app, cid, report_iters
        )
        report_speedup = (
            uncached_report_ms / warm_report_ms if warm_report_ms > 0 else float("inf")
        )
        _, cached_export, cached_headers = _http(
            server.url, f"/campaigns/{cid}/export"
        )
        _, raw_export, raw_headers = _http(
            server.url, f"/campaigns/{cid}/export?cache=off"
        )
        export_identical = (
            cached_export == raw_export
            and cached_headers.get("ETag") == raw_headers.get("ETag")
        )
        print(
            f"report: warm {warm_report_ms:.3f}ms vs uncached "
            f"{uncached_report_ms:.3f}ms (x{report_speedup:.1f}), "
            f"export identical={export_identical}"
        )

    admission = saturation_probe(workdir, args.quick)
    print(
        f"admission: accepted={admission['accepted']} "
        f"429={admission['rejected_429']} "
        f"retry_after={admission['retry_after_s']} "
        f"predict_ok={admission['predict_during_saturation']}"
    )

    gates = {
        "warm_p99_under_10ms": args.clients >= 8 and warm["server_p99_ms"] < 10.0,
        "warm_hit_rate_over_90pct": warm_hit_rate > 0.90,
        "report_speedup_10x": report_speedup >= 10.0,
        "export_identical": export_identical,
        "admission_429_with_retry_after": (
            admission["accepted"]
            and admission["rejected_429"]
            and admission["retry_after_s"] is not None
            and admission["retry_after_s"] >= 1.0
        ),
        "predict_during_saturation": admission["predict_during_saturation"],
    }
    gates["met"] = all(gates.values())

    data = {
        "quick": args.quick,
        "clients": args.clients,
        "host_cpus": multiprocessing.cpu_count(),
        "requests_per_client": per_client,
        "patterns": list(PATTERNS),
        "predict_cold_ms": cold,
        "predict_cold_cached_flags": cold_cached,
        "predict_warm": {**warm, "hit_rate": warm_hit_rate},
        "predict_under_sweep": {**busy, "hit_rate": busy_hit_rate},
        "report": {
            "warm_ms": warm_report_ms,
            "uncached_ms": uncached_report_ms,
            "speedup": report_speedup,
            "iterations": report_iters,
        },
        "export_identical": export_identical,
        "admission": admission,
        "thresholds": gates,
    }
    output = Path(args.output)
    write_bench(
        output,
        "service_latency",
        data,
        units={
            "predict_cold_ms": "ms",
            "p50_ms": "ms",
            "p95_ms": "ms",
            "p99_ms": "ms",
            "server_p50_ms": "ms",
            "server_p99_ms": "ms",
            "warm_ms": "ms",
            "uncached_ms": "ms",
            "speedup": "ratio",
            "hit_rate": "fraction",
            "retry_after_s": "s",
        },
    )
    print(f"wrote {output}")
    print(
        "gates (p99<10ms @>=8 clients, hit>90%, report>=10x, identical export, "
        f"429+Retry-After): {'MET' if gates['met'] else 'NOT MET'}"
    )
    if args.check and not gates["met"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
