"""Fig. 8: performance scaling with the temporal blocking degree on V100.

Sweeps bT for first-order star and box stencils in 2D (bT = 1..16) and 3D
(bT = 1..8), single precision, keeping the tuned spatial parameters fixed and
re-tuning only the register limit — exactly the protocol of Section 7.3.
Reports both the simulated ("Tuned") and the analytic ("Model") series.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import evaluation_grid, format_table, report
from repro.core.config import BlockingConfig
from repro.model.gpu_specs import get_gpu
from repro.model.roofline import predict_performance
from repro.sim.timing import TimingSimulator
from repro.stencils.library import load_pattern
from repro.tuning.search_space import REGISTER_LIMITS

CASES_2D = {"star2d1r": (256,), "box2d1r": (256,)}
CASES_3D = {"star3d1r": (32, 32), "box3d1r": (32, 32)}


def sweep(name: str, bS, bT_range, hS):
    pattern = load_pattern(name, "float")
    grid = evaluation_grid(pattern.ndim)
    gpu = get_gpu("V100")
    simulator = TimingSimulator(gpu)
    series = []
    for bT in bT_range:
        config = BlockingConfig(bT=bT, bS=bS, hS=hS)
        if not config.is_valid(pattern):
            continue
        best = max(
            simulator.simulate(pattern, grid, config.with_register_limit(limit)).gflops
            for limit in REGISTER_LIMITS
        )
        model = predict_performance(pattern, grid, config, gpu).gflops
        series.append((bT, round(best), round(model)))
    return series


def test_fig8_scaling_2d(benchmark):
    results = benchmark.pedantic(
        lambda: {name: sweep(name, bS, range(1, 17), 512) for name, bS in CASES_2D.items()},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, series in results.items():
        for bT, tuned, model in series:
            rows.append((name, bT, tuned, model))
    table = format_table(["stencil", "bT", "Tuned GFLOP/s", "Model GFLOP/s"], rows)
    report("fig8_2d", "Fig. 8 (left): 2D scaling with bT on V100 (float, rad=1)", table)

    for name, series in results.items():
        tuned = {bT: value for bT, value, _ in series}
        peak_bt = max(tuned, key=tuned.get)
        # 2D stencils keep scaling up to roughly bT = 10 (Section 7.3).
        assert 6 <= peak_bt <= 14, name
        assert tuned[peak_bt] > 1.5 * tuned[1], name
        # The model curve is an upper bound everywhere.
        assert all(model >= tuned_value for _, tuned_value, model in series), name


def test_fig8_scaling_3d(benchmark):
    results = benchmark.pedantic(
        lambda: {name: sweep(name, bS, range(1, 9), 128) for name, bS in CASES_3D.items()},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, series in results.items():
        for bT, tuned, model in series:
            rows.append((name, bT, tuned, model))
    table = format_table(["stencil", "bT", "Tuned GFLOP/s", "Model GFLOP/s"], rows)
    report("fig8_3d", "Fig. 8 (right): 3D scaling with bT on V100 (float, rad=1)", table)

    star = {bT: value for bT, value, _ in results["star3d1r"]}
    box = {bT: value for bT, value, _ in results["box3d1r"]}
    # 3D star stencils peak around bT = 3-5, 3D box stencils around bT = 2-3.
    assert 2 <= max(star, key=star.get) <= 6
    assert 1 <= max(box, key=box.get) <= 4
    # Scaling is worthwhile relative to no temporal blocking.
    assert max(star.values()) > star[1]
