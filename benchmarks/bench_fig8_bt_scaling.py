"""Fig. 8: performance scaling with the temporal blocking degree on V100.

Sweeps bT for first-order star and box stencils in 2D (bT = 1..16) and 3D
(bT = 1..8), single precision, keeping the tuned spatial parameters fixed and
re-tuning only the register limit — exactly the protocol of Section 7.3.
Reports both the simulated ("Tuned") and the analytic ("Model") series.

Like the other figure benches, the figure regenerates *from the campaign
store*: every (stencil, bT, register limit) point is one content-addressed
``predict`` job, executed through the batched model engine, committed once,
and read back.  The second pass runs nothing — both series come straight off
the store — and its cold/warm timing lands in ``BENCH_campaign.json`` next
to the Table 5, Fig. 6 and Fig. 7 sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from benchmarks.bench_table5_tuned import record_campaign_timing
from benchmarks.conftest import format_table, report
from repro.campaign import ResultStore
from repro.campaign.jobs import JobSpec, run_predict_jobs
from repro.core.config import BlockingConfig
from repro.stencils.library import (
    DEFAULT_2D_GRID,
    DEFAULT_3D_GRID,
    DEFAULT_TIME_STEPS,
    load_pattern,
)
from repro.tuning.search_space import REGISTER_LIMITS

CASES_2D = {"star2d1r": (256,), "box2d1r": (256,)}
CASES_3D = {"star3d1r": (32, 32), "box3d1r": (32, 32)}


@dataclass(frozen=True)
class _PassTiming:
    """Just enough of a CampaignOutcome for record_campaign_timing."""

    total: int
    duration_s: float
    cache_hit_rate: float


def predict_job(name: str, ndim: int, bT: int, bS, hS: int, regs) -> JobSpec:
    """One content-addressed point of the Fig. 8 sweep."""
    params = [("bT", bT), ("bS", tuple(bS)), ("hS", hS)]
    if regs is not None:
        params.append(("regs", regs))
    return JobSpec(
        kind="predict",
        pattern=name,
        gpu="V100",
        dtype="float",
        interior=DEFAULT_2D_GRID if ndim == 2 else DEFAULT_3D_GRID,
        time_steps=DEFAULT_TIME_STEPS,
        params=tuple(params),
    )


def sweep_jobs(name: str, bS, bT_range, hS: int):
    """The (bT, register limit) -> JobSpec map of one stencil's sweep.

    Invalid bT values (blocks too large for the halo) are dropped up front,
    exactly as the original in-process sweep skipped them.
    """
    pattern = load_pattern(name, "float")
    jobs = {}
    for bT in bT_range:
        if not BlockingConfig(bT=bT, bS=bS, hS=hS).is_valid(pattern):
            continue
        for limit in REGISTER_LIMITS:
            jobs[(bT, limit)] = predict_job(name, pattern.ndim, bT, bS, hS, limit)
    return jobs


def run_fig8_campaign(cases, bT_range, hS: int, store_path):
    """Cold pass batch-evaluates + commits; warm pass reads rows off the store."""
    all_jobs = {name: sweep_jobs(name, bS, bT_range, hS) for name, bS in cases.items()}
    total = sum(len(jobs) for jobs in all_jobs.values())
    with ResultStore(store_path) as store:
        started = time.perf_counter()
        executed = 0
        for jobs in all_jobs.values():
            # One stencil's points all share a predict batch key, so the
            # whole sweep is a single batched model evaluation.
            pending = [job for job in jobs.values() if not store.has_ok(job)]
            for job, payload in zip(pending, run_predict_jobs(pending)):
                store.put(job, payload)
                executed += 1
        cold = _PassTiming(
            total=total,
            duration_s=time.perf_counter() - started,
            cache_hit_rate=(total - executed) / total,
        )

        started = time.perf_counter()
        results = {}
        for name, jobs in all_jobs.items():
            series = []
            for bT in bT_range:
                group = {regs: job for (b, regs), job in jobs.items() if b == bT}
                if not group:
                    continue
                tuned = max(
                    store.lookup(job).payload["simulated_gflops"]
                    for job in group.values()
                )
                model = store.lookup(group[None]).payload["model_gflops"]
                series.append((bT, round(tuned), round(model)))
            results[name] = series
        warm_hits = sum(
            1 for jobs in all_jobs.values() for job in jobs.values() if store.has_ok(job)
        )
        warm = _PassTiming(
            total=total,
            duration_s=time.perf_counter() - started,
            cache_hit_rate=warm_hits / total,
        )
    return cold, warm, results


def test_fig8_scaling_2d(benchmark, tmp_path):
    cold, warm, results = benchmark.pedantic(
        run_fig8_campaign,
        args=(CASES_2D, range(1, 17), 512, tmp_path / "fig8_2d.sqlite"),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, series in results.items():
        for bT, tuned, model in series:
            rows.append((name, bT, tuned, model))
    table = format_table(["stencil", "bT", "Tuned GFLOP/s", "Model GFLOP/s"], rows)
    report("fig8_2d", "Fig. 8 (left): 2D scaling with bT on V100 (float, rad=1)", table)
    record_campaign_timing("fig8_2d", cold, warm)

    # Store-backed regeneration: the first pass executes every point, the
    # read-back pass is answered entirely from the store.
    assert cold.cache_hit_rate == 0.0
    assert warm.cache_hit_rate == 1.0

    for name, series in results.items():
        tuned = {bT: value for bT, value, _ in series}
        peak_bt = max(tuned, key=tuned.get)
        # 2D stencils keep scaling up to roughly bT = 10 (Section 7.3).
        assert 6 <= peak_bt <= 14, name
        assert tuned[peak_bt] > 1.5 * tuned[1], name
        # The model curve is an upper bound everywhere.
        assert all(model >= tuned_value for _, tuned_value, model in series), name


def test_fig8_scaling_3d(benchmark, tmp_path):
    cold, warm, results = benchmark.pedantic(
        run_fig8_campaign,
        args=(CASES_3D, range(1, 9), 128, tmp_path / "fig8_3d.sqlite"),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, series in results.items():
        for bT, tuned, model in series:
            rows.append((name, bT, tuned, model))
    table = format_table(["stencil", "bT", "Tuned GFLOP/s", "Model GFLOP/s"], rows)
    report("fig8_3d", "Fig. 8 (right): 3D scaling with bT on V100 (float, rad=1)", table)
    record_campaign_timing("fig8_3d", cold, warm)

    assert cold.cache_hit_rate == 0.0
    assert warm.cache_hit_rate == 1.0

    star = {bT: value for bT, value, _ in results["star3d1r"]}
    box = {bT: value for bT, value, _ in results["box3d1r"]}
    # 3D star stencils peak around bT = 3-5, 3D box stencils around bT = 2-3.
    assert 2 <= max(star, key=star.get) <= 6
    assert 1 <= max(box, key=box.get) <= 4
    # Scaling is worthwhile relative to no temporal blocking.
    assert max(star.values()) > star[1]
