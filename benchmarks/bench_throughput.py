"""Self-timing throughput harness: executor Mcells/s and tuner configs/s.

This is a standalone script (not a pytest module): it times the two hottest
paths of the framework against faithful replicas of the pre-compiled-kernel
code paths — the tree-walking, copy-per-step executors and the
recompute-everything tuning sweep the repository shipped with — and writes
the results to ``BENCH_throughput.json`` at the repository root so the
performance trajectory is tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--quick] [--check]
                                                         [--workers N]

``--quick`` shrinks the workloads for CI smoke runs, ``--check`` makes the
process exit non-zero unless the executor speedup is >= 5x and the tuner
speedup is >= 3x.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.common import write_bench  # noqa: E402
from repro import model as model_pkg  # noqa: E402
from repro.core.config import BlockingConfig  # noqa: E402
from repro.ir.compile import _native_compiler, compile_pattern, native_supported  # noqa: E402
from repro.ir.expr import BinOp, Call, Const, GridRead, UnaryOp  # noqa: E402
from repro.ir.stencil import GridSpec  # noqa: E402
from repro.sim.executor import BlockedStencilExecutor  # noqa: E402
from repro.sim.timing import TimingSimulator  # noqa: E402
from repro.stencils.library import load_pattern  # noqa: E402
from repro.stencils.reference import (  # noqa: E402
    _CALL_NUMPY,
    ReferenceExecutor,
    make_initial_grid,
)
from repro.tuning.exhaustive import exhaustive_search  # noqa: E402
from repro.tuning.pruning import prune_configurations  # noqa: E402
from repro.tuning.search_space import (  # noqa: E402
    REGISTER_LIMITS,
    SearchSpace,
    default_search_space,
)

EXECUTOR_SPEEDUP_MIN = 5.0
TUNER_SPEEDUP_MIN = 3.0


# ---------------------------------------------------------------------------
# Legacy (pre-compiled-kernel) code paths, replicated for comparison
# ---------------------------------------------------------------------------


def _legacy_eval(pattern, dtype, local, region):
    """Seed-era region evaluation: one tree walk, one temporary per node."""

    def shifted(offset):
        return local[tuple(slice(s.start + o, s.stop + o) for s, o in zip(region, offset))]

    def ev(expr):
        if isinstance(expr, Const):
            return np.asarray(expr.value, dtype=dtype)
        if isinstance(expr, GridRead):
            return shifted(expr.offset)
        if isinstance(expr, BinOp):
            lhs, rhs = ev(expr.lhs), ev(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        if isinstance(expr, UnaryOp):
            return -ev(expr.operand)
        if isinstance(expr, Call):
            return _CALL_NUMPY[expr.name](*[ev(a) for a in expr.args])
        raise TypeError(f"unknown expression node {expr!r}")

    return ev(pattern.expr).astype(dtype)


class LegacyBlockedExecutor(BlockedStencilExecutor):
    """The seed's blocked executor: full-region interpretation with a
    full-tile copy per combined time step."""

    def _run_tile_legacy(self, source, tile, time_block):
        rad = self.radius
        local = source[tuple(slice(lo, hi) for lo, hi in tile.load)].astype(
            self.dtype, copy=True
        )
        mask = [
            (max(lo, rad) - lo, min(hi, dim - rad) - lo)
            for (lo, hi), dim in zip(tile.load, source.shape)
        ]
        for _ in range(time_block):
            updated = local.copy()
            region = tuple(
                slice(max(lo, rad), min(hi, local.shape[d] - rad))
                for d, (lo, hi) in enumerate(mask)
            )
            if any(s.start >= s.stop for s in region):
                break
            updated[region] = _legacy_eval(self.pattern, self.dtype, local, region)
            local = updated
        return local[
            tuple(
                slice(s_lo - l_lo, s_hi - l_lo)
                for (s_lo, s_hi), (l_lo, _) in zip(tile.store, tile.load)
            )
        ]

    def launch(self, source, time_block):
        destination = source.copy()
        for tile in self.tiles(time_block):
            store = tuple(slice(lo, hi) for lo, hi in tile.store)
            destination[store] = self._run_tile_legacy(source, tile, time_block)
        return destination

    def run(self, initial, time_steps=None):
        steps = self.grid.time_steps if time_steps is None else time_steps
        current = initial.astype(self.dtype, copy=True)
        for launch_steps in self.launch_schedule(steps):
            current = self.launch(current, launch_steps)
        return current


class LegacyReferenceExecutor(ReferenceExecutor):
    """The seed's reference executor: copy + tree walk per time step."""

    def step(self, source):
        result = source.copy()
        interior = tuple(slice(self.radius, dim - self.radius) for dim in source.shape)
        result[interior] = self._eval(self.pattern.expr, source).astype(self.dtype)
        return result

    def run(self, initial, time_steps):
        current = initial.astype(self.dtype, copy=True)
        for _ in range(time_steps):
            current = self.step(current)
        return current


def legacy_exhaustive_search(pattern, grid, gpu, space, register_limits=REGISTER_LIMITS):
    """Seed-era sweep: every candidate rebuilds the model quantities.

    Memoization is emulated away by clearing the model caches and using a
    fresh pattern instance (no warm derived-property cache) per simulated
    run, which is still *conservative* — the seed recomputed pattern
    properties on every access, not once per run.
    """
    simulator = TimingSimulator(gpu)
    survivors = prune_configurations(pattern, space.configurations(), gpu)
    best_config, best_gflops, evaluated = None, 0.0, 0
    for config in survivors:
        for limit in register_limits:
            model_pkg.clear_model_caches()
            fresh_pattern = replace(pattern)
            candidate = config.with_register_limit(limit)
            gflops = simulator.simulate(fresh_pattern, grid, candidate).gflops
            evaluated += 1
            if gflops > best_gflops:
                best_gflops, best_config = gflops, candidate
    model_pkg.clear_model_caches()
    return best_config, best_gflops, evaluated


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_executor(quick: bool) -> dict:
    """heat-3d (7-point star) verification workload: 64^3 grid, bT=4."""
    pattern = load_pattern("star3d1r", "float")
    interior = (48, 48, 48) if quick else (64, 64, 64)
    time_steps = 4 if quick else 8
    grid = GridSpec(interior, time_steps)
    config = BlockingConfig(bT=4, bS=(16, 16))
    initial = make_initial_grid(pattern, grid, seed=0)
    cells = grid.cells * grid.time_steps

    # Benchmark the best available engine directly rather than waiting for
    # the tiered auto kernel to promote itself on small quick-mode grids.
    native_ok = _native_compiler() is not None and native_supported(pattern)
    kernel_mode = "native" if native_ok else "auto"
    new = BlockedStencilExecutor(pattern, grid, config, kernel_mode=kernel_mode)
    legacy = LegacyBlockedExecutor(pattern, grid, config)
    result_new = new.run(initial)
    result_legacy = legacy.run(initial)
    identical = bool(np.array_equal(result_new, result_legacy))

    repeats = 3 if quick else 5
    t_new = best_of(lambda: new.run(initial), repeats)
    t_legacy = best_of(lambda: legacy.run(initial), max(repeats - 2, 1))

    ref_new = ReferenceExecutor(pattern, kernel=compile_pattern(pattern, mode=kernel_mode))
    ref_legacy = LegacyReferenceExecutor(pattern)
    ref_identical = bool(
        np.array_equal(ref_new.run(initial, time_steps), ref_legacy.run(initial, time_steps))
    )
    t_ref_new = best_of(lambda: ref_new.run(initial, time_steps), repeats)
    t_ref_legacy = best_of(lambda: ref_legacy.run(initial, time_steps), max(repeats - 2, 1))

    return {
        "workload": {
            "pattern": "star3d1r (heat-3d 7-point star)",
            "grid": list(interior),
            "time_steps": time_steps,
            "bT": config.bT,
            "bS": list(config.bS),
            "dtype": "float",
        },
        "bitwise_identical_to_legacy": identical,
        "kernel_mode": getattr(new.kernel, "mode", "unknown"),
        "blocked": {
            "new_seconds": t_new,
            "legacy_seconds": t_legacy,
            "new_mcells_per_s": cells / t_new / 1e6,
            "legacy_mcells_per_s": cells / t_legacy / 1e6,
            "speedup": t_legacy / t_new,
        },
        "reference": {
            "bitwise_identical_to_legacy": ref_identical,
            "new_seconds": t_ref_new,
            "legacy_seconds": t_ref_legacy,
            "new_mcells_per_s": cells / t_ref_new / 1e6,
            "legacy_mcells_per_s": cells / t_ref_legacy / 1e6,
            "speedup": t_ref_legacy / t_ref_new,
        },
    }


def bench_tuner(quick: bool, workers: int) -> dict:
    """Exhaustive sweep of one library stencil's full search space."""
    pattern = load_pattern("j2d5pt", "float")
    grid = GridSpec((256, 256), 50) if quick else GridSpec((512, 512), 100)
    space = default_search_space(pattern)
    if quick:
        space = SearchSpace(
            time_blocks=tuple(range(1, 9)),
            spatial_blocks=space.spatial_blocks,
            stream_blocks=space.stream_blocks,
        )

    model_pkg.clear_model_caches()
    start = time.perf_counter()
    cold = exhaustive_search(pattern, grid, "V100", space=space)
    t_cold = time.perf_counter() - start
    start = time.perf_counter()
    warm = exhaustive_search(pattern, grid, "V100", space=space)
    t_warm = time.perf_counter() - start

    start = time.perf_counter()
    legacy_config, legacy_gflops, legacy_evaluated = legacy_exhaustive_search(
        pattern, grid, model_pkg.get_gpu("V100"), space
    )
    t_legacy = time.perf_counter() - start
    same_answer = (
        legacy_evaluated == cold.evaluated
        and legacy_config == cold.best_config
        and abs(legacy_gflops - cold.best_gflops) < 1e-9
    )

    result = {
        "workload": {
            "pattern": "j2d5pt",
            "grid": list(grid.interior),
            "time_steps": grid.time_steps,
            "gpu": "V100",
            "space_size": space.size(),
            "register_limits": len(REGISTER_LIMITS),
        },
        "evaluated": cold.evaluated,
        "same_answer_as_legacy": same_answer,
        "new_seconds_cold": t_cold,
        "new_seconds_warm": t_warm,
        "legacy_seconds": t_legacy,
        "new_configs_per_s": cold.evaluated / t_cold,
        "legacy_configs_per_s": legacy_evaluated / t_legacy,
        "speedup": t_legacy / t_cold,
    }

    if workers > 1:
        model_pkg.clear_model_caches()
        start = time.perf_counter()
        parallel = exhaustive_search(pattern, grid, "V100", space=space, workers=workers)
        t_parallel = time.perf_counter() - start
        result["parallel"] = {
            "workers": workers,
            "seconds": t_parallel,
            "configs_per_s": parallel.evaluated / t_parallel,
            "same_answer": parallel.best_config == cold.best_config,
        }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized workloads")
    parser.add_argument(
        "--check", action="store_true", help="exit non-zero unless speedup targets are met"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="also time the parallel sweep with N workers"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_throughput.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    print(f"== bench_throughput ({'quick' if args.quick else 'full'}) ==")
    executor = bench_executor(args.quick)
    blocked = executor["blocked"]
    print(
        f"blocked executor : {blocked['new_mcells_per_s']:8.1f} Mcells/s "
        f"(legacy {blocked['legacy_mcells_per_s']:.1f}) -> {blocked['speedup']:.2f}x, "
        f"kernel={executor['kernel_mode']}, "
        f"bit-identical={executor['bitwise_identical_to_legacy']}"
    )
    reference = executor["reference"]
    print(
        f"reference        : {reference['new_mcells_per_s']:8.1f} Mcells/s "
        f"(legacy {reference['legacy_mcells_per_s']:.1f}) -> {reference['speedup']:.2f}x"
    )

    tuner = bench_tuner(args.quick, args.workers)
    print(
        f"exhaustive sweep : {tuner['new_configs_per_s']:8.1f} configs/s "
        f"(legacy {tuner['legacy_configs_per_s']:.1f}) -> {tuner['speedup']:.2f}x "
        f"over {tuner['evaluated']} runs, same answer={tuner['same_answer_as_legacy']}"
    )
    if "parallel" in tuner:
        par = tuner["parallel"]
        print(
            f"parallel sweep   : {par['configs_per_s']:8.1f} configs/s "
            f"with {par['workers']} workers, same answer={par['same_answer']}"
        )

    met = (
        blocked["speedup"] >= EXECUTOR_SPEEDUP_MIN
        and tuner["speedup"] >= TUNER_SPEEDUP_MIN
        and executor["bitwise_identical_to_legacy"]
        and tuner["same_answer_as_legacy"]
    )
    output = Path(args.output)
    write_bench(
        output,
        "throughput",
        {
            "quick": args.quick,
            "native_compiler": _native_compiler() or "none",
            "executor": executor,
            "tuner": tuner,
            "thresholds": {
                "executor_speedup_min": EXECUTOR_SPEEDUP_MIN,
                "tuner_speedup_min": TUNER_SPEEDUP_MIN,
                "met": met,
            },
        },
        units={
            "new_mcells_per_s": "Mcells/s",
            "legacy_mcells_per_s": "Mcells/s",
            "new_configs_per_s": "configs/s",
            "legacy_configs_per_s": "configs/s",
            "speedup": "ratio",
        },
    )
    print(f"wrote {output}")
    print(f"thresholds (executor >= {EXECUTOR_SPEEDUP_MIN}x, tuner >= {TUNER_SPEEDUP_MIN}x): "
          f"{'MET' if met else 'NOT MET'}")
    if args.check and not met:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
