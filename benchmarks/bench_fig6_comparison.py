"""Fig. 6: performance comparison across frameworks — store-backed.

For each of the seven stencils in the figure (j2d5pt, j2d9pt, j2d9pt-gol,
gradient2d, star3d1r, star3d2r, j3d27pt) the bench reports Loop Tiling,
Hybrid Tiling, STENCILGEN, AN5D (Sconf), AN5D (Tuned) and AN5D (Model) in
GFLOP/s.  The default run covers Tesla V100; ``AN5D_BENCH_FULL=1`` adds P100.

Since the campaign service landed, the figure regenerates *from the result
store*: the baseline and tuned columns are one ``CampaignSpec`` (kinds
``baseline`` + ``tune``) run through the sharded scheduler, the Sconf column
is a set of content-addressed ``predict`` jobs carrying each stencil's Sconf
blocking parameters, and every row is read back out of the store.  Running
the bench twice therefore regenerates the figure entirely warm — the second
pass is answered 100% from the store — and the cold/warm timings land in
``BENCH_campaign.json`` next to the Table 5 sweeps.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_table5_tuned import record_campaign_timing
from benchmarks.conftest import FULL_SWEEP, format_table, report
from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore
from repro.campaign.jobs import JobSpec, run_job
from repro.core.config import sconf_configuration
from repro.stencils.library import (
    DEFAULT_2D_GRID,
    DEFAULT_3D_GRID,
    DEFAULT_TIME_STEPS,
    figure6_benchmarks,
    load_pattern,
)

GPUS = ("V100", "P100") if FULL_SWEEP else ("V100",)
DTYPES = ("float", "double") if FULL_SWEEP else ("float",)

FIG6_BENCHMARKS = tuple(info.name for info in figure6_benchmarks())


def sconf_predict_job(name: str, gpu: str, dtype: str) -> JobSpec:
    """The predict job whose simulated GFLOP/s is the AN5D (Sconf) bar."""
    pattern = load_pattern(name, dtype)
    config = sconf_configuration(pattern)
    params = [("bT", config.bT), ("bS", tuple(config.bS))]
    if config.hS is not None:
        params.append(("hS", config.hS))
    if config.register_limit is not None:
        params.append(("regs", config.register_limit))
    return JobSpec(
        kind="predict",
        pattern=name,
        gpu=gpu,
        dtype=dtype,
        interior=DEFAULT_2D_GRID if pattern.ndim == 2 else DEFAULT_3D_GRID,
        time_steps=DEFAULT_TIME_STEPS,
        params=tuple(params),
    )


def run_fig6_campaign(gpu: str, dtype: str, store_path):
    """One Fig. 6 sweep: baselines + tuned via the campaign, Sconf via
    content-addressed predict jobs — everything committed to (and on the
    second pass answered from) one store."""
    spec = CampaignSpec(
        benchmarks=FIG6_BENCHMARKS, gpus=(gpu,), dtypes=(dtype,),
        kinds=("baseline", "tune"), top_k=3,
    )
    sconf_jobs = [sconf_predict_job(name, gpu, dtype) for name in FIG6_BENCHMARKS]
    with ResultStore(store_path) as store:
        cold = CampaignScheduler(spec, store).run()
        for job in sconf_jobs:
            if not store.has_ok(job):
                store.put(job, run_job(job))
        warm = CampaignScheduler(spec, store).run()
        sconf_warm = all(store.has_ok(job) for job in sconf_jobs)

        rows = []
        for name, job in zip(FIG6_BENCHMARKS, sconf_jobs):
            baselines = {
                result.payload["framework"]: result.payload["gflops"]
                for result in store.query(kind="baseline", pattern=name, gpu=gpu, dtype=dtype)
            }
            (tuned,) = store.query(kind="tune", pattern=name, gpu=gpu, dtype=dtype)
            sconf = store.lookup(job).payload["simulated_gflops"]
            rows.append(
                (
                    name,
                    round(baselines["loop"]),
                    round(baselines["hybrid"]),
                    round(baselines["stencilgen"]),
                    round(sconf),
                    round(tuned.payload["tuned_gflops"]),
                    round(tuned.payload["model_gflops"]),
                )
            )
    return cold, warm, sconf_warm, rows


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_fig6_framework_comparison(benchmark, tmp_path, gpu, dtype):
    cold, warm, sconf_warm, rows = benchmark.pedantic(
        run_fig6_campaign,
        args=(gpu, dtype, tmp_path / "fig6.sqlite"),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["stencil", "Loop Tiling", "Hybrid Tiling", "STENCILGEN", "AN5D (Sconf)", "AN5D (Tuned)", "AN5D (Model)"],
        rows,
    )
    report(f"fig6_{gpu}_{dtype}", f"Fig. 6: framework comparison ({gpu}, {dtype}, GFLOP/s)", table)
    record_campaign_timing(f"fig6_{gpu}_{dtype}", cold, warm)

    # Store-backed regeneration: the repeat pass is answered entirely warm.
    assert cold.ok and cold.executed == cold.total
    assert warm.cached == warm.total and warm.cache_hit_rate == 1.0
    assert sconf_warm

    two_d = {"j2d5pt", "j2d9pt", "j2d9pt-gol", "gradient2d"}
    for row in rows:
        name, loop, hybrid, stencilgen, sconf, tuned, model = row
        best = max(loop, hybrid, stencilgen, sconf, tuned)
        # AN5D (taking Sconf and Tuned together) achieves the highest
        # performance on V100 for every stencil (Section 7.1).
        if gpu == "V100":
            assert max(sconf, tuned) == best, name
        # Loop tiling never competes with AN5D, and for 2D it is the weakest
        # of all frameworks.
        assert loop < max(sconf, tuned), name
        if name in two_d:
            assert loop == min(loop, hybrid, stencilgen, sconf, tuned), name
        # The model is an optimistic upper bound on the tuned measurement.
        assert model >= tuned, name

    by_name = {row[0]: row for row in rows}
    # Hybrid tiling is competitive for 2D stencils but falls behind the
    # streaming frameworks for 3D (no dimension streaming -> smaller blocks).
    assert by_name["star3d1r"][2] < by_name["star3d1r"][3]
    assert by_name["j3d27pt"][2] < by_name["j3d27pt"][3]
