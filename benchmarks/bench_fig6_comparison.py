"""Fig. 6: performance comparison across frameworks.

For each of the seven stencils in the figure (j2d5pt, j2d9pt, j2d9pt-gol,
gradient2d, star3d1r, star3d2r, j3d27pt) the bench reports Loop Tiling,
Hybrid Tiling, STENCILGEN, AN5D (Sconf), AN5D (Tuned) and AN5D (Model) in
GFLOP/s.  The default run covers Tesla V100; ``AN5D_BENCH_FULL=1`` adds P100.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL_SWEEP, evaluation_grid, format_table, report
from repro.baselines import HybridTilingBaseline, LoopTilingBaseline, StencilGenBaseline
from repro.core.config import sconf_configuration
from repro.model.gpu_specs import get_gpu
from repro.sim.timing import simulate_performance
from repro.stencils.library import figure6_benchmarks, load_pattern
from repro.tuning.autotuner import AutoTuner

GPUS = ("V100", "P100") if FULL_SWEEP else ("V100",)
DTYPES = ("float", "double") if FULL_SWEEP else ("float",)


def compare_frameworks(gpu_name: str, dtype: str):
    gpu = get_gpu(gpu_name)
    tuner = AutoTuner(gpu, top_k=3)
    rows = []
    for benchmark_info in figure6_benchmarks():
        pattern = load_pattern(benchmark_info.name, dtype)
        grid = evaluation_grid(benchmark_info.ndim)
        loop = LoopTilingBaseline(gpu).simulate(pattern, grid).gflops
        hybrid = HybridTilingBaseline(gpu).simulate(pattern, grid).gflops
        stencilgen = StencilGenBaseline(gpu).simulate(pattern, grid).gflops
        sconf = simulate_performance(pattern, grid, sconf_configuration(pattern), gpu).gflops
        tuned_result = tuner.tune(pattern, grid)
        rows.append(
            (
                benchmark_info.name,
                round(loop),
                round(hybrid),
                round(stencilgen),
                round(sconf),
                round(tuned_result.best.measured_gflops),
                round(tuned_result.best.predicted_gflops),
            )
        )
    return rows


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_fig6_framework_comparison(benchmark, gpu, dtype):
    rows = benchmark.pedantic(compare_frameworks, args=(gpu, dtype), rounds=1, iterations=1)
    table = format_table(
        ["stencil", "Loop Tiling", "Hybrid Tiling", "STENCILGEN", "AN5D (Sconf)", "AN5D (Tuned)", "AN5D (Model)"],
        rows,
    )
    report(f"fig6_{gpu}_{dtype}", f"Fig. 6: framework comparison ({gpu}, {dtype}, GFLOP/s)", table)

    two_d = {"j2d5pt", "j2d9pt", "j2d9pt-gol", "gradient2d"}
    for row in rows:
        name, loop, hybrid, stencilgen, sconf, tuned, model = row
        best = max(loop, hybrid, stencilgen, sconf, tuned)
        # AN5D (taking Sconf and Tuned together) achieves the highest
        # performance on V100 for every stencil (Section 7.1).
        if gpu == "V100":
            assert max(sconf, tuned) == best, name
        # Loop tiling never competes with AN5D, and for 2D it is the weakest
        # of all frameworks.
        assert loop < max(sconf, tuned), name
        if name in two_d:
            assert loop == min(loop, hybrid, stencilgen, sconf, tuned), name
        # The model is an optimistic upper bound on the tuned measurement.
        assert model >= tuned, name

    by_name = {row[0]: row for row in rows}
    # Hybrid tiling is competitive for 2D stencils but falls behind the
    # streaming frameworks for 3D (no dimension streaming -> smaller blocks).
    assert by_name["star3d1r"][2] < by_name["star3d1r"][3]
    assert by_name["j3d27pt"][2] < by_name["j3d27pt"][3]
