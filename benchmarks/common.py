"""Shared schema for every ``BENCH_*.json`` artifact at the repo root.

Until PR 7 the four benchmark writers (sweep, throughput, cluster, and the
Table-5 campaign bench) each invented their own top-level report shape, so
comparing artifacts across PRs meant knowing four formats.  Now they all
emit one envelope::

    {
      "schema": "an5d-bench/v1",
      "benchmark": "<name>",
      "generated_at": "<UTC ISO-8601>",
      "git_rev": "<short rev or 'unknown'>",
      "host": {"python": ..., "numpy": ..., "platform": ..., "machine": ...},
      "units": {"<metric>": "<unit>", ...},
      "data": {...benchmark-specific payload...}
    }

``data`` keeps each benchmark's existing payload verbatim; the envelope only
standardises the metadata around it.  :func:`migrate_report` wraps a
pre-envelope artifact without re-running the benchmark, preserving whatever
timestamp/host info the old format carried.
"""

from __future__ import annotations

import json
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

BENCH_SCHEMA = "an5d-bench/v1"


def git_rev(repo_root: Optional[Path] = None) -> str:
    """Short git revision of the repo, or ``"unknown"`` outside a checkout."""
    root = repo_root or Path(__file__).resolve().parent.parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except Exception:  # noqa: BLE001 — no git, detached worktree, etc.
        return "unknown"


def host_info() -> Dict[str, str]:
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # noqa: BLE001
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def bench_envelope(
    benchmark: str,
    data: Dict[str, object],
    units: Optional[Dict[str, str]] = None,
    generated_at: Optional[str] = None,
) -> Dict[str, object]:
    """Wrap a benchmark payload in the shared ``an5d-bench/v1`` envelope."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "generated_at": generated_at
        or datetime.now(timezone.utc).isoformat(),
        "git_rev": git_rev(),
        "host": host_info(),
        "units": dict(units or {}),
        "data": dict(data),
    }


def write_bench(
    path: Path,
    benchmark: str,
    data: Dict[str, object],
    units: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """Write an enveloped report to ``path``; returns the document."""
    document = bench_envelope(benchmark, data, units)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def read_bench_data(path: Path) -> Dict[str, object]:
    """Load the ``data`` payload from an artifact, old format or new.

    Pre-envelope files *are* the payload; enveloped files carry it under
    ``"data"``.  Returns ``{}`` for a missing or unreadable file so merge
    writers (the Table-5 campaign bench) can start fresh.
    """
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(document, dict):
        return {}
    if document.get("schema") == BENCH_SCHEMA:
        data = document.get("data")
        return dict(data) if isinstance(data, dict) else {}
    return document


def migrate_report(
    path: Path, benchmark: str, units: Optional[Dict[str, str]] = None
) -> Optional[Dict[str, object]]:
    """Re-emit an old-format artifact in the shared envelope, in place.

    The old payload moves under ``data`` unchanged (minus any old top-level
    timestamp, which becomes the envelope's ``generated_at``).  Already
    migrated or missing files are left alone; returns the new document or
    ``None`` when nothing was done.
    """
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or document.get("schema") == BENCH_SCHEMA:
        return None
    data = dict(document)
    generated_at = None
    for key in ("timestamp", "generated_at"):
        if isinstance(data.get(key), str):
            generated_at = data.pop(key)
            break
    # Metadata the envelope now carries; the old per-writer spellings of it
    # would otherwise linger inside ``data``.
    for key in ("schema", "benchmark", "host", "platform"):
        data.pop(key, None)
    new_document = bench_envelope(benchmark, data, units, generated_at=generated_at)
    path.write_text(json.dumps(new_document, indent=2, sort_keys=True) + "\n")
    return new_document


__all__ = [
    "BENCH_SCHEMA",
    "bench_envelope",
    "git_rev",
    "host_info",
    "migrate_report",
    "read_bench_data",
    "write_bench",
]
