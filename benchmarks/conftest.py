"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper: it
computes the same rows/series the paper reports, prints them (run pytest with
``-s`` to see the tables inline; they are also written to
``benchmarks/results/``), and times a representative slice of the computation
with pytest-benchmark.

Absolute numbers come from the timing simulator rather than real GPUs, so
they are not expected to match the paper exactly; the *shape* of each result
(who wins, how performance scales, where the crossovers are) is what the
harness reproduces and what the assertions at the end of each bench check.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Set AN5D_BENCH_FULL=1 to sweep every stencil / GPU / precision combination
#: (slower); the default covers the headline subset.
FULL_SWEEP = os.environ.get("AN5D_BENCH_FULL", "0") == "1"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def report(name: str, title: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    banner = f"\n=== {title} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(banner.lstrip("\n") + "\n")


@pytest.fixture(scope="session")
def grid_2d():
    """The paper's 2D evaluation grid (Section 6.1)."""
    return evaluation_grid(2)


@pytest.fixture(scope="session")
def grid_3d():
    """The paper's 3D evaluation grid (Section 6.1)."""
    return evaluation_grid(3)


def evaluation_grid(ndim: int):
    from repro.ir.stencil import GridSpec
    from repro.stencils.library import (
        DEFAULT_2D_GRID,
        DEFAULT_3D_GRID,
        DEFAULT_TIME_STEPS,
    )

    return GridSpec(
        DEFAULT_2D_GRID if ndim == 2 else DEFAULT_3D_GRID, DEFAULT_TIME_STEPS
    )
