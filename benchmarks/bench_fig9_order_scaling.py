"""Fig. 9: performance of star/box stencils from first to fourth order.

Tunes every synthetic stencil on Tesla V100 (single precision by default,
double precision too under ``AN5D_BENCH_FULL=1``) and reports the best
temporal blocking degree and the achieved performance per stencil order.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL_SWEEP, evaluation_grid, format_table, report
from repro.stencils.library import load_pattern
from repro.tuning.autotuner import AutoTuner

DTYPES = ("float", "double") if FULL_SWEEP else ("float",)
FAMILIES = ("star2d", "box2d", "star3d", "box3d")


def sweep(dtype: str):
    tuner = AutoTuner("V100", top_k=3)
    rows = []
    for family in FAMILIES:
        for radius in (1, 2, 3, 4):
            name = f"{family}{radius}r"
            pattern = load_pattern(name, dtype)
            result = tuner.tune(pattern, evaluation_grid(pattern.ndim))
            rows.append(
                (
                    family,
                    radius,
                    result.best_config.bT,
                    round(result.best.measured_gflops),
                    round(result.best.predicted_gflops),
                )
            )
    return rows


@pytest.mark.parametrize("dtype", DTYPES)
def test_fig9_order_scaling(benchmark, dtype):
    rows = benchmark.pedantic(sweep, args=(dtype,), rounds=1, iterations=1)
    table = format_table(["family", "radius", "best bT", "Tuned GFLOP/s", "Model GFLOP/s"], rows)
    report(f"fig9_{dtype}", f"Fig. 9: star/box stencils by order (V100, {dtype})", table)

    best_bt = {(family, radius): bT for family, radius, bT, _, _ in rows}
    gflops = {(family, radius): tuned for family, radius, _, tuned, _ in rows}

    # First-order stencils reach their best performance with high temporal
    # blocking degrees (2D: 8-15, 3D: 3-5).
    assert best_bt[("star2d", 1)] >= 6
    assert 2 <= best_bt[("star3d", 1)] <= 6
    # Optimal bT decreases monotonically-ish with the stencil order.
    for family in FAMILIES:
        assert best_bt[(family, 1)] >= best_bt[(family, 4)], family
    # High-order 3D box stencils do not benefit from temporal blocking.
    assert best_bt[("box3d", 4)] <= 2
    assert best_bt[("box3d", 3)] <= 2
    # Most 2D and 3D-star cases still pick bT >= 2 (Section 7.3).
    multi_degree = [
        best_bt[(family, radius)] >= 2
        for family in ("star2d", "box2d", "star3d")
        for radius in (1, 2, 3, 4)
    ]
    assert sum(multi_degree) >= 9
    # GFLOP/s of box stencils grows with order (more FLOPs per byte).
    assert gflops[("box2d", 4)] > gflops[("box2d", 1)]
