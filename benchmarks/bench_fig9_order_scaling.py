"""Fig. 9: performance of star/box stencils from first to fourth order.

Tunes every synthetic stencil on Tesla V100 (single precision by default,
double precision too under ``AN5D_BENCH_FULL=1``) and reports the best
temporal blocking degree and the achieved performance per stencil order.

Like the other figure benches, the figure regenerates *from the campaign
store*: the sixteen synthetic stencils are one ``CampaignSpec`` (kind
``tune``, top_k=3) run through the scheduler, and every row — best bT, tuned
and model GFLOP/s — is read back out of the store.  The second pass executes
nothing, and its cold/warm timing lands in ``BENCH_campaign.json`` next to
the Table 5 and Fig. 6-8 sweeps.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_table5_tuned import record_campaign_timing
from benchmarks.conftest import FULL_SWEEP, format_table, report
from repro.campaign import CampaignScheduler, CampaignSpec, ResultStore

DTYPES = ("float", "double") if FULL_SWEEP else ("float",)
FAMILIES = ("star2d", "box2d", "star3d", "box3d")
RADII = (1, 2, 3, 4)

FIG9_BENCHMARKS = tuple(
    f"{family}{radius}r" for family in FAMILIES for radius in RADII
)


def run_fig9_campaign(dtype: str, store_path):
    """Cold pass tunes + commits; warm pass reads every row off the store."""
    spec = CampaignSpec(
        benchmarks=FIG9_BENCHMARKS, gpus=("V100",), dtypes=(dtype,),
        kinds=("tune",), top_k=3,
    )
    with ResultStore(store_path) as store:
        cold = CampaignScheduler(spec, store).run()
        warm = CampaignScheduler(spec, store).run()
        rows = []
        for family in FAMILIES:
            for radius in RADII:
                name = f"{family}{radius}r"
                (result,) = store.query(
                    kind="tune", pattern=name, gpu="V100", dtype=dtype
                )
                rows.append(
                    (
                        family,
                        radius,
                        result.payload["bT"],
                        round(result.payload["tuned_gflops"]),
                        round(result.payload["model_gflops"]),
                    )
                )
    return cold, warm, rows


@pytest.mark.parametrize("dtype", DTYPES)
def test_fig9_order_scaling(benchmark, tmp_path, dtype):
    cold, warm, rows = benchmark.pedantic(
        run_fig9_campaign,
        args=(dtype, tmp_path / "fig9.sqlite"),
        rounds=1,
        iterations=1,
    )
    table = format_table(["family", "radius", "best bT", "Tuned GFLOP/s", "Model GFLOP/s"], rows)
    report(f"fig9_{dtype}", f"Fig. 9: star/box stencils by order (V100, {dtype})", table)
    record_campaign_timing(f"fig9_{dtype}", cold, warm)

    # Store-backed regeneration: the first pass tunes all sixteen stencils,
    # the repeat pass is answered entirely warm.
    assert cold.ok and cold.executed == cold.total
    assert warm.cached == warm.total and warm.cache_hit_rate == 1.0

    best_bt = {(family, radius): bT for family, radius, bT, _, _ in rows}
    gflops = {(family, radius): tuned for family, radius, _, tuned, _ in rows}

    # First-order stencils reach their best performance with high temporal
    # blocking degrees (2D: 8-15, 3D: 3-5).
    assert best_bt[("star2d", 1)] >= 6
    assert 2 <= best_bt[("star3d", 1)] <= 6
    # Optimal bT decreases monotonically-ish with the stencil order.
    for family in FAMILIES:
        assert best_bt[(family, 1)] >= best_bt[(family, 4)], family
    # High-order 3D box stencils do not benefit from temporal blocking.
    assert best_bt[("box3d", 4)] <= 2
    assert best_bt[("box3d", 3)] <= 2
    # Most 2D and 3D-star cases still pick bT >= 2 (Section 7.3).
    multi_degree = [
        best_bt[(family, radius)] >= 2
        for family in ("star2d", "box2d", "star3d")
        for radius in RADII
    ]
    assert sum(multi_degree) >= 9
    # GFLOP/s of box stencils grows with order (more FLOPs per byte).
    assert gflops[("box2d", 4)] > gflops[("box2d", 1)]
