"""Fig. 7: register usage per thread, STENCILGEN vs AN5D (float, no limit).

Also reproduces the spilling observation: with a 32-register cap (the value
needed for 100 % occupancy) AN5D's kernels do not spill, while STENCILGEN's
second-order stencils (j2d9pt, star3d2r) do.
"""

from __future__ import annotations

from benchmarks.conftest import format_table, report
from repro.core.config import sconf_configuration
from repro.model.registers import (
    effective_registers,
    estimate_registers,
    minimum_live_registers,
    stencilgen_registers,
)
from repro.stencils.library import figure6_benchmarks, load_pattern


def build_rows():
    rows = []
    for benchmark_info in figure6_benchmarks():
        pattern = load_pattern(benchmark_info.name, "float")
        config = sconf_configuration(pattern)
        capped = config.with_register_limit(32)
        an5d_regs = estimate_registers(pattern, config)
        sg_regs = stencilgen_registers(pattern, config)
        an5d_spills = effective_registers(pattern, capped, "an5d").spilled
        sg_spills = effective_registers(pattern, capped, "stencilgen").spilled
        rows.append(
            (
                benchmark_info.name,
                sg_regs,
                an5d_regs,
                "yes" if sg_spills else "no",
                "yes" if an5d_spills else "no",
                minimum_live_registers(pattern, config, "an5d"),
            )
        )
    return rows


def test_fig7_register_usage(benchmark):
    rows = benchmark(build_rows)
    table = format_table(
        ["stencil", "STENCILGEN regs", "AN5D regs", "SG spills @32", "AN5D spills @32", "AN5D live regs"],
        rows,
    )
    report("fig7_registers", "Fig. 7: registers per thread (float, no limit)", table)

    an5d_values = [row[2] for row in rows]
    sg_values = [row[1] for row in rows]
    # AN5D uses fewer registers on average (Section 7.1).
    assert sum(an5d_values) / len(an5d_values) < sum(sg_values) / len(sg_values)
    # Register usage stays in the 25-50 range shown in the figure.
    assert all(25 <= value <= 55 for value in an5d_values)
    # No AN5D kernel spills at the 32-register cap.
    assert all(row[4] == "no" for row in rows)
    # STENCILGEN spills exactly for the second-order stencils.
    spilling = {row[0] for row in rows if row[3] == "yes"}
    assert spilling == {"j2d9pt", "star3d2r"}
