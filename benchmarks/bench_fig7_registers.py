"""Fig. 7: register usage per thread, STENCILGEN vs AN5D (float, no limit).

Also reproduces the spilling observation: with a 32-register cap (the value
needed for 100 % occupancy) AN5D's kernels do not spill, while STENCILGEN's
second-order stencils (j2d9pt, star3d2r) do.

Like the other figure benches, the figure regenerates *from the campaign
store*: each stencil's register analysis is one content-addressed job
(``kind="predict"`` with an ``analysis=fig7_registers`` param, so its key
can never collide with a model-prediction job), computed once, committed to
the store, and read back.  The second pass executes nothing — rows come
straight off the store — and its cold/warm timing lands in
``BENCH_campaign.json`` next to the Table 5 and Fig. 6 sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from benchmarks.bench_table5_tuned import record_campaign_timing
from benchmarks.conftest import format_table, report
from repro.campaign import JobSpec, ResultStore
from repro.core.config import sconf_configuration
from repro.model.registers import (
    effective_registers,
    estimate_registers,
    minimum_live_registers,
    stencilgen_registers,
)
from repro.stencils.library import (
    DEFAULT_2D_GRID,
    DEFAULT_3D_GRID,
    DEFAULT_TIME_STEPS,
    figure6_benchmarks,
    load_pattern,
)

#: The register cap at which the paper reports 100 % occupancy.
REGISTER_CAP = 32


@dataclass(frozen=True)
class _PassTiming:
    """Just enough of a CampaignOutcome for record_campaign_timing."""

    total: int
    duration_s: float
    cache_hit_rate: float


def register_job(name: str) -> JobSpec:
    """The content-addressed store job holding one stencil's register row."""
    pattern = load_pattern(name, "float")
    return JobSpec(
        kind="predict",
        pattern=name,
        gpu="V100",
        dtype="float",
        interior=DEFAULT_2D_GRID if pattern.ndim == 2 else DEFAULT_3D_GRID,
        time_steps=DEFAULT_TIME_STEPS,
        params=(("analysis", "fig7_registers"), ("reg_cap", REGISTER_CAP)),
    )


def register_payload(name: str) -> dict:
    """One stencil's Fig. 7 numbers (the actual analysis work)."""
    pattern = load_pattern(name, "float")
    config = sconf_configuration(pattern)
    capped = config.with_register_limit(REGISTER_CAP)
    return {
        "sg_regs": stencilgen_registers(pattern, config),
        "an5d_regs": estimate_registers(pattern, config),
        "sg_spills": effective_registers(pattern, capped, "stencilgen").spilled,
        "an5d_spills": effective_registers(pattern, capped, "an5d").spilled,
        "live_regs": minimum_live_registers(pattern, config, "an5d"),
    }


def run_fig7_campaign(store_path):
    """Cold pass computes + commits; warm pass reads every row off the store."""
    names = tuple(info.name for info in figure6_benchmarks())
    jobs = {name: register_job(name) for name in names}
    with ResultStore(store_path) as store:
        started = time.perf_counter()
        executed = 0
        for name, job in jobs.items():
            if not store.has_ok(job):
                store.put(job, register_payload(name))
                executed += 1
        cold = _PassTiming(
            total=len(jobs),
            duration_s=time.perf_counter() - started,
            cache_hit_rate=(len(jobs) - executed) / len(jobs),
        )

        started = time.perf_counter()
        rows = []
        for name, job in jobs.items():
            payload = store.lookup(job).payload
            rows.append(
                (
                    name,
                    payload["sg_regs"],
                    payload["an5d_regs"],
                    "yes" if payload["sg_spills"] else "no",
                    "yes" if payload["an5d_spills"] else "no",
                    payload["live_regs"],
                )
            )
        warm_hits = sum(1 for job in jobs.values() if store.has_ok(job))
        warm = _PassTiming(
            total=len(jobs),
            duration_s=time.perf_counter() - started,
            cache_hit_rate=warm_hits / len(jobs),
        )
    return cold, warm, rows


def test_fig7_register_usage(benchmark, tmp_path):
    cold, warm, rows = benchmark.pedantic(
        run_fig7_campaign,
        args=(tmp_path / "fig7.sqlite",),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["stencil", "STENCILGEN regs", "AN5D regs", "SG spills @32", "AN5D spills @32", "AN5D live regs"],
        rows,
    )
    report("fig7_registers", "Fig. 7: registers per thread (float, no limit)", table)
    record_campaign_timing("fig7_registers", cold, warm)

    # Store-backed regeneration: the first pass executes everything, the
    # read-back pass is answered entirely from the store.
    assert cold.cache_hit_rate == 0.0
    assert warm.cache_hit_rate == 1.0

    an5d_values = [row[2] for row in rows]
    sg_values = [row[1] for row in rows]
    # AN5D uses fewer registers on average (Section 7.1).
    assert sum(an5d_values) / len(an5d_values) < sum(sg_values) / len(sg_values)
    # Register usage stays in the 25-50 range shown in the figure.
    assert all(25 <= value <= 55 for value in an5d_values)
    # No AN5D kernel spills at the 32-register cap.
    assert all(row[4] == "no" for row in rows)
    # STENCILGEN spills exactly for the second-order stencils.
    spilling = {row[0] for row in rows if row[3] == "yes"}
    assert spilling == {"j2d9pt", "star3d2r"}
