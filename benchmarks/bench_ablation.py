"""Ablation study of AN5D's design choices (Section 4.2).

Not a table/figure of the paper, but the paper's argument rests on four
design decisions whose individual value the framework lets us isolate:

1. temporal blocking at all (bT = tuned vs bT = 1),
2. fixed vs shifting register allocation (AN5D vs the STENCILGEN strategy),
3. shared-memory double buffering vs single buffering (extra barrier),
4. division of the streaming dimension vs whole-dimension streaming,
5. model-guided tuning vs exhaustive simulated search (tuning efficiency).

Each ablation is reported as a slowdown factor relative to the full AN5D
configuration on Tesla V100 (single precision, j2d5pt and star3d1r).
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import evaluation_grid, format_table, report
from repro.baselines import StencilGenBaseline
from repro.core.config import BlockingConfig
from repro.ir.stencil import GridSpec
from repro.model.gpu_specs import get_gpu
from repro.sim.timing import TimingSimulator
from repro.stencils.library import load_pattern
from repro.tuning.autotuner import AutoTuner
from repro.tuning.exhaustive import compare_guided_vs_exhaustive
from repro.tuning.search_space import SearchSpace

STENCILS = ("j2d5pt", "star3d1r")


def ablate(name: str):
    pattern = load_pattern(name, "float")
    grid = evaluation_grid(pattern.ndim)
    gpu = get_gpu("V100")
    simulator = TimingSimulator(gpu)
    tuner = AutoTuner(gpu, top_k=3)

    tuned = tuner.tune(pattern, grid)
    base_config = tuned.best_config
    base = tuned.best.measured_gflops

    rows = []

    def add(label, gflops):
        rows.append((name, label, round(gflops), f"{base / gflops:.2f}x" if gflops else "inf"))

    add("full AN5D (tuned)", base)

    # 1. no temporal blocking.
    no_tb = dataclasses.replace(base_config, bT=1)
    add("no temporal blocking (bT=1)", simulator.simulate(pattern, grid, no_tb).gflops)

    # 2. shifting registers + multi-buffered shared memory (STENCILGEN strategy).
    stencilgen = StencilGenBaseline(gpu).simulate(pattern, grid, base_config)
    add("shifting regs + multi-buffer smem", stencilgen.gflops)

    # 3. single-buffered shared memory (extra barrier per sub-plane).
    single_buffer = dataclasses.replace(base_config, double_buffer=False)
    add("no double buffering", simulator.simulate(pattern, grid, single_buffer).gflops)

    # 4. no division of the streaming dimension.
    undivided = dataclasses.replace(base_config, hS=None)
    add("no streaming division (hS=full)", simulator.simulate(pattern, grid, undivided).gflops)

    return rows


def test_ablation_design_choices(benchmark):
    rows = benchmark.pedantic(
        lambda: [row for name in STENCILS for row in ablate(name)], rounds=1, iterations=1
    )
    table = format_table(["stencil", "variant", "GFLOP/s", "slowdown"], rows)
    report("ablation", "Ablation of AN5D design choices (V100, float)", table)

    by_key = {(row[0], row[1]): row[2] for row in rows}
    for name in STENCILS:
        full = by_key[(name, "full AN5D (tuned)")]
        # Temporal blocking is the dominant win.
        assert by_key[(name, "no temporal blocking (bT=1)")] < 0.7 * full, name
        # Removing streaming division never helps by more than noise; for 2D
        # stencils (few thread blocks without it) it clearly hurts.
        undivided = by_key[(name, "no streaming division (hS=full)")]
        assert undivided <= 1.05 * full, name
        if name == "j2d5pt":
            assert undivided < full
        # The STENCILGEN resource strategy never beats AN5D's at equal parameters.
        assert by_key[(name, "shifting regs + multi-buffer smem")] <= 1.05 * full, name


def test_ablation_model_guided_tuning(benchmark):
    """Model-guided top-5 tuning finds ≥ 90 % of the exhaustive optimum while
    simulating an order of magnitude fewer configurations."""
    pattern = load_pattern("j2d5pt", "float")
    grid = GridSpec((8192, 8192), 120)
    space = SearchSpace(
        time_blocks=tuple(range(1, 13)),
        spatial_blocks=((128,), (256,), (512,)),
        stream_blocks=(256, 512),
    )
    comparison = benchmark.pedantic(
        compare_guided_vs_exhaustive, args=(pattern, grid, "V100"), kwargs={"space": space},
        rounds=1, iterations=1,
    )
    table = format_table(
        ["procedure", "best config", "GFLOP/s", "simulated configs"],
        [
            (
                "model-guided top-5",
                comparison.guided.best_config.describe(),
                round(comparison.guided.best.measured_gflops),
                len(comparison.guided.top_candidates) * 4,
            ),
            (
                "exhaustive",
                comparison.exhaustive.best_config.describe(),
                round(comparison.exhaustive.best_gflops),
                comparison.exhaustive.evaluated,
            ),
        ],
    )
    report("ablation_tuning", "Ablation: model-guided vs exhaustive tuning (j2d5pt, V100)", table)

    assert comparison.efficiency >= 0.9
    assert comparison.evaluations_saved > 100
